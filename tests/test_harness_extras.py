"""Characterization, text plots, and the pipeline→circuit link."""

import pytest

from repro.harness import (characterize, format_characterization,
                           grouped_bars, hbar_chart, measured_activities,
                           sparkline, table2_measured)


class TestPlots:
    def test_hbar_positive_and_negative(self):
        text = hbar_chart({"up": 1.2, "down": 0.9}, title="T",
                          baseline=1.0)
        lines = text.splitlines()
        assert lines[0] == "T"
        up_line = next(l for l in lines if l.startswith("up"))
        down_line = next(l for l in lines if l.startswith("down"))
        assert up_line.index("#") > up_line.index("|")
        assert down_line.index("#") < down_line.index("|")
        assert "+20.0%" in up_line and "-10.0%" in down_line

    def test_hbar_empty(self):
        assert hbar_chart({}, title="empty") == "empty"

    def test_grouped(self):
        text = grouped_bars({"base": {"a": 1.1}, "pro": {"a": 1.2}})
        assert "[base]" in text and "[pro]" in text

    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line == "".join(sorted(line))

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestCharacterize:
    @pytest.fixture(scope="class")
    def profiles(self):
        return characterize(scale=0.3, names=["gcc.mix", "mcf.chase"])

    def test_profiles_shape(self, profiles):
        assert {p.name for p in profiles} == {"gcc.mix", "mcf.chase"}
        for p in profiles:
            assert p.ipc > 0
            assert 0 <= p.l1_miss_rate <= 1

    def test_chase_is_memory_bound(self, profiles):
        chase = next(p for p in profiles if p.name == "mcf.chase")
        assert chase.l1_miss_rate > 0.5
        assert chase.full_window_frac > 0.5

    def test_format(self, profiles):
        text = format_characterization(profiles)
        assert "gcc.mix" in text and "IPC" in text


class TestCircuitLink:
    def test_measured_activities_keys(self):
        activity = measured_activities(scale=0.3, names=["gcc.mix"])
        assert {"iq_ops", "rob_ops", "mdm_ops", "wakeup_ops"} <= \
            set(activity)
        assert all(v >= 0 for v in activity.values())

    def test_table2_measured_rows(self):
        rows = table2_measured(scale=0.3, names=["gcc.mix"])
        assert [r.name for r in rows] == [
            "Age Matrix (IQ)", "Age Matrix (ROB)",
            "Memory Disambiguation Matrix", "Wakeup Matrix"]
        # geometry stays the Table 2 geometry; powers are positive
        assert rows[0].size == "96 x 96"
        assert all(r.power_w > 0 for r in rows)
