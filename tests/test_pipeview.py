"""Pipeline timeline viewer."""

import pytest

from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import O3Core, Timeline, base_config


def run_with_timeline(commit="orinoco", max_entries=10_000):
    b = ProgramBuilder("t")
    b.li("x1", 100).li("x2", 7)
    b.div("x3", "x1", "x2")          # slow head
    for i in range(5):
        b.addi(f"x{10 + i}", "x1", i)
    b.halt()
    core = O3Core(trace_program(b.build()), base_config(commit=commit))
    timeline = Timeline.attach(core, max_entries=max_entries)
    core.run()
    return timeline


class TestTimeline:
    def test_records_every_committed_instruction(self):
        timeline = run_with_timeline()
        assert len(timeline.entries) == 9

    def test_stage_ordering_per_instruction(self):
        timeline = run_with_timeline()
        for entry in timeline.entries:
            assert entry.dispatched <= entry.issued
            assert entry.issued < entry.completed
            assert entry.completed <= entry.committed

    def test_ooo_commit_visible(self):
        orinoco = run_with_timeline("orinoco")
        ioc = run_with_timeline("ioc")
        assert orinoco.out_of_order_commits() > 0
        assert ioc.out_of_order_commits() == 0

    def test_render_contains_marks(self):
        timeline = run_with_timeline()
        text = timeline.render()
        for mark in "DICR":
            assert mark in text
        assert "div" in text

    def test_render_empty(self):
        assert Timeline().render() == "(empty timeline)"

    def test_truncation(self):
        timeline = run_with_timeline(max_entries=3)
        assert timeline.truncated
        assert len(timeline.entries) == 3
        assert "truncated" in timeline.render()

    def test_commit_latency(self):
        timeline = run_with_timeline()
        latency = timeline.commit_latency(2)      # the divide
        assert latency is not None and latency > 10
        assert timeline.commit_latency(999) is None

    def test_render_window_selection(self):
        timeline = run_with_timeline()
        text = timeline.render(first=3, count=2)
        assert "#    3" in text and "#    5" not in text


class TestSquashedRendering:
    """Squashed (wrong-path) work arrives via squash events and renders
    dimmed: lowercase marks, an ``x`` at the squash, a ``~`` tag."""

    def run_with_squashes(self):
        b = ProgramBuilder("squashy")
        b.li("x1", 0).li("x2", 12).li("x3", 64)
        b.label("loop")
        b.ld("x4", "x3", 0)
        b.add("x5", "x4", "x1")
        b.addi("x1", "x1", 1)
        b.blt("x1", "x2", "loop")       # mispredicts at loop exit
        b.halt()
        core = O3Core(trace_program(b.build()),
                      base_config(commit="orinoco"))
        timeline = Timeline.attach(core)
        core.run()
        return core, timeline

    def test_squashed_ops_recorded_with_distinct_mark(self):
        core, timeline = self.run_with_squashes()
        assert core.stats.branch_mispredicts > 0
        squashed = timeline.squashed_entries()
        assert squashed, "mispredicted run must record squashed entries"
        for entry in squashed:
            assert entry.squashed and entry.squashed_at is not None
            assert entry.committed is None or entry.squashed

    def test_squashed_rows_render_dimmed(self):
        _, timeline = self.run_with_squashes()
        text = timeline.render(count=200)
        dimmed = [line for line in text.splitlines() if "~" in line]
        assert dimmed, "squashed rows must carry the dim tag"
        assert any("x" in line for line in dimmed)
        # dimmed rows never use the bright commit mark
        for line in dimmed:
            assert "R" not in line.split("|", 1)[-1]

    def test_committed_rows_unaffected(self):
        _, timeline = self.run_with_squashes()
        committed = [e for e in timeline.entries if not e.squashed]
        assert committed
        assert all(e.committed is not None for e in committed)
