"""Commit policies, exercised through small directed pipelines."""

import pytest

from repro.commit import make_commit_policy
from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import base_config, simulate


def slow_head_trace():
    """A long-latency divide at the head with independent younger work."""
    b = ProgramBuilder("slow_head")
    b.li("x1", 100).li("x2", 7)
    for _ in range(6):
        b.div("x3", "x1", "x2")          # serial divides: slow
        b.mul("x3", "x3", "x2")
        for lane in range(6):
            dst = f"x{10 + lane}"
            b.addi(dst, "x1", lane)
            b.xor(dst, dst, "x1")
    b.halt()
    return trace_program(b.build())


def load_then_branch_trace():
    """Loads feeding branches: the BR-relaxation pattern."""
    b = ProgramBuilder("ldbr")
    b.li("x1", 0x200000).li("x2", 0)
    for i in range(8):
        b.ld("x3", "x1", i * 8192)       # cache-missing load
        b.blt("x3", "x0", "never%d" % i)
        b.label("never%d" % i)
        for lane in range(4):
            b.addi(f"x{10 + lane}", "x2", lane)
    b.halt()
    return trace_program(b.build())


ALL_COMMITS = ("ioc", "orinoco", "vb", "vb_noecl", "br", "br_noecl",
               "spec", "spec_norob", "ecl", "rob")


class TestAllPoliciesComplete:
    @pytest.mark.parametrize("commit", ALL_COMMITS)
    def test_full_retirement(self, commit):
        trace = slow_head_trace()
        stats = simulate(trace, base_config(commit=commit))
        assert stats.committed == len(trace)

    @pytest.mark.parametrize("commit", ALL_COMMITS)
    def test_memory_pattern_completes(self, commit):
        trace = load_then_branch_trace()
        stats = simulate(trace, base_config(commit=commit))
        assert stats.committed == len(trace)


class TestPolicyOrdering:
    def test_orinoco_at_least_ioc_on_slow_head(self):
        trace = slow_head_trace()
        ioc = simulate(trace, base_config(commit="ioc"))
        orinoco = simulate(trace, base_config(commit="orinoco"))
        assert orinoco.cycles <= ioc.cycles

    def test_spec_is_an_upper_bound(self):
        trace = slow_head_trace()
        spec = simulate(trace, base_config(commit="spec"))
        for commit in ("ioc", "orinoco", "ecl"):
            other = simulate(trace, base_config(commit=commit))
            assert spec.cycles <= other.cycles * 1.02

    def test_vb_commits_zombies_on_slow_head(self):
        trace = slow_head_trace()
        vb = simulate(trace, base_config(commit="vb"))
        assert vb.zombie_commits > 0

    def test_br_relaxes_branches_on_load_branch_pattern(self):
        trace = load_then_branch_trace()
        ioc = simulate(trace, base_config(commit="ioc"))
        br = simulate(trace, base_config(commit="br"))
        assert br.cycles <= ioc.cycles

    def test_ecl_commits_loads_early(self):
        trace = load_then_branch_trace()
        ecl = simulate(trace, base_config(commit="ecl"))
        assert ecl.early_committed_loads > 0


class TestPolicyFlags:
    def test_flag_matrix(self):
        assert make_commit_policy("vb").allow_incomplete
        assert make_commit_policy("vb").ecl
        assert not make_commit_policy("vb_noecl").ecl
        assert make_commit_policy("br").oracle_branches
        assert make_commit_policy("spec_norob").release_at_completion
        assert make_commit_policy("rob").defer_release_inorder
        assert not make_commit_policy("ioc").ecl

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_commit_policy("yolo")

    def test_names_round_trip(self):
        for name in ALL_COMMITS:
            assert make_commit_policy(name).name == name


class TestStoreOrdering:
    def test_stores_commit_in_program_order(self):
        """Even with OoO commit, stores drain to the SB oldest-first."""
        b = ProgramBuilder("stores")
        b.li("x1", 0x1000)
        b.li("x9", 50).li("x8", 3)
        b.div("x2", "x9", "x8")       # slow producer for the first store
        b.sd("x2", "x1", 0)           # store 1: waits for the divide
        b.li("x3", 7)
        b.sd("x3", "x1", 8)           # store 2: ready immediately
        b.halt()
        trace = trace_program(b.build())
        from repro.pipeline import O3Core
        core = O3Core(trace, base_config(commit="orinoco"))
        drained = []
        original = core.lsq.drain_store
        def spy():
            entry = original()
            if entry:
                drained.append(entry.seq)
            return entry
        core.lsq.drain_store = spy
        core.run()
        assert drained == sorted(drained)
