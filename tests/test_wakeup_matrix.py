"""Wakeup matrix: positional dependence tracking in the IQ."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WakeupMatrix


class TestWakeup:
    def test_no_producers_ready_immediately(self):
        wm = WakeupMatrix(4)
        wm.dispatch(0, [])
        assert wm.is_ready(0)
        assert wm.ready()[0]

    def test_waits_for_all_producers(self):
        wm = WakeupMatrix(4)
        wm.dispatch(0, [])
        wm.dispatch(1, [])
        wm.dispatch(2, [0, 1])
        assert not wm.is_ready(2)
        wm.issue([0])
        assert not wm.is_ready(2)
        wm.issue([1])
        assert wm.is_ready(2)

    def test_multi_issue_single_cycle(self):
        wm = WakeupMatrix(4)
        wm.dispatch(0, [])
        wm.dispatch(1, [])
        wm.dispatch(2, [0, 1])
        wm.issue([0, 1])
        assert wm.is_ready(2)

    def test_issue_frees_entry(self):
        wm = WakeupMatrix(4)
        wm.dispatch(0, [])
        wm.issue([0])
        assert not wm.valid[0]
        wm.dispatch(0, [])     # reuse
        assert wm.is_ready(0)

    def test_issue_invalid_rejected(self):
        wm = WakeupMatrix(4)
        with pytest.raises(ValueError):
            wm.issue([0])

    def test_double_dispatch_rejected(self):
        wm = WakeupMatrix(4)
        wm.dispatch(0, [])
        with pytest.raises(ValueError):
            wm.dispatch(0, [])

    def test_waiting_on_lists_producers(self):
        wm = WakeupMatrix(4)
        wm.dispatch(1, [])
        wm.dispatch(3, [1])
        assert wm.waiting_on(3) == [1]
        wm.issue([1])
        assert wm.waiting_on(3) == []

    def test_squash_does_not_wake_dependents(self):
        wm = WakeupMatrix(4)
        wm.dispatch(0, [])
        wm.dispatch(1, [0])
        wm.dispatch(2, [1])
        # squash 1 and 2 together (both younger than some mispredict)
        wm.squash([1, 2])
        assert not wm.valid[1] and not wm.valid[2]
        assert wm.valid[0]
        # entries reusable afterwards
        wm.dispatch(1, [0])
        assert not wm.is_ready(1)

    def test_ready_vector_matches_is_ready(self):
        wm = WakeupMatrix(6)
        wm.dispatch(0, [])
        wm.dispatch(1, [0])
        wm.dispatch(5, [])
        ready = wm.ready()
        for entry in range(6):
            if wm.valid[entry]:
                assert ready[entry] == wm.is_ready(entry)
            else:
                assert not ready[entry]


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_wakeup_matches_dependency_oracle(data):
    """Property: an instruction is ready iff all its producers issued."""
    size = data.draw(st.integers(min_value=2, max_value=16))
    wm = WakeupMatrix(size)
    producers = {}
    for _ in range(data.draw(st.integers(min_value=1, max_value=40))):
        free = [e for e in range(size) if not wm.valid[e]]
        live = [e for e in range(size) if wm.valid[e]]
        ready_live = [e for e in live if wm.is_ready(e)]
        if free and (not ready_live or data.draw(st.booleans())):
            entry = data.draw(st.sampled_from(free))
            deps = data.draw(st.lists(st.sampled_from(live), unique=True)) \
                if live else []
            wm.dispatch(entry, deps)
            producers[entry] = set(deps)
        elif ready_live:
            entry = data.draw(st.sampled_from(ready_live))
            wm.issue([entry])
            for deps in producers.values():
                deps.discard(entry)
            del producers[entry]

        for entry in range(size):
            if wm.valid[entry]:
                live_deps = {d for d in producers[entry] if wm.valid[d]}
                assert wm.is_ready(entry) == (not live_deps)
