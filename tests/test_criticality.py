"""Criticality detection: CCT, IST, IBDA, tagging."""

import pytest

from repro.criticality import (CriticalCountTable, CriticalityTagger,
                               InstructionSliceTable, clear_tags, ibda)
from repro.isa import ProgramBuilder, trace_program


class TestCCT:
    def test_counts_accumulate(self):
        cct = CriticalCountTable(4)
        cct.record(10, 5)
        cct.record(10, 3)
        assert cct.counts[10] == 8

    def test_capacity_keeps_hottest(self):
        cct = CriticalCountTable(2)
        cct.record(1, 10)
        cct.record(2, 20)
        cct.record(3, 5)        # colder than both: rejected
        assert 3 not in cct.counts
        cct.record(4, 30)       # evicts the smallest (1)
        assert set(cct.counts) == {2, 4}

    def test_top_ordering(self):
        cct = CriticalCountTable(8)
        cct.record(1, 5)
        cct.record(2, 50)
        cct.record(3, 20)
        assert cct.top(2) == [2, 3]


class TestIST:
    def test_bounded(self):
        ist = InstructionSliceTable(2)
        assert ist.add(1) and ist.add(2)
        assert not ist.add(3)          # full
        assert 3 not in ist

    def test_duplicates_free(self):
        ist = InstructionSliceTable(2)
        ist.add(1)
        assert not ist.add(1)
        assert len(ist) == 1


def chain_trace():
    """x3 <- x2 <- x1; a critical load consumes x3."""
    b = ProgramBuilder("chain")
    b.li("x1", 0x40)            # pc 0: grandparent
    b.addi("x2", "x1", 8)       # pc 1: parent
    b.addi("x3", "x2", 0)       # pc 2: direct producer
    b.ld("x4", "x3", 0)         # pc 3: the critical load
    b.halt()
    return trace_program(b.build())


class TestIBDA:
    def test_backward_slice_marked(self):
        trace = chain_trace()
        ist = InstructionSliceTable(64)
        ibda(trace, [3], ist, passes=3)
        assert 3 in ist and 2 in ist
        # deeper ancestors join on later passes through the trace
        assert 1 in ist and 0 in ist

    def test_single_pass_marks_direct_producers(self):
        trace = chain_trace()
        ist = InstructionSliceTable(64)
        ibda(trace, [3], ist, passes=1)
        assert 2 in ist


class TestTagger:
    def test_end_to_end_tagging(self):
        trace = chain_trace()
        tagger = CriticalityTagger()
        tagger.feed_profile(pc_l1_misses={3: 100}, pc_mispredicts={})
        tagged = tagger.tag(trace)
        assert tagged >= 2
        assert trace[3].critical        # the load itself
        assert trace[2].critical        # its producer

    def test_clear_tags(self):
        trace = chain_trace()
        tagger = CriticalityTagger()
        tagger.feed_profile({3: 10}, {})
        tagger.tag(trace)
        clear_tags(trace)
        assert not any(i.critical for i in trace)

    def test_mispredicts_feed_cct_too(self):
        b = ProgramBuilder("br")
        b.li("x1", 1)
        b.beq("x1", "x0", "skip")
        b.label("skip")
        b.halt()
        trace = trace_program(b.build())
        tagger = CriticalityTagger()
        tagger.feed_profile({}, {1: 50})
        tagger.tag(trace)
        assert trace[1].critical
