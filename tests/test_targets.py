"""Workload target registry: kinds, scenarios, trace-file ingestion.

The acceptance pin lives here: a trace recorded from a kernel and
re-imported as a trace-file target must simulate field-identical to
the in-memory kernel across the serial, ``--jobs 2``, ``--lanes 4``,
and cache-hit execution paths.
"""

import dataclasses
import json

import pytest

from repro.harness import CellStatus, ResultCache, jobs_for, run_config
from repro.isa import save_trace
from repro.pipeline import O3Core, base_config
from repro.workloads import (InterleaveTarget, TraceFileTarget,
                             add_trace_target, build_trace, ensure_target,
                             get_target, has_target, kernel_names,
                             register_target, sweep_names, target_names,
                             unregister_target, workload_fingerprint)
from repro.workloads.scenarios import ADDR_STRIDE, PC_STRIDE

SCALE = 0.25


def fields(stats):
    return dataclasses.asdict(stats)


class TestRegistry:
    def test_synthetic_and_scenario_kinds_registered(self):
        assert len(target_names(kind="synthetic")) >= 12
        assert set(target_names(kind="scenario")) >= \
            {"smt.gccdiv", "sys.drain", "phase.flip"}

    def test_sweep_covers_every_kind(self):
        names = sweep_names()
        assert set(kernel_names()) < set(names)
        assert "smt.gccdiv" in names

    def test_unknown_target_names_choices(self):
        with pytest.raises(ValueError, match="unknown workload target"):
            get_target("no.such.kernel")

    def test_synthetic_fingerprint_tracks_scale(self):
        assert workload_fingerprint("gcc.mix", 0.5) != \
            workload_fingerprint("gcc.mix", 0.6)
        fp = workload_fingerprint("gcc.mix", 0.5)
        assert fp == {"kind": "synthetic", "params": {"n": 350}}

    def test_scenario_fingerprint_embeds_components(self):
        fp = workload_fingerprint("smt.gccdiv", SCALE)
        assert fp["kind"] == "scenario" and fp["family"] == "interleave"
        assert workload_fingerprint("gcc.mix", SCALE) in fp["components"]

    def test_fingerprints_are_json_stable(self):
        for name in sweep_names():
            blob = json.dumps(workload_fingerprint(name, SCALE),
                              sort_keys=True)
            assert json.loads(blob) == workload_fingerprint(name, SCALE)


class TestScenarioFamilies:
    def test_seq_equals_index(self):
        # the timing model's fetch/squash paths index the trace by seq
        for name in ("smt.gccdiv", "sys.drain", "phase.flip"):
            trace = build_trace(name, SCALE, use_cache=False)
            assert all(instr.seq == index
                       for index, instr in enumerate(trace))

    def test_builds_are_deterministic(self):
        for name in ("smt.gccdiv", "sys.drain", "phase.flip"):
            a = build_trace(name, SCALE, use_cache=False)
            b = build_trace(name, SCALE, use_cache=False)
            assert [repr(i) for i in a] == [repr(i) for i in b]

    def test_interleave_keeps_programs_disjoint(self):
        trace = build_trace("smt.gccdiv", SCALE, use_cache=False)
        programs = {instr.pc // PC_STRIDE for instr in trace}
        assert programs == {0, 1}
        for instr in trace:
            if instr.addr is not None:
                assert instr.addr // ADDR_STRIDE == instr.pc // PC_STRIDE
        # both component streams survive the merge in full
        merged = sum(len(build_trace(c, SCALE, use_cache=False))
                     for c in ("gcc.mix", "x264.divint"))
        assert len(trace) == merged

    def test_drain_injects_faults_and_core_skips_them(self):
        source = build_trace("gcc.mix", SCALE, use_cache=False)
        drained = build_trace("sys.drain", SCALE, use_cache=False)
        injected = (sum(1 for i in drained if i.fault)
                    - sum(1 for i in source if i.fault))
        assert injected > 0
        stats = O3Core(drained, base_config()).run()
        assert stats.exceptions >= injected
        assert stats.committed < len(drained)

    def test_drain_does_not_mutate_component(self):
        source = build_trace("gcc.mix", SCALE)       # shared LRU object
        before = sum(1 for i in source if i.fault)
        build_trace("sys.drain", SCALE, use_cache=False)
        assert sum(1 for i in source if i.fault) == before

    def test_scenarios_simulate_identically_across_workers(self):
        config = base_config()
        traces = {name: build_trace(name, SCALE)
                  for name in ("smt.gccdiv", "sys.drain", "phase.flip")}
        serial = run_config("s", config, traces, workers=1,
                            use_cache=False)
        parallel = run_config("s", config, traces, workers=2,
                              use_cache=False)
        for name in traces:
            assert fields(parallel.stats[name]) == \
                fields(serial.stats[name])

    def test_custom_scenario_registration(self):
        target = InterleaveTarget("tmp.mix", ("gcc.mix", "perl.branchy"),
                                  seed=99)
        try:
            register_target(target)
            assert has_target("tmp.mix")
            trace = build_trace("tmp.mix", SCALE, use_cache=False)
            assert len(trace) > 100
        finally:
            unregister_target("tmp.mix")


@pytest.fixture
def recorded(tmp_path):
    """A gcc.mix trace recorded to disk and imported as a target."""
    source = build_trace("gcc.mix", SCALE)
    path = tmp_path / "gcc.jsonl"
    save_trace(source, path, meta={"source": "gcc.mix", "scale": SCALE})
    target = add_trace_target(path, name="ext.gcc")
    yield target, source
    unregister_target("ext.gcc")


class TestTraceFileTarget:
    def test_kind_fingerprint_provenance(self, recorded, tmp_path):
        target, _ = recorded
        assert target.kind == "trace-file"
        fp = target.fingerprint(SCALE)
        assert fp == {"kind": "trace-file", "sha256": target.sha256}
        assert "gcc.mix" in target.provenance()
        # content identity: a byte-identical copy fingerprints the same
        copy = tmp_path / "copy.jsonl"
        copy.write_bytes(target.path.read_bytes())
        assert TraceFileTarget("copy", copy).sha256 == target.sha256

    def test_jobs_for_accepts_trace_file_targets(self, recorded):
        # the registry-only restriction is lifted: registered
        # trace-file targets ride the parallel executor
        traces = {"ext.gcc": build_trace("ext.gcc", SCALE)}
        jobs = jobs_for("l", base_config(), traces)
        assert jobs[0].workload == "ext.gcc"

    def test_checksum_mismatch_rejected(self, recorded):
        target, _ = recorded
        spec = ("trace-file", "ext.gcc.alias", str(target.path),
                "0" * 64)
        with pytest.raises(ValueError, match="checksum mismatch"):
            ensure_target(spec)

    def test_content_edit_detected_at_build(self, recorded):
        target, _ = recorded
        lines = target.path.read_text().splitlines()
        target.path.write_text("\n".join(lines) + " \n")
        with pytest.raises(ValueError, match="checksum mismatch"):
            target.build_trace(SCALE)

    def test_worker_spec_rebuilds_in_process(self, recorded):
        target, _ = recorded
        unregister_target("ext.gcc")
        rebuilt = ensure_target(target.worker_spec())
        assert rebuilt.sha256 == target.sha256
        assert has_target("ext.gcc")


class TestTraceFileDeterminismPin:
    """Recorded trace-file target ≡ source kernel, on every path."""

    @staticmethod
    def _numeric(stats):
        # SimStats.name embeds the workload label ("ext.gcc/..." vs
        # "gcc.mix/...") by design; every measured field must match
        payload = fields(stats)
        payload.pop("name")
        return payload

    @pytest.fixture(autouse=True)
    def _setup(self, recorded):
        self.target, self.source = recorded
        self.config = base_config(scheduler="orinoco", commit="orinoco")
        self.reference = self._numeric(O3Core(self.source,
                                              self.config).run())
        self.traces = {"ext.gcc": build_trace("ext.gcc", SCALE)}

    def _assert_matches(self, result, path):
        assert self._numeric(result.stats["ext.gcc"]) == self.reference, \
            f"trace-file target diverged from source kernel on {path}"

    def test_serial(self):
        self._assert_matches(
            run_config("pin", self.config, self.traces, workers=1,
                       use_cache=False), "serial")

    def test_jobs_2(self):
        # workers rebuild the target from (path, sha256) — never from
        # a pickled trace or the parent's registry
        self._assert_matches(
            run_config("pin", self.config, self.traces, workers=2,
                       use_cache=False), "--jobs 2")

    def test_lanes_4(self):
        self._assert_matches(
            run_config("pin", self.config, self.traces, workers=1,
                       lanes=4, use_cache=False), "--lanes 4")

    def test_cache_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_config("pin", self.config, self.traces, workers=1,
                           cache=cache)
        self._assert_matches(first, "cache cold")
        second = run_config("pin", self.config, self.traces, workers=1,
                            cache=cache)
        assert second.statuses["ext.gcc"] is CellStatus.CACHED
        self._assert_matches(second, "cache hit")

    def test_cache_key_is_content_addressed(self, tmp_path):
        from repro.harness import cache_key
        key_here = cache_key(self.config, "ext.gcc", SCALE)
        # same content under another path/registration → same key
        copy = tmp_path / "elsewhere.jsonl"
        copy.write_bytes(self.target.path.read_bytes())
        unregister_target("ext.gcc")
        add_trace_target(copy, name="ext.gcc")
        assert cache_key(self.config, "ext.gcc", SCALE) == key_here
