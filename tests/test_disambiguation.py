"""Memory disambiguation matrix (LQ rows x SQ columns)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MemoryDisambiguationMatrix


def mask(size, *indices):
    vec = np.zeros(size, dtype=bool)
    for idx in indices:
        vec[idx] = True
    return vec


class TestLoadSide:
    def test_load_with_no_unresolved_stores_is_nonspeculative(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.load_issue(0, mask(4))
        assert mdm.load_is_nonspeculative(0)
        assert mdm.nonspeculative_loads()[0]

    def test_load_blocked_by_unresolved_store(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(1)
        mdm.load_issue(0, mask(4, 1))
        assert not mdm.load_is_nonspeculative(0)
        assert not mdm.nonspeculative_loads()[0]

    def test_load_remove_clears_row(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(1)
        mdm.load_issue(0, mask(4, 1))
        mdm.load_remove(0)
        assert not mdm.load_valid[0]
        assert not mdm.matrix.row(0).any()

    def test_unresolved_mask_filtered_by_store_valid(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        # Store 2 was never allocated; its bit must not stick.
        mdm.load_issue(0, mask(4, 2))
        assert mdm.load_is_nonspeculative(0)


class TestStoreSide:
    def test_store_resolve_without_conflicts_unblocks(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(2)
        mdm.load_issue(0, mask(4, 2))
        mdm.load_issue(1, mask(4, 2))
        replays = mdm.store_resolve(2, conflicting_loads=mask(4))
        assert replays == []
        assert mdm.load_is_nonspeculative(0)
        assert mdm.load_is_nonspeculative(1)

    def test_store_resolve_reports_conflicting_loads(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(2)
        mdm.load_issue(0, mask(4, 2))
        mdm.load_issue(1, mask(4, 2))
        replays = mdm.store_resolve(2, conflicting_loads=mask(4, 1))
        assert replays == [1]

    def test_conflict_mask_ignores_nondependent_loads(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(2)
        mdm.load_issue(0, mask(4))        # did not bypass store 2
        replays = mdm.store_resolve(2, conflicting_loads=mask(4, 0))
        assert replays == []

    def test_store_dependents_column_read(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(3)
        mdm.load_issue(1, mask(4, 3))
        deps = mdm.store_dependents(3)
        assert list(np.flatnonzero(deps)) == [1]

    def test_store_remove_releases_dependents(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(0)
        mdm.load_issue(2, mask(4, 0))
        mdm.store_remove(0)
        assert mdm.load_is_nonspeculative(2)

    def test_double_allocate_rejected(self):
        mdm = MemoryDisambiguationMatrix(4, 4)
        mdm.store_allocate(0)
        with pytest.raises(ValueError):
            mdm.store_allocate(0)


class TestRectangularShapes:
    def test_lq_sq_sizes_differ(self):
        mdm = MemoryDisambiguationMatrix(6, 3)
        mdm.store_allocate(2)
        mdm.load_issue(5, mask(3, 2))
        assert not mdm.load_is_nonspeculative(5)
        mdm.store_resolve(2, conflicting_loads=mask(6))
        assert mdm.load_is_nonspeculative(5)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_load_nonspeculative_iff_all_bypassed_stores_resolved(data):
    """Property: a load is non-speculative exactly when every store it
    bypassed has since resolved or been removed."""
    lq, sq = 6, 5
    mdm = MemoryDisambiguationMatrix(lq, sq)
    live_stores = set()
    bypassed = {}   # lq entry -> set of sq entries it bypassed
    for _ in range(data.draw(st.integers(min_value=1, max_value=40))):
        action = data.draw(st.sampled_from(
            ["alloc_store", "issue_load", "resolve_store", "remove_store"]))
        if action == "alloc_store":
            free = [s for s in range(sq) if s not in live_stores]
            if not free:
                continue
            entry = data.draw(st.sampled_from(free))
            mdm.store_allocate(entry)
            live_stores.add(entry)
        elif action == "issue_load":
            free = [l for l in range(lq) if not mdm.load_valid[l]]
            if not free:
                continue
            entry = data.draw(st.sampled_from(free))
            subset = data.draw(st.lists(
                st.sampled_from(range(sq)), unique=True)) if live_stores else []
            vec = np.zeros(sq, dtype=bool)
            vec[subset] = True
            mdm.load_issue(entry, vec)
            bypassed[entry] = {s for s in subset if s in live_stores}
        elif action == "resolve_store" and live_stores:
            entry = data.draw(st.sampled_from(sorted(live_stores)))
            mdm.store_resolve(entry, conflicting_loads=np.zeros(lq, dtype=bool))
            for deps in bypassed.values():
                deps.discard(entry)
        elif action == "remove_store" and live_stores:
            entry = data.draw(st.sampled_from(sorted(live_stores)))
            mdm.store_remove(entry)
            live_stores.discard(entry)
            for deps in bypassed.values():
                deps.discard(entry)

        for lq_entry, deps in bypassed.items():
            if mdm.load_valid[lq_entry]:
                assert mdm.load_is_nonspeculative(lq_entry) == (not deps)
