"""Small edge cases across modules."""

import pytest

from repro.isa import (Emulator, EmulatorError, Instruction, Opcode,
                       Program, ProgramBuilder)
from repro.queues import RandomQueue


class TestEmulatorErrors:
    def test_jalr_to_invalid_target(self):
        b = ProgramBuilder()
        b.li("x1", 999)
        b.jalr("x0", "x1")
        b.halt()
        with pytest.raises(EmulatorError, match="jalr"):
            Emulator(b.build()).run()

    def test_falls_off_the_end_halts(self):
        program = Program(code=[Instruction(Opcode.NOP)])
        emulator = Emulator(program)
        trace = emulator.run()
        assert emulator.halted and len(trace) == 1

    def test_jal_to_end_of_program_halts(self):
        b = ProgramBuilder()
        b.jal("x0", "end")
        b.li("x1", 1)
        b.label("end")
        program = b.build()
        emulator = Emulator(program)
        emulator.run()
        assert emulator.halted
        assert emulator.regs[1] == 0        # skipped

    def test_step_after_halt_returns_none(self):
        b = ProgramBuilder()
        b.halt()
        emulator = Emulator(b.build())
        emulator.run()
        assert emulator.step() is None


class TestQueueBlockOps:
    def test_allocate_block_partial(self):
        q = RandomQueue(3)
        entries = q.allocate_block(5)
        assert len(entries) == 3

    def test_allocate_block_exact(self):
        q = RandomQueue(4)
        assert len(q.allocate_block(2)) == 2
        assert q.occupancy() == 2


class TestTraceRepr:
    def test_dyninstr_repr_variants(self):
        from repro.isa import trace_program
        b = ProgramBuilder()
        b.li("x1", 0x40)
        b.ld("x2", "x1", 0)
        b.beq("x1", "x0", "skip")
        b.label("skip")
        b.halt()
        trace = trace_program(b.build())
        texts = [repr(i) for i in trace]
        assert any("addr=0x40" in t for t in texts)
        assert any("taken=False" in t for t in texts)


class TestConfigEdges:
    def test_bad_iq_org(self):
        from repro.pipeline import base_config
        with pytest.raises(ValueError, match="iq_org"):
            base_config(iq_org="collapsible")

    def test_commit_depth_zero_means_unlimited_none_only(self):
        from repro.pipeline import base_config
        config = base_config(commit="orinoco", commit_depth=16)
        assert config.commit_depth == 16
