"""Property tests for the cross-lane vectorized select path.

The vector engine's select kernel replaces the age matrix's
single-oldest sense with an ``argmin`` over dispatch stamps, and
``IssueStage._grant_age`` replays ``AgeSelect.select`` from that hint.
The equivalence claim is exact: for any ready set, dispatch (age)
order, FU assignment, FU availability and issue width, the granted
entries — including the grant *order* and the rng entropy consumed by
the tie-break shuffle — must match the scalar policy running against a
real :class:`AgeMatrix` built in the same dispatch order.

A directed test then pins the engine-level contract: a mixed batch
(one vectorizable AGE lane + one fallback RAND lane) produces SimStats
field-identical to serial runs of the same cells.
"""

import dataclasses
import random
from types import SimpleNamespace

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core import AgeMatrix                          # noqa: E402
from repro.pipeline import O3Core, base_config            # noqa: E402
from repro.pipeline.lanes import (LaneBatch, LaneCell,    # noqa: E402
                                  lane_key)
from repro.pipeline.resources import FUType               # noqa: E402
from repro.pipeline.stages.issue import IssueStage        # noqa: E402
from repro.scheduler import AgeSelect, SelectContext      # noqa: E402
from repro.workloads import build_trace                   # noqa: E402

IQ_SIZE = 16
_I64_MAX = np.iinfo(np.int64).max


def _make_stage(iq_ops, ready, width, rng):
    """A real IssueStage over a duck-typed minimal pipeline state."""
    state = SimpleNamespace(
        iq_ops=iq_ops,
        ready_set=ready,
        rng=rng,
        select_policy=AgeSelect(),
        config=SimpleNamespace(issue_width=width, criticality=False),
    )
    return IssueStage(state, execute=None)


@st.composite
def select_cases(draw):
    """Random (dispatch order, ready set, FUs, availability, width)."""
    entries = sorted(draw(st.sets(st.integers(0, IQ_SIZE - 1),
                                  min_size=1, max_size=IQ_SIZE)))
    order = draw(st.permutations(entries))
    ready = sorted(draw(st.sets(st.sampled_from(entries), min_size=1)))
    fus = {entry: draw(st.sampled_from(list(FUType)))
           for entry in entries}
    avail = [draw(st.integers(0, 2)) for _ in FUType]
    width = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**32 - 1))
    return order, ready, fus, avail, width, seed


@settings(max_examples=120, deadline=None)
@given(select_cases())
def test_stamp_argmin_grant_matches_age_select(case):
    """Vectorized select ≡ AgeSelect: grants, order, and rng state."""
    order, ready, fus, avail, width, seed = case
    matrix = AgeMatrix(IQ_SIZE)
    iq_ops = {}
    for stamp, entry in enumerate(order, start=1):
        matrix.dispatch(entry)
        iq_ops[entry] = SimpleNamespace(fu=fus[entry],
                                        dispatch_stamp=stamp)

    # the select kernel's sense: mask non-ready stamps, argmin
    stamps = np.full(IQ_SIZE, _I64_MAX, dtype=np.int64)
    for entry in ready:
        stamps[entry] = iq_ops[entry].dispatch_stamp
    oldest = int(np.argmin(stamps))

    rng_scalar = random.Random(seed)
    rng_vec = random.Random(seed)
    ctx = SelectContext(
        entries=list(ready),
        fu_of=lambda e: iq_ops[e].fu,
        age_of=lambda e: iq_ops[e].dispatch_stamp,
        age_matrix=matrix,
        fu_available=list(avail),
        width=width,
        rng=rng_scalar)
    want = AgeSelect().select(ctx)

    stage = _make_stage(iq_ops, set(ready), width, rng_vec)
    got = stage._grant_age(oldest, list(avail), rng=rng_vec)

    assert got == want, (
        f"grants diverged: kernel {got} vs AgeSelect {want} "
        f"(ready={ready}, order={order}, avail={avail}, width={width})")
    assert rng_scalar.getstate() == rng_vec.getstate(), (
        "tie-break shuffle consumed different rng entropy")


@settings(max_examples=60, deadline=None)
@given(select_cases())
def test_stamp_argmin_is_matrix_oldest(case):
    """The stamp argmin picks exactly the matrix's single-oldest ready
    entry (dispatch order ≡ age order when criticality is off)."""
    order, ready, _fus, _avail, _width, _seed = case
    matrix = AgeMatrix(IQ_SIZE)
    stamps = np.full(IQ_SIZE, _I64_MAX, dtype=np.int64)
    for stamp, entry in enumerate(order, start=1):
        matrix.dispatch(entry)
        if entry in ready:
            stamps[entry] = stamp
    request = np.zeros(IQ_SIZE, dtype=bool)
    request[ready] = True
    grant = matrix.select_single_oldest(request)
    assert int(np.argmin(stamps)) == int(grant.argmax())
    assert grant.sum() == 1


class TestMixedBatchIdentity:
    """One vectorizable lane + one scalar-fallback lane, stepped by the
    same LaneBatch, must both stay field-identical to serial."""

    def test_mixed_batch_matches_serial(self):
        trace = build_trace("gcc.mix", 0.2)
        vec_config = base_config(scheduler="age", commit="ioc")
        fallback_config = base_config(scheduler="rand", commit="ioc")
        serial = [
            O3Core(trace, vec_config).run(),
            O3Core(trace, fallback_config).run(),
        ]
        key = lane_key(vec_config)
        assert key == lane_key(fallback_config)
        batch = LaneBatch(2, key[0], key[1])
        report = batch.run([
            LaneCell(0, trace, vec_config),
            LaneCell(1, trace, fallback_config),
        ])
        assert len(report.outcomes) == 2
        by_index = {out.index: out for out in report.outcomes}
        for index, reference in enumerate(serial):
            outcome = by_index[index]
            assert outcome.error is None, outcome.error_tb
            got = dataclasses.asdict(outcome.stats)
            want = dataclasses.asdict(reference)
            assert got == want, (
                f"lane {index} diverged: "
                f"{[k for k in want if got.get(k) != want[k]][:8]}")
