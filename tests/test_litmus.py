"""TSO message-passing litmus: lockdown preserves load-load order."""

import pytest

from repro.lsq.litmus import (DATA, FLAG, LitmusOutcome, enumerate_outcomes,
                              run_interleaving, tso_holds)


class TestOutcome:
    def test_forbidden_classification(self):
        assert LitmusOutcome(r_flag=1, r_data=0).forbidden_under_tso
        assert not LitmusOutcome(r_flag=1, r_data=1).forbidden_under_tso
        assert not LitmusOutcome(r_flag=0, r_data=0).forbidden_under_tso
        assert not LitmusOutcome(r_flag=0, r_data=1).forbidden_under_tso


class TestInterleavings:
    def test_in_order_reader_sees_allowed_outcome(self):
        outcome = run_interleaving(["W", "W", "Lf", "Ld"],
                                   use_lockdown=False)
        assert outcome == LitmusOutcome(r_flag=1, r_data=1)

    def test_early_commit_without_lockdown_breaks_tso(self):
        """The exact reordering the paper worries about: the younger
        data load binds 0 and commits, then both stores land, then the
        flag load reads 1."""
        outcome = run_interleaving(["Ld", "Cd", "W", "W", "Lf"],
                                   use_lockdown=False)
        assert outcome is not None
        assert outcome.forbidden_under_tso

    def test_lockdown_blocks_the_store(self):
        """With the lockdown matrix, the writer's invalidation of the
        bound line is withheld, so the same schedule cannot execute."""
        outcome = run_interleaving(["Ld", "Cd", "W", "W", "Lf"],
                                   use_lockdown=True)
        assert outcome is None          # the store had to wait

    def test_lockdown_released_after_older_load(self):
        outcome = run_interleaving(["Ld", "Cd", "Lf", "W", "W"],
                                    use_lockdown=True)
        assert outcome == LitmusOutcome(r_flag=0, r_data=0)


class TestFullEnumeration:
    def test_without_lockdown_weak_outcome_observable(self):
        outcomes = enumerate_outcomes(use_lockdown=False)
        assert not tso_holds(outcomes)

    def test_with_lockdown_tso_holds(self):
        outcomes = enumerate_outcomes(use_lockdown=True)
        assert tso_holds(outcomes)
        assert len(outcomes) >= 3       # the allowed outcomes still occur

    def test_lockdown_does_not_remove_allowed_outcomes(self):
        allowed = {LitmusOutcome(0, 0), LitmusOutcome(1, 1),
                   LitmusOutcome(0, 1)}
        outcomes = enumerate_outcomes(use_lockdown=True)
        assert allowed <= outcomes
