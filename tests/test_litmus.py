"""TSO message-passing litmus: lockdown preserves load-load order.

Extended with the differential-verification oracle
(:mod:`repro.verify.oracle`): every classic litmus shape's allowed
set is pinned against the published RVWMO / TSO verdicts, and the
single-shape MP model here is cross-checked against the oracle.
"""

import pytest

from repro.lsq.litmus import (DATA, FLAG, LitmusOutcome, enumerate_outcomes,
                              run_interleaving, tso_holds)
from repro.verify.generator import CLASSIC_SHAPES, MemOp, VerifyProgram
from repro.verify.oracle import allowed_outcomes


class TestOutcome:
    def test_forbidden_classification(self):
        assert LitmusOutcome(r_flag=1, r_data=0).forbidden_under_tso
        assert not LitmusOutcome(r_flag=1, r_data=1).forbidden_under_tso
        assert not LitmusOutcome(r_flag=0, r_data=0).forbidden_under_tso
        assert not LitmusOutcome(r_flag=0, r_data=1).forbidden_under_tso


class TestInterleavings:
    def test_in_order_reader_sees_allowed_outcome(self):
        outcome = run_interleaving(["W", "W", "Lf", "Ld"],
                                   use_lockdown=False)
        assert outcome == LitmusOutcome(r_flag=1, r_data=1)

    def test_early_commit_without_lockdown_breaks_tso(self):
        """The exact reordering the paper worries about: the younger
        data load binds 0 and commits, then both stores land, then the
        flag load reads 1."""
        outcome = run_interleaving(["Ld", "Cd", "W", "W", "Lf"],
                                   use_lockdown=False)
        assert outcome is not None
        assert outcome.forbidden_under_tso

    def test_lockdown_blocks_the_store(self):
        """With the lockdown matrix, the writer's invalidation of the
        bound line is withheld, so the same schedule cannot execute."""
        outcome = run_interleaving(["Ld", "Cd", "W", "W", "Lf"],
                                   use_lockdown=True)
        assert outcome is None          # the store had to wait

    def test_lockdown_released_after_older_load(self):
        outcome = run_interleaving(["Ld", "Cd", "Lf", "W", "W"],
                                    use_lockdown=True)
        assert outcome == LitmusOutcome(r_flag=0, r_data=0)


class TestFullEnumeration:
    def test_without_lockdown_weak_outcome_observable(self):
        outcomes = enumerate_outcomes(use_lockdown=False)
        assert not tso_holds(outcomes)

    def test_with_lockdown_tso_holds(self):
        outcomes = enumerate_outcomes(use_lockdown=True)
        assert tso_holds(outcomes)
        assert len(outcomes) >= 3       # the allowed outcomes still occur

    def test_lockdown_does_not_remove_allowed_outcomes(self):
        allowed = {LitmusOutcome(0, 0), LitmusOutcome(1, 1),
                   LitmusOutcome(0, 1)}
        outcomes = enumerate_outcomes(use_lockdown=True)
        assert allowed <= outcomes


# -- oracle verdicts for the classic shapes ---------------------------------

_X, _Y = 0x100, 0x108


def _admits(program, model, binds=None, mem=None):
    """Does any allowed outcome match the given register bindings
    (``(thread, op_idx) -> value``) and final-memory constraints?"""
    for outcome in allowed_outcomes(program, model):
        bound = dict(outcome[0])
        memory = dict(outcome[1])
        if binds and any(bound.get(k) != v for k, v in binds.items()):
            continue
        if mem and any(memory.get(a) != v for a, v in mem.items()):
            continue
        return True
    return False


class TestOracleVerdicts:
    """The oracle reproduces the published litmus verdict table.

    Each entry names the shape's *weak* outcome and whether RVWMO /
    TSO admit it (herd7 verdicts for the fence-free RISC-V / x86
    variants).
    """

    # shape -> (register bindings, final memory, rvwmo?, tso?)
    TABLE = {
        "sb":       ({(0, 1): 0, (1, 1): 0}, None, True, True),
        "sb_fence": ({(0, 2): 0, (1, 2): 0}, None, False, False),
        "mp":       ({(1, 0): 2, (1, 1): 0}, None, True, False),
        "mp_fence": ({(1, 0): 2, (1, 2): 0}, None, False, False),
        "lb":       ({(0, 0): 2, (1, 0): 1}, None, True, False),
        "s":        ({(1, 0): 2}, {_X: 1}, True, False),
        "r":        ({(1, 1): 0}, {_Y: 2}, True, True),
        "2p2w":     (None, {_X: 1, _Y: 3}, True, False),
        "mp_stress": ({(1, 1): 2, (1, 2): 0}, None, True, False),
    }

    @pytest.mark.parametrize("shape", sorted(TABLE))
    def test_weak_outcome_verdict(self, shape):
        binds, mem, rvwmo_ok, tso_ok = self.TABLE[shape]
        program = CLASSIC_SHAPES[shape]
        assert _admits(program, "rvwmo", binds, mem) is rvwmo_ok
        assert _admits(program, "tso", binds, mem) is tso_ok

    @pytest.mark.parametrize("shape", sorted(TABLE))
    def test_tso_refines_rvwmo(self, shape):
        """Everything TSO admits, RVWMO admits too."""
        program = CLASSIC_SHAPES[shape]
        assert allowed_outcomes(program, "tso") \
            <= allowed_outcomes(program, "rvwmo")

    def test_strong_outcome_always_allowed(self):
        """The fully-serialized MP execution is admitted everywhere."""
        program = CLASSIC_SHAPES["mp"]
        strong = {(1, 0): 0, (1, 1): 0}      # reader ran first
        assert _admits(program, "rvwmo", strong)
        assert _admits(program, "tso", strong)


class TestOracleCrossCheck:
    """The §3.3 two-agent MP model and the exhaustive oracle agree."""

    @pytest.fixture(scope="class")
    def mp_program(self):
        # same shape as lsq.litmus: writer stores data then flag,
        # reader loads flag then data (both value 1, as there)
        return VerifyProgram("mp_xcheck", (
            (MemOp("store", DATA, 1, 0), MemOp("store", FLAG, 1, 0)),
            (MemOp("load", FLAG, None, 0), MemOp("load", DATA, None, 0)),
        ), (DATA, FLAG))

    @staticmethod
    def _project(outcomes):
        """Oracle outcomes -> {(r_flag, r_data)}."""
        return {(dict(b)[(1, 0)], dict(b)[(1, 1)]) for b, _ in outcomes}

    def test_lockdown_outcomes_subset_of_tso(self, mp_program):
        tso = self._project(allowed_outcomes(mp_program, "tso"))
        observed = {(o.r_flag, o.r_data)
                    for o in enumerate_outcomes(use_lockdown=True)}
        assert observed <= tso

    def test_unlocked_outcomes_subset_of_rvwmo(self, mp_program):
        rvwmo = self._project(allowed_outcomes(mp_program, "rvwmo"))
        observed = {(o.r_flag, o.r_data)
                    for o in enumerate_outcomes(use_lockdown=False)}
        assert observed <= rvwmo

    def test_unlocked_escapes_tso(self, mp_program):
        """Without lockdown the two-agent model produces exactly the
        outcome the TSO oracle forbids."""
        tso = self._project(allowed_outcomes(mp_program, "tso"))
        observed = {(o.r_flag, o.r_data)
                    for o in enumerate_outcomes(use_lockdown=False)}
        assert (1, 0) in observed - tso

    def test_interleaving_outcome_in_oracle(self, mp_program):
        """A concrete legal schedule's outcome is oracle-admitted."""
        outcome = run_interleaving(["W", "W", "Lf", "Ld"],
                                   use_lockdown=False)
        tso = self._project(allowed_outcomes(mp_program, "tso"))
        assert (outcome.r_flag, outcome.r_data) in tso
