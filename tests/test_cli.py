"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gcc.mix"])
        assert args.preset == "base" and args.commit == "ioc"

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gcc.mix",
                                       "--commit", "bogus"])


class TestCommands:
    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "mcf.chase" in out and "xalanc.hash" in out

    def test_run(self, capsys):
        assert main(["run", "gcc.mix", "--scale", "0.3",
                     "--commit", "orinoco"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "occupancy" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "224" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Age Matrix (IQ)" in out and "(paper)" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        assert "area overhead" in capsys.readouterr().out

    def test_scalability(self, capsys):
        assert main(["scalability"]) == 0
        assert "512x512" in capsys.readouterr().out

    def test_fig14_small(self, capsys):
        assert main(["fig14", "--scale", "0.2",
                     "--kernels", "gcc.mix"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out and "Orinoco" in out

    def test_stalls_small(self, capsys):
        assert main(["stalls", "--scale", "0.2",
                     "--kernels", "xalanc.hash"]) == 0
        out = capsys.readouterr().out
        assert "ready-but-not-head" in out


class TestNewCommands:
    def test_run_with_timeline(self, capsys):
        assert main(["run", "gcc.mix", "--scale", "0.2",
                     "--commit", "orinoco", "--timeline", "8"]) == 0
        out = capsys.readouterr().out
        assert "D=dispatch" in out and "out-of-order commits" in out

    def test_characterize(self, capsys):
        assert main(["characterize", "--scale", "0.2",
                     "--kernels", "gcc.mix"]) == 0
        assert "Workload characterization" in capsys.readouterr().out

    def test_save_trace(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["save-trace", "gcc.mix", str(path),
                     "--scale", "0.2"]) == 0
        assert path.exists()
        from repro.isa import load_trace
        assert len(load_trace(path)) > 100

    def test_fig15_includes_bars(self, capsys):
        assert main(["fig15", "--scale", "0.2",
                     "--kernels", "x264.divint"]) == 0
        out = capsys.readouterr().out
        assert "geomean speedup vs IOC" in out and "|" in out


class TestTraceCommands:
    """``repro trace record/convert/validate`` and target listing."""

    def test_kernels_lists_kinds_and_provenance(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "synthetic" in out and "scenario" in out
        assert "smt.gccdiv" in out and "sys.drain" in out
        assert "kernels.gcc_mix" in out

    def test_record_validate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "rec.jsonl"
        assert main(["trace", "record", "gcc.mix", str(path),
                     "--scale", "0.2"]) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["trace", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "sha256" in out and "gcc.mix" in out

    def test_convert_v1(self, tmp_path, capsys):
        import json as jsonlib

        from repro.isa import load_trace, read_header, save_trace
        from repro.workloads import build_trace
        src, dst = tmp_path / "v1.jsonl", tmp_path / "v2.jsonl"
        trace = build_trace("x264.divint", 0.2)
        save_trace(trace, src)
        # rewrite the header as v1 (drop meta)
        lines = src.read_text().splitlines()
        header = jsonlib.loads(lines[0])
        header["version"] = 1
        del header["meta"]
        lines[0] = jsonlib.dumps(header)
        src.write_text("\n".join(lines) + "\n")
        assert main(["trace", "convert", str(src), str(dst)]) == 0
        assert "converted" in capsys.readouterr().out
        assert read_header(dst)["version"] == 2
        assert len(load_trace(dst)) == len(trace)

    def test_validate_rejects_corruption(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        assert main(["trace", "record", "x264.divint", str(path),
                     "--scale", "0.2"]) == 0
        capsys.readouterr()
        lines = path.read_text().splitlines()
        lines[3] = lines[3].replace(lines[3][1:lines[3].index(",")],
                                    '"oops"', 1)
        path.write_text("\n".join(lines) + "\n")
        from repro.isa import validate_trace_file
        with pytest.raises(ValueError, match="line 4"):
            validate_trace_file(path)

    def test_run_accepts_trace_path(self, tmp_path, capsys):
        from repro.workloads import unregister_target
        path = tmp_path / "run.jsonl"
        assert main(["trace", "record", "gcc.mix", str(path),
                     "--scale", "0.2"]) == 0
        capsys.readouterr()
        try:
            assert main(["run", str(path), "--commit", "orinoco"]) == 0
            assert "IPC" in capsys.readouterr().out
        finally:
            unregister_target("trace:gcc.mix")

    def test_experiment_accepts_trace_import(self, tmp_path, capsys):
        from repro.workloads import unregister_target
        path = tmp_path / "sweep.jsonl"
        assert main(["trace", "record", "gcc.mix", str(path),
                     "--scale", "0.15"]) == 0
        capsys.readouterr()
        try:
            assert main(["fig14", "--scale", "0.15", "--no-cache",
                         "--trace", str(path),
                         "--kernels", "trace:gcc.mix"]) == 0
            out = capsys.readouterr().out
            assert "Figure 14" in out and "trace:gcc.mix" in out
        finally:
            unregister_target("trace:gcc.mix")


class TestExecutorFlags:
    def test_jobs_and_no_cache_parsed(self):
        args = build_parser().parse_args(
            ["fig14", "--jobs", "3", "--no-cache"])
        assert args.jobs == 3 and args.no_cache

    def test_jobs_default_is_env_driven(self):
        args = build_parser().parse_args(["fig15"])
        assert args.jobs is None and not args.no_cache

    def test_bench_parser(self):
        args = build_parser().parse_args(
            ["bench", "fig15", "--jobs", "2", "--no-cache"])
        assert args.figure == "fig15"
        assert args.jobs == 2 and args.no_cache

    def test_bench_smoke_under_executor(self, capsys):
        assert main(["bench", "fig14", "--scale", "0.15",
                     "--kernels", "gcc.mix", "--jobs", "2",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out
        assert "executor:" in out and "workers=2" in out
        assert "wall-clock" in out
