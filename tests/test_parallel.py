"""Parallel executor + result cache: determinism, dedup, leak safety.

The non-negotiable invariant: serial, ``workers=1``, ``workers=4``,
and cache-hit paths all produce bit-identical ``SimStats``.  Relative
IPC comparisons between scheduler/commit policies only hold if a
cell's result never depends on how (or how many times) it was run.
"""

import dataclasses
import json
import pathlib

import pytest

import repro.harness.parallel as parallel
from repro.criticality import CriticalityTagger, clear_tags
from repro.harness import (Job, ResultCache, SuiteResult, cache_key,
                           jobs_for, run_config,
                           run_config_with_criticality,
                           run_criticality_suite, run_suite)
from repro.isa import Trace
from repro.pipeline import O3Core, base_config
from repro.workloads import build_suite, build_trace, generation_params

WORKLOADS = ["gcc.mix", "x264.divint", "perl.branchy"]
SCALE = 0.25
CONFIGS = [
    ("age+ioc", base_config(scheduler="age", commit="ioc")),
    ("orinoco", base_config(scheduler="orinoco", commit="orinoco")),
]


def fields(stats):
    return dataclasses.asdict(stats)


@pytest.fixture(scope="module")
def traces():
    return build_suite(SCALE, WORKLOADS)


@pytest.fixture(scope="module")
def serial_reference(traces):
    """The seed path: a plain in-process loop, no executor, no cache."""
    return {label: {name: O3Core(trace, config).run()
                    for name, trace in traces.items()}
            for label, config in CONFIGS}


GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_simstats.json"


class TestDeterminism:
    def test_matches_prerefactor_golden(self, serial_reference):
        """Refactor guard: the staged core must reproduce, field by
        field, the SimStats captured from the pre-refactor monolith
        (tests/data/golden_simstats.json).  Combined with the
        workers/cache tests below — which compare those paths against
        the same serial reference — this pins all three execution paths
        to the golden record.
        """
        golden = json.loads(GOLDEN_PATH.read_text())
        for label, _ in CONFIGS:
            for name in WORKLOADS:
                got = fields(serial_reference[label][name])
                assert got == golden[label][name], \
                    f"{label}/{name} diverged from the pre-refactor golden"

    @pytest.mark.parametrize("workers", [1, 4])
    def test_workers_bit_identical_to_serial(self, traces,
                                             serial_reference, workers):
        for label, config in CONFIGS:
            result = run_config(label, config, traces,
                                workers=workers, use_cache=False)
            for name in WORKLOADS:
                assert fields(result.stats[name]) == \
                    fields(serial_reference[label][name]), \
                    f"{label}/{name} diverged at workers={workers}"

    @pytest.mark.parametrize("chunk", [1, 4, None],
                             ids=["chunk1", "chunk4", "auto"])
    def test_chunked_dispatch_bit_identical_to_serial(self, traces,
                                                      serial_reference,
                                                      chunk):
        """Batched dispatch is a transport optimisation: any chunk
        size (including auto-tuned) must be invisible in the stats."""
        for label, config in CONFIGS:
            result = run_config(label, config, traces, workers=2,
                                use_cache=False, chunk=chunk)
            for name in WORKLOADS:
                assert fields(result.stats[name]) == \
                    fields(serial_reference[label][name]), \
                    f"{label}/{name} diverged at chunk={chunk}"

    @pytest.mark.parametrize("lanes", [1, 4, 8])
    def test_lane_batched_identical_to_serial(self, traces,
                                              serial_reference, lanes):
        """The lane-stacked engine is a storage-layout optimisation:
        any lane width (1 = the untouched reference path) must be
        invisible in the stats, against the same golden-pinned serial
        reference as the workers/chunk/cache paths."""
        for label, config in CONFIGS:
            result = run_config(label, config, traces, workers=1,
                                use_cache=False, lanes=lanes)
            for name in WORKLOADS:
                assert fields(result.stats[name]) == \
                    fields(serial_reference[label][name]), \
                    f"{label}/{name} diverged at lanes={lanes}"
            if lanes > 1:
                assert result.lane_batches, \
                    "lane path not exercised despite lanes > 1"
                assert result.mean_lane_occupancy() > 1.0

    def test_lanes_compose_with_workers(self, traces, serial_reference):
        """Lane groups dispatched through the worker pool (one batch
        per task) still return field-identical per-cell stats."""
        for label, config in CONFIGS:
            result = run_config(label, config, traces, workers=2,
                                use_cache=False, lanes=2)
            for name in WORKLOADS:
                assert fields(result.stats[name]) == \
                    fields(serial_reference[label][name]), \
                    f"{label}/{name} diverged at workers=2, lanes=2"
            assert result.lane_batches

    def test_cache_hits_bit_identical(self, traces, serial_reference,
                                      tmp_path):
        cache = ResultCache(tmp_path)
        for label, config in CONFIGS:
            first = run_config(label, config, traces, workers=2,
                               cache=cache)
            assert not any(first.cached.values())
            second = run_config(label, config, traces, workers=2,
                                cache=cache)
            assert all(second.cached.values())
            for name in WORKLOADS:
                assert fields(second.stats[name]) == \
                    fields(serial_reference[label][name]), \
                    f"{label}/{name} diverged through the cache"

    def test_criticality_bit_identical_to_serial(self, traces):
        profile_config = base_config()
        config = base_config(scheduler="cri")
        reference = {}
        for name, trace in traces.items():       # the seed CRI path
            profiler = O3Core(trace, profile_config)
            profiler.run()
            tagger = CriticalityTagger()
            tagger.feed_profile(profiler.pc_l1_misses,
                                profiler.pc_mispredicts)
            tagger.tag(trace)
            try:
                reference[name] = O3Core(trace, config).run()
            finally:
                clear_tags(trace)
        result = run_config_with_criticality(
            "cri", config, traces, profile_config, workers=4,
            use_cache=False)
        for name in WORKLOADS:
            assert fields(result.stats[name]) == fields(reference[name])


class TestExecutor:
    def test_run_suite_groups_labels_and_times_cells(self, traces):
        jobs = (jobs_for("A", CONFIGS[0][1], traces)
                + jobs_for("B", CONFIGS[1][1], traces))
        results = run_suite(jobs, workers=2)
        assert list(results) == ["A", "B"]
        for result in results.values():
            assert set(result.stats) == set(WORKLOADS)
            assert set(result.timings) == set(WORKLOADS)
            assert all(t >= 0.0 for t in result.timings.values())

    def test_affinity_chunking_hits_worker_trace_lru(self, traces):
        """Same-workload cells across configs are sorted adjacent and
        share a dispatch chunk, so at most one trace build per
        (workload, worker) — every other cell is a trace-LRU hit."""
        jobs = (jobs_for("A", CONFIGS[0][1], traces)
                + jobs_for("B", CONFIGS[1][1], traces))
        results = run_suite(jobs, workers=2, chunk=2)
        hits = sum(result.trace_cache_hits()
                   for result in results.values())
        assert hits >= len(WORKLOADS), \
            f"expected >= {len(WORKLOADS)} trace-LRU hits, got {hits}"

    def test_worker_path_reports_queueing(self, traces):
        label, config = CONFIGS[0]
        result = run_config(label, config, traces, workers=2,
                            use_cache=False)
        assert set(result.queued) == set(WORKLOADS)
        assert all(q >= 0.0 for q in result.queued.values())
        assert result.queued_seconds() >= 0.0
        # timings measure simulation only — dispatch-measured, so each
        # cell's elapsed must stay below the whole suite's wall and
        # never absorb its own queue wait
        assert all(result.timings[name] >= 0.0 for name in WORKLOADS)

    def test_serial_path_reports_zero_queueing(self, traces):
        label, config = CONFIGS[0]
        result = run_config(label, config, traces, workers=1,
                            use_cache=False)
        assert result.queued_seconds() == 0.0

    def test_cached_cells_report_zero_time(self, traces, tmp_path):
        cache = ResultCache(tmp_path)
        label, config = CONFIGS[0]
        run_config(label, config, traces, workers=1, cache=cache)
        again = run_config(label, config, traces, workers=1, cache=cache)
        assert again.cache_hits() == len(WORKLOADS)
        assert again.sim_seconds() == 0.0

    def test_profile_shared_across_dependent_configs(self, traces,
                                                     monkeypatch):
        original = parallel._simulate_profile
        calls = []

        def counting(task):
            calls.append(task)
            return original(task)

        monkeypatch.setattr(parallel, "_simulate_profile", counting)
        specs = [("cri/orinoco", base_config(scheduler="cri")),
                 ("cri/age", base_config(scheduler="age",
                                         criticality=True))]
        results = run_criticality_suite(specs, traces, base_config(),
                                        workers=1, use_cache=False)
        # one profile per workload feeds both dependent configs
        assert len(calls) == len(WORKLOADS)
        assert set(results) == {"cri/orinoco", "cri/age"}

    def test_tag_crash_does_not_leak_tags(self, traces, monkeypatch):
        def exploding_tag(self, trace):
            for count, instr in enumerate(trace):
                if count >= 10:
                    raise RuntimeError("tagger died mid-tag")
                instr.critical = True

        monkeypatch.setattr(CriticalityTagger, "tag", exploding_tag)
        with pytest.raises(RuntimeError, match="mid-tag"):
            run_config_with_criticality(
                "cri", base_config(scheduler="cri"), traces,
                base_config(), workers=1, use_cache=False)
        for trace in traces.values():
            assert not any(instr.critical for instr in trace)

    def test_adhoc_traces_fall_back_to_serial(self):
        registry_trace = build_trace("gcc.mix", SCALE)
        adhoc = Trace(registry_trace.instrs, name="custom")
        result = run_config("x", base_config(), {"custom": adhoc},
                            workers=4, use_cache=False)
        assert result.stats["custom"].committed > 0
        assert result.cached == {"custom": False}

    def test_jobs_for_rejects_non_registry_traces(self):
        adhoc = Trace([], name="custom")
        with pytest.raises(ValueError, match="not rebuildable"):
            jobs_for("x", base_config(), {"custom": adhoc})


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key(base_config(), "gcc.mix", 0.5) == \
            cache_key(base_config(), "gcc.mix", 0.5)

    def test_config_field_busts_key(self):
        assert cache_key(base_config(), "gcc.mix", 0.5) != \
            cache_key(base_config(rob_size=128), "gcc.mix", 0.5)

    def test_policy_busts_key(self):
        assert cache_key(base_config(scheduler="age"), "gcc.mix", 0.5) != \
            cache_key(base_config(scheduler="orinoco"), "gcc.mix", 0.5)

    def test_scale_busts_key(self):
        # REPRO_SCALE feeds straight into the generation parameters
        assert cache_key(base_config(), "gcc.mix", 0.5) != \
            cache_key(base_config(), "gcc.mix", 0.6)
        assert generation_params("gcc.mix", 0.5) != \
            generation_params("gcc.mix", 0.6)

    def test_workload_busts_key(self):
        assert cache_key(base_config(), "gcc.mix", 0.5) != \
            cache_key(base_config(), "mcf.chase", 0.5)

    def test_profile_config_busts_key(self):
        plain = cache_key(base_config(scheduler="cri"), "gcc.mix", 0.5)
        with_profile = cache_key(base_config(scheduler="cri"), "gcc.mix",
                                 0.5, profile_config=base_config())
        assert plain != with_profile


class TestCacheStore:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(base_config(), "gcc.mix", 0.5)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_profile_roundtrip_restores_int_pcs(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_profile("k", {12: 3, 40: 1}, {7: 2})
        misses, mispredicts = cache.get_profile("k")
        assert misses == {12: 3, 40: 1}
        assert mispredicts == {7: 2}


class TestSuiteResult:
    def test_missing_workload_raises_named_keyerror(self):
        result = SuiteResult("fig14/AGE", base_config())
        with pytest.raises(KeyError) as excinfo:
            result.ipc("lbm.stream")
        message = str(excinfo.value)
        assert "lbm.stream" in message and "fig14/AGE" in message
