"""Circuit model: Table 2 calibration, PIM sensing, comparisons."""

import pytest

from repro.circuit import (BitlineModel, CollapsibleQueueCost,
                           DynamicLogicMatrix, PAPER_TABLE2, SRAM8TArray,
                           StaticLogicMatrix, format_scalability,
                           format_table2, overhead_report,
                           scalability_report, simulate_bitcount, table2,
                           verify_six_sigma)


class TestArrayGeometry:
    def test_validation(self):
        with pytest.raises(ValueError):
            SRAM8TArray(0, 4)
        with pytest.raises(ValueError):
            SRAM8TArray(96, 96, banks=5)      # 96 % 5 != 0
        with pytest.raises(ValueError):
            SRAM8TArray(96, 96, vertical_splits=5)

    def test_transistor_count(self):
        assert SRAM8TArray(96, 96).transistor_count() == 8 * 96 * 96


class TestTable2Calibration:
    @pytest.mark.parametrize("name,tolerance", [
        ("Age Matrix (IQ)", 0.05),
        ("Age Matrix (ROB)", 0.05),
        ("Memory Disambiguation Matrix", 0.05),
        ("Wakeup Matrix", 0.05),
    ])
    def test_area_within_tolerance(self, name, tolerance):
        row = next(r for r in table2() if r.name == name)
        paper = PAPER_TABLE2[name]["area_mm2"]
        assert abs(row.area_mm2 - paper) / paper < tolerance

    @pytest.mark.parametrize("name,tolerance", [
        ("Age Matrix (IQ)", 0.05),
        ("Age Matrix (ROB)", 0.05),
        ("Memory Disambiguation Matrix", 0.16),   # documented deviation
        ("Wakeup Matrix", 0.05),
    ])
    def test_latency_within_tolerance(self, name, tolerance):
        row = next(r for r in table2() if r.name == name)
        paper = PAPER_TABLE2[name]["latency_ps"]
        assert abs(row.latency_ps - paper) / paper < tolerance

    @pytest.mark.parametrize("name", list(PAPER_TABLE2))
    def test_power_within_2x(self, name):
        row = next(r for r in table2() if r.name == name)
        paper = PAPER_TABLE2[name]["power_w"]
        assert paper / 2 < row.power_w < paper * 2

    def test_format_includes_paper_rows(self):
        text = format_table2()
        assert "(paper)" in text and "429" in text


class TestScaling:
    def test_area_grows_with_size(self):
        small = SRAM8TArray(96, 96).area_mm2()
        large = SRAM8TArray(224, 224).area_mm2()
        # cell count grows 5.4x; periphery amortizes, so area grows
        # superlinearly in row count but a bit below the cell ratio
        assert large > small * 3.5

    def test_latency_grows_with_rows(self):
        assert SRAM8TArray(224, 224).read_latency_ps() > \
            SRAM8TArray(96, 96).read_latency_ps()

    def test_rob_512_needs_vertical_split(self):
        big = SRAM8TArray(512, 512, banks=4)
        assert not big.meets_timing()
        splits = big.min_vertical_splits()
        assert splits > 1
        fixed = SRAM8TArray(512, 512, banks=4, vertical_splits=splits)
        assert fixed.meets_timing()

    def test_scalability_report_matches_paper_narrative(self):
        rows = {f"{r.rows}": r for r in scalability_report()}
        assert rows["96"].meets_2ghz
        assert rows["224"].meets_2ghz
        assert not rows["512"].meets_2ghz
        assert rows["512"].required_splits >= 2
        assert "512x512" in format_scalability()


class TestBitlineComputing:
    def test_voltage_monotone_in_count(self):
        m = BitlineModel(96)
        voltages = [m.voltage_mv(k) for k in range(8)]
        assert all(a > b for a, b in zip(voltages, voltages[1:]))

    def test_sense_implements_bitcount_threshold(self):
        m = BitlineModel(96)
        for threshold in (1, 2, 4, 8):
            for ones in range(12):
                assert m.sense(ones, threshold) == (ones < threshold)

    def test_vref_between_levels(self):
        m = BitlineModel(96)
        vref = m.vref_for_threshold_mv(4)
        assert m.voltage_mv(4) < vref < m.voltage_mv(3)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            BitlineModel(96).vref_for_threshold_mv(0)


class TestMonteCarlo:
    def test_six_sigma_for_practical_issue_widths(self):
        model = BitlineModel(96)
        assert verify_six_sigma(model, max_threshold=8, trials=4000)

    def test_no_failures_sampled(self):
        model = BitlineModel(96)
        result = simulate_bitcount(model, threshold=4, trials=4000)
        assert result.failures == 0
        assert result.margin_sigma > 6

    def test_margin_shrinks_with_threshold(self):
        model = BitlineModel(96)
        s1 = simulate_bitcount(model, 1, trials=100).margin_sigma
        s8 = simulate_bitcount(model, 8, trials=100).margin_sigma
        assert s1 > s8


class TestComparisons:
    def test_dynamic_logic_ratio(self):
        assert DynamicLogicMatrix(96, 96).area_ratio_vs_pim() == \
            pytest.approx(3.75)

    def test_static_logic_fails_past_64(self):
        assert StaticLogicMatrix(64, 64).meets_timing()
        assert not StaticLogicMatrix(128, 128).meets_timing()
        assert StaticLogicMatrix(96, 96).max_feasible_size() == 64

    def test_collapsible_power_near_paper(self):
        shift = CollapsibleQueueCost(96)
        assert 1.8 < shift.power_w() < 2.4          # paper: 2.1 W


class TestOverheadReport:
    def test_headline_ratios(self):
        report = overhead_report()
        assert 0.002 < report.area_overhead < 0.004       # paper 0.3%
        assert 0.004 < report.power_overhead < 0.008      # paper 0.6%
        assert report.dynamic_logic_area_ratio == pytest.approx(3.75)
        assert report.static_logic_max_size == 64
        assert 30 < report.collapsible_ratio_vs_age < 110  # paper ~70x
        assert 0.35 < report.merging_savings < 0.55        # paper ~40%
        assert "0.3% area" in report.format()
