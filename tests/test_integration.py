"""Cross-module integration invariants."""

import pytest

from repro import base_config, simulate
from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import O3Core
from repro.workloads import build_trace


def mixed_trace():
    b = ProgramBuilder("mixed")
    b.li("x1", 0).li("x2", 60).li("x3", 0x4000)
    b.data_block(0x100, [2.5, 3.5])
    b.fld("f1", "x0", 0x100)
    b.label("loop")
    b.ld("x4", "x3", 0)
    b.fadd("f2", "f2", "f1")
    b.mul("x5", "x4", "x4")
    b.sd("x5", "x3", 8)
    b.addi("x3", "x3", 16)
    b.addi("x1", "x1", 1)
    b.blt("x1", "x2", "loop")
    b.halt()
    return trace_program(b.build())


class TestSchedulerCommitCross:
    """Every (scheduler, commit) combination completes correctly."""

    @pytest.mark.parametrize("scheduler", ["rand", "age", "mult",
                                           "orinoco", "ideal"])
    @pytest.mark.parametrize("commit", ["ioc", "orinoco", "vb", "br",
                                        "spec"])
    def test_combination(self, scheduler, commit):
        trace = mixed_trace()
        stats = simulate(trace, base_config(scheduler=scheduler,
                                            commit=commit))
        assert stats.committed == len(trace)


class TestShiftEquivalence:
    """SHIFT (collapsible positional) selection == Orinoco bit count
    selection: the paper's point that the matrix preserves the ideal
    ordering a collapsible queue provides physically."""

    @pytest.mark.parametrize("kernel", ["gcc.mix", "leela.chains"])
    def test_same_cycle_count(self, kernel):
        trace = build_trace(kernel, scale=0.3, use_cache=False)
        shift = simulate(trace, base_config(scheduler="shift"))
        orinoco = simulate(trace, base_config(scheduler="orinoco"))
        assert shift.cycles == orinoco.cycles


class TestCleanFinalState:
    @pytest.mark.parametrize("commit", ["ioc", "orinoco", "vb", "spec",
                                        "rob", "ecl"])
    def test_no_leaks(self, commit):
        trace = mixed_trace()
        core = O3Core(trace, base_config(commit=commit))
        core.run()
        assert not core.window and not core.ops and not core.zombies
        assert core.iq_queue.occupancy() == 0
        assert core.rob_queue.occupancy() == 0
        assert core.lsq.lq_occupancy() == 0
        assert core.lsq.sq_occupancy() == 0
        assert not core.merged.valid.any()
        assert not core.iq_age.valid.any()
        # every physical register beyond the architectural mappings is free
        assert core.rename.int_freelist.occupancy() == 32
        assert core.rename.fp_freelist.occupancy() == 32

    def test_no_leaks_after_exception(self):
        b = ProgramBuilder("exc")
        b.li("x1", 0x1000)
        b.ld("x2", "x1", 0, fault=True)
        b.addi("x3", "x2", 1)
        b.halt()
        trace = trace_program(b.build())
        core = O3Core(trace, base_config(commit="orinoco"))
        core.run()
        assert not core.window and not core.ops
        assert core.rename.int_freelist.occupancy() == 32

    def test_no_leaks_after_violation(self):
        b = ProgramBuilder("viol")
        b.li("x1", 0x1000)
        b.li("x9", 4096 * 3).li("x8", 3)
        b.div("x2", "x9", "x8")
        b.sd("x8", "x2", 0)
        b.ld("x3", "x1", 0)
        b.halt()
        trace = trace_program(b.build())
        core = O3Core(trace, base_config())
        stats = core.run()
        assert stats.mem_order_violations >= 1
        assert not core.window and not core.ops
        assert core.rename.int_freelist.occupancy() == 32


class TestTSOPipeline:
    def test_tso_orinoco_completes_with_lockdowns(self):
        b = ProgramBuilder("tso")
        b.li("x1", 0x100000).li("x2", 0x1000)
        b.ld("x9", "x2", 0)            # warm the fast line
        for i in range(4):
            b.ld("x3", "x1", i * 8192)   # slow loads
            b.ld("x4", "x2", 0)          # fast younger loads
            b.add("x5", "x5", "x4")
        b.halt()
        trace = trace_program(b.build())
        core = O3Core(trace, base_config(commit="orinoco", tso=True))
        stats = core.run()
        assert stats.committed == len(trace)
        assert core.lsq.lockdowns_taken >= 1
        assert core.lsq.lockdown.active_lockdowns() == 0   # all released


class TestPackageAPI:
    def test_version(self):
        import repro
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        import repro
        for name in ("simulate", "base_config", "O3Core", "CoreConfig"):
            assert hasattr(repro, name)
