"""BitMatrix primitive operations (the PIM array model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitMatrix


class TestConstruction:
    def test_square_default(self):
        m = BitMatrix(8)
        assert m.rows == m.cols == 8
        assert not m.any_set()

    def test_rectangular(self):
        m = BitMatrix(4, 6)
        assert m.rows == 4 and m.cols == 6

    @pytest.mark.parametrize("rows,cols", [(0, 4), (4, 0), (-1, 2)])
    def test_bad_dims(self, rows, cols):
        with pytest.raises(ValueError):
            BitMatrix(rows, cols)


class TestRowColumnWrites:
    def test_set_row_all_ones(self):
        m = BitMatrix(4)
        m.set_row(1)
        assert m.row(1).all()
        assert not m.row(0).any()

    def test_set_row_mask(self):
        m = BitMatrix(4)
        mask = np.array([True, False, True, False])
        m.set_row(2, mask)
        assert (m.row(2) == mask).all()

    def test_clear_column(self):
        m = BitMatrix(4)
        for r in range(4):
            m.set_row(r)
        m.clear_column(2)
        assert not m.column(2).any()
        assert m.column(1).all()

    def test_clear_columns_multiple(self):
        m = BitMatrix(4)
        for r in range(4):
            m.set_row(r)
        m.clear_columns([0, 3])
        assert not m.column(0).any()
        assert not m.column(3).any()
        assert m.column(1).all()

    def test_set_bit_and_get_bit(self):
        m = BitMatrix(3)
        m.set_bit(1, 2)
        assert m.get_bit(1, 2)
        m.set_bit(1, 2, False)
        assert not m.get_bit(1, 2)


class TestPIMOps:
    def test_and_reduce_nor(self):
        m = BitMatrix(3)
        m.set_bit(0, 1)           # row 0 depends on col 1
        vec = np.array([False, True, False])
        result = m.and_reduce_nor(vec)
        assert list(result) == [False, True, True]

    def test_and_popcount(self):
        m = BitMatrix(3)
        m.set_row(0)              # all three
        m.set_bit(1, 0)
        vec = np.ones(3, dtype=bool)
        counts = m.and_popcount(vec)
        assert list(counts) == [3, 1, 0]

    def test_and_popcount_below_threshold(self):
        m = BitMatrix(4)
        for r in range(4):
            mask = np.zeros(4, dtype=bool)
            mask[:r] = True       # row r has r older entries
            m.set_row(r, mask)
        vec = np.ones(4, dtype=bool)
        grants = m.and_popcount_below(vec, 2)
        assert list(grants) == [True, True, False, False]

    def test_column_read(self):
        m = BitMatrix(3)
        m.set_bit(0, 2)
        m.set_bit(2, 2)
        assert list(m.column(2)) == [True, False, True]


class TestEquality:
    def test_copy_is_independent(self):
        m = BitMatrix(3)
        m.set_bit(0, 0)
        clone = m.copy()
        assert clone == m
        clone.set_bit(1, 1)
        assert clone != m

    def test_different_shapes_not_equal(self):
        assert BitMatrix(2) != BitMatrix(3)

    def test_density(self):
        m = BitMatrix(2)
        m.set_bit(0, 0)
        assert m.density() == pytest.approx(0.25)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=16), st.data())
def test_popcount_matches_manual_and(size, data):
    """Property: and_popcount equals a per-row manual popcount of row & vec."""
    m = BitMatrix(size)
    for r in range(size):
        bits = data.draw(st.lists(st.booleans(), min_size=size, max_size=size))
        m.set_row(r, np.array(bits))
    vec = np.array(data.draw(
        st.lists(st.booleans(), min_size=size, max_size=size)))
    counts = m.and_popcount(vec)
    for r in range(size):
        expected = int(np.count_nonzero(m.row(r) & vec))
        assert counts[r] == expected
        assert m.and_reduce_nor(vec)[r] == (expected == 0)
