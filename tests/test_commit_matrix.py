"""Commit dependency matrix — explicit vs merged (SPEC vector) designs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommitDependencyMatrix, MergedCommitMatrix


def mask(size, *indices):
    vec = np.zeros(size, dtype=bool)
    for idx in indices:
        vec[idx] = True
    return vec


class TestExplicitMatrix:
    def test_nonspeculative_world_commits_when_complete(self):
        cdm = CommitDependencyMatrix(4)
        cdm.dispatch(0, speculative=False)
        cdm.dispatch(1, speculative=False)
        grants = cdm.can_commit(mask(4, 0, 1))
        assert sorted(np.flatnonzero(grants)) == [0, 1]

    def test_younger_blocked_by_older_speculative(self):
        cdm = CommitDependencyMatrix(4)
        cdm.dispatch(0, speculative=True)     # e.g. a branch
        cdm.dispatch(1, speculative=False)
        grants = cdm.can_commit(mask(4, 1))   # 1 completed, 0 not
        assert not grants[1]
        # the speculative instruction itself has no older blockers
        grants = cdm.can_commit(mask(4, 0, 1))
        assert grants[0]

    def test_resolve_unblocks_younger(self):
        cdm = CommitDependencyMatrix(4)
        cdm.dispatch(0, speculative=True)
        cdm.dispatch(1, speculative=False)
        cdm.resolve(0)
        grants = cdm.can_commit(mask(4, 1))
        assert grants[1]

    def test_uncompleted_never_granted(self):
        cdm = CommitDependencyMatrix(4)
        cdm.dispatch(0, speculative=False)
        grants = cdm.can_commit(mask(4))      # nothing completed
        assert not grants.any()

    def test_remove_clears_entry(self):
        cdm = CommitDependencyMatrix(4)
        cdm.dispatch(0, speculative=True)
        cdm.remove(0)
        cdm.dispatch(1, speculative=False)
        assert cdm.can_commit(mask(4, 1))[1]

    def test_errors(self):
        cdm = CommitDependencyMatrix(4)
        with pytest.raises(ValueError):
            cdm.resolve(0)
        with pytest.raises(ValueError):
            cdm.remove(0)
        cdm.dispatch(0, speculative=False)
        with pytest.raises(ValueError):
            cdm.dispatch(0, speculative=False)


class TestMergedMatrix:
    def test_commit_past_noncompleted_older(self):
        """The key Orinoco behaviour: a younger completed instruction
        commits past an older *non-speculative but slow* instruction."""
        merged = MergedCommitMatrix(8)
        merged.dispatch(0, speculative=False)   # slow ALU op, not done
        merged.dispatch(1, speculative=False)   # done
        grants = merged.can_commit(mask(8, 1))
        assert grants[1]

    def test_blocked_by_older_speculative(self):
        merged = MergedCommitMatrix(8)
        merged.dispatch(0, speculative=True)
        merged.dispatch(1, speculative=False)
        assert not merged.can_commit(mask(8, 1))[1]
        merged.resolve(0)
        assert merged.can_commit(mask(8, 1))[1]

    def test_own_spec_bit_does_not_block_self(self):
        merged = MergedCommitMatrix(8)
        merged.dispatch(0, speculative=True)
        # A completed-but-still-flagged instruction: its own bit is not in
        # its row, so it can commit once *it* is completed & resolved.
        merged.resolve(0)
        assert merged.can_commit(mask(8, 0))[0]

    def test_select_commit_oldest_first(self):
        merged = MergedCommitMatrix(8)
        for entry in (3, 1, 6, 2):
            merged.dispatch(entry, speculative=False)
        grants = merged.select_commit(mask(8, 3, 1, 6, 2), width=2)
        assert sorted(np.flatnonzero(grants)) == [1, 3]

    def test_select_commit_empty(self):
        merged = MergedCommitMatrix(4)
        merged.dispatch(0, speculative=True)
        grants = merged.select_commit(mask(4), width=2)
        assert not grants.any()

    def test_oldest_blocker_location(self):
        merged = MergedCommitMatrix(8)
        merged.dispatch(5, speculative=True)
        merged.dispatch(2, speculative=False)
        assert merged.oldest_blocker() == 5

    def test_squash_set_is_younger_entries(self):
        merged = MergedCommitMatrix(8)
        for entry in (4, 0, 7):
            merged.dispatch(entry, speculative=False)
        squash = merged.squash_set(0)
        assert sorted(np.flatnonzero(squash)) == [7]

    def test_remove_frees_entry_for_reuse(self):
        merged = MergedCommitMatrix(4)
        merged.dispatch(0, speculative=True)
        merged.remove(0)
        merged.dispatch(0, speculative=False)
        assert merged.can_commit(mask(4, 0))[0]


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_merged_equals_explicit(data):
    """Property (§3.2): the merged age-matrix + SPEC design grants exactly
    the same commits as the explicit commit dependency matrix under any
    interleaving of dispatch / resolve / remove."""
    size = data.draw(st.integers(min_value=2, max_value=16))
    explicit = CommitDependencyMatrix(size)
    merged = MergedCommitMatrix(size)
    live = set()
    for _ in range(data.draw(st.integers(min_value=1, max_value=50))):
        action = data.draw(st.sampled_from(["dispatch", "resolve", "remove"]))
        if action == "dispatch":
            free = [e for e in range(size) if e not in live]
            if not free:
                continue
            entry = data.draw(st.sampled_from(free))
            spec = data.draw(st.booleans())
            explicit.dispatch(entry, spec)
            merged.dispatch(entry, spec)
            live.add(entry)
        elif action == "resolve" and live:
            entry = data.draw(st.sampled_from(sorted(live)))
            explicit.resolve(entry)
            merged.resolve(entry)
        elif action == "remove" and live:
            # Only remove instructions that could legally leave: committed
            # (safe) ones. For the equivalence we allow any removal — both
            # structures must agree regardless.
            entry = data.draw(st.sampled_from(sorted(live)))
            explicit.remove(entry)
            merged.remove(entry)
            live.discard(entry)

        completed_entries = data.draw(
            st.lists(st.sampled_from(range(size)), unique=True))
        completed = np.zeros(size, dtype=bool)
        completed[completed_entries] = True
        assert (explicit.can_commit(completed)
                == merged.can_commit(completed)).all()
