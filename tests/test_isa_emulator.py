"""Functional emulator semantics."""

import pytest

from repro.isa import (Emulator, EmulatorError, OpClass, Opcode,
                       ProgramBuilder, trace_program)


def run(build):
    builder = ProgramBuilder("t")
    build(builder)
    builder.halt()
    emulator = Emulator(builder.build())
    trace = emulator.run()
    return emulator, trace


class TestIntegerALU:
    def test_add_sub(self):
        emu, _ = run(lambda b: (b.li("x1", 7), b.li("x2", 5),
                                b.add("x3", "x1", "x2"),
                                b.sub("x4", "x1", "x2")))
        assert emu.regs[3] == 12
        assert emu.regs[4] == 2

    def test_logic_ops(self):
        emu, _ = run(lambda b: (b.li("x1", 0b1100), b.li("x2", 0b1010),
                                b.and_("x3", "x1", "x2"),
                                b.or_("x4", "x1", "x2"),
                                b.xor("x5", "x1", "x2")))
        assert emu.regs[3] == 0b1000
        assert emu.regs[4] == 0b1110
        assert emu.regs[5] == 0b0110

    def test_shifts(self):
        emu, _ = run(lambda b: (b.li("x1", 3), b.slli("x2", "x1", 4),
                                b.srli("x3", "x2", 2)))
        assert emu.regs[2] == 48
        assert emu.regs[3] == 12

    def test_slt(self):
        emu, _ = run(lambda b: (b.li("x1", -1), b.li("x2", 1),
                                b.slt("x3", "x1", "x2"),
                                b.slt("x4", "x2", "x1")))
        assert emu.regs[3] == 1
        assert emu.regs[4] == 0

    def test_x0_is_hardwired_zero(self):
        emu, _ = run(lambda b: (b.li("x0", 42), b.addi("x1", "x0", 1)))
        assert emu.regs[0] == 0
        assert emu.regs[1] == 1

    def test_overflow_wraps_to_64_bits(self):
        emu, _ = run(lambda b: (b.li("x1", (1 << 62)), b.add("x2", "x1", "x1"),
                                b.add("x3", "x2", "x2")))
        assert emu.regs[3] == 0


class TestMulDiv:
    def test_mul(self):
        emu, _ = run(lambda b: (b.li("x1", 6), b.li("x2", 7),
                                b.mul("x3", "x1", "x2")))
        assert emu.regs[3] == 42

    def test_div_truncates_toward_zero(self):
        emu, _ = run(lambda b: (b.li("x1", -7), b.li("x2", 2),
                                b.div("x3", "x1", "x2"),
                                b.rem("x4", "x1", "x2")))
        assert emu.regs[3] == -3
        assert emu.regs[4] == -1

    def test_div_by_zero_is_riscv_defined(self):
        emu, _ = run(lambda b: (b.li("x1", 9), b.li("x2", 0),
                                b.div("x3", "x1", "x2"),
                                b.rem("x4", "x1", "x2")))
        assert emu.regs[3] == -1
        assert emu.regs[4] == 9


class TestFloatingPoint:
    def test_arith(self):
        emu, _ = run(lambda b: (b.data_word(0, 1.5), b.data_word(8, 2.0),
                                b.fld("f1", "x0", 0), b.fld("f2", "x0", 8),
                                b.fadd("f3", "f1", "f2"),
                                b.fmul("f4", "f1", "f2"),
                                b.fdiv("f5", "f1", "f2")))
        from repro.isa import fp_reg
        assert emu.regs[fp_reg(3)] == pytest.approx(3.5)
        assert emu.regs[fp_reg(4)] == pytest.approx(3.0)
        assert emu.regs[fp_reg(5)] == pytest.approx(0.75)

    def test_fdiv_by_zero_accrues_not_traps(self):
        emu, trace = run(lambda b: (b.fdiv("f1", "f2", "f3"),
                                    b.li("x1", 1)))
        # Execution continued past the divide.
        assert emu.regs[1] == 1


class TestMemory:
    def test_store_load_round_trip(self):
        emu, _ = run(lambda b: (b.li("x1", 0x100), b.li("x2", 99),
                                b.sd("x2", "x1", 8), b.ld("x3", "x1", 8)))
        assert emu.regs[3] == 99
        assert emu.memory[0x108] == 99

    def test_addresses_align_down_to_words(self):
        emu, trace = run(lambda b: (b.li("x1", 0x103), b.ld("x2", "x1", 0)))
        loads = [i for i in trace if i.is_load]
        assert loads[0].addr == 0x100

    def test_negative_address_is_error(self):
        builder = ProgramBuilder("bad")
        builder.li("x1", -64)
        builder.ld("x2", "x1", 0)
        builder.halt()
        with pytest.raises(EmulatorError):
            Emulator(builder.build()).run()

    def test_initial_data_visible(self):
        emu, _ = run(lambda b: (b.data_block(0x40, [10, 20, 30]),
                                b.li("x1", 0x40), b.ld("x2", "x1", 16)))
        assert emu.regs[2] == 30


class TestControlFlow:
    def test_loop_trip_count(self):
        def body(b):
            b.li("x1", 0)
            b.li("x2", 4)
            b.label("loop")
            b.addi("x1", "x1", 1)
            b.blt("x1", "x2", "loop")
        emu, trace = run(body)
        assert emu.regs[1] == 4
        branches = [i for i in trace if i.is_cond_branch]
        assert len(branches) == 4
        assert [i.taken for i in branches] == [True, True, True, False]

    def test_branch_next_pc(self):
        def body(b):
            b.li("x1", 1)
            b.beq("x1", "x0", "skip")  # not taken
            b.li("x2", 5)
            b.label("skip")
        _, trace = run(body)
        branch = next(i for i in trace if i.is_cond_branch)
        assert not branch.taken
        assert branch.next_pc == branch.pc + 1

    def test_jal_links_and_jalr_returns(self):
        def body(b):
            b.jal("x1", "func")
            b.li("x2", 1)      # executed after return
            b.halt()
            b.label("func")
            b.li("x3", 7)
            b.jalr("x0", "x1")
        emu, _ = run(body)
        assert emu.regs[2] == 1
        assert emu.regs[3] == 7

    def test_infinite_loop_hits_budget(self):
        builder = ProgramBuilder("inf")
        builder.label("spin")
        builder.j("spin")
        program = builder.build()
        with pytest.raises(EmulatorError):
            Emulator(program, max_instrs=100).run()


class TestTrace:
    def test_seq_is_dense_program_order(self):
        _, trace = run(lambda b: (b.li("x1", 1), b.li("x2", 2),
                                  b.add("x3", "x1", "x2")))
        assert [i.seq for i in trace] == list(range(len(trace)))

    def test_dst_none_for_stores_and_x0(self):
        _, trace = run(lambda b: (b.li("x0", 3), b.li("x1", 5),
                                  b.sd("x1", "x0", 0)))
        li_x0 = trace[0]
        store = next(i for i in trace if i.is_store)
        assert li_x0.dst is None
        assert store.dst is None

    def test_class_mix_sums_to_one(self):
        _, trace = run(lambda b: (b.li("x1", 1), b.ld("x2", "x1", 0),
                                  b.sd("x2", "x1", 8)))
        assert sum(trace.class_mix().values()) == pytest.approx(1.0)

    def test_trace_program_convenience(self):
        builder = ProgramBuilder("t")
        builder.li("x1", 1)
        builder.halt()
        trace = trace_program(builder.build())
        assert len(trace) == 2
        assert trace[1].opcode is Opcode.HALT
