"""Lockdown matrix / LDT for TSO load-load ordering."""

import numpy as np
import pytest

from repro.core import LockdownMatrix


def mask(size, *indices):
    vec = np.zeros(size, dtype=bool)
    for idx in indices:
        vec[idx] = True
    return vec


class TestLockdownLifecycle:
    def test_lockdown_holds_until_older_loads_perform(self):
        ldm = LockdownMatrix(ldt_size=4, lq_size=8)
        ldm.lockdown(address=0x100, load_seq=10,
                     older_nonperformed=mask(8, 2, 5))
        assert ldm.is_locked(0x100)
        assert ldm.load_performed(2) == []
        assert ldm.is_locked(0x100)
        released = ldm.load_performed(5)
        assert released == [0x100]
        assert not ldm.is_locked(0x100)

    def test_multiple_lockdowns_same_address(self):
        ldm = LockdownMatrix(4, 8)
        ldm.lockdown(0x40, 1, mask(8, 0))
        ldm.lockdown(0x40, 2, mask(8, 1))
        assert ldm.load_performed(0) == []      # one lock remains
        assert ldm.is_locked(0x40)
        assert ldm.load_performed(1) == [0x40]
        assert not ldm.is_locked(0x40)

    def test_entries_recycled_after_release(self):
        ldm = LockdownMatrix(ldt_size=1, lq_size=4)
        ldm.lockdown(0x10, 1, mask(4, 0))
        assert not ldm.has_free_entry()
        ldm.load_performed(0)
        assert ldm.has_free_entry()
        ldm.lockdown(0x20, 2, mask(4, 1))
        assert ldm.is_locked(0x20)

    def test_full_table_raises(self):
        ldm = LockdownMatrix(ldt_size=1, lq_size=4)
        ldm.lockdown(0x10, 1, mask(4, 0))
        with pytest.raises(RuntimeError):
            ldm.lockdown(0x20, 2, mask(4, 1))

    def test_empty_mask_rejected(self):
        ldm = LockdownMatrix(2, 4)
        with pytest.raises(ValueError):
            ldm.lockdown(0x10, 1, mask(4))

    def test_unrelated_address_never_locked(self):
        ldm = LockdownMatrix(2, 4)
        ldm.lockdown(0x10, 1, mask(4, 0))
        assert not ldm.is_locked(0x18)

    def test_active_lockdown_count(self):
        ldm = LockdownMatrix(4, 4)
        ldm.lockdown(0x10, 1, mask(4, 0))
        ldm.lockdown(0x20, 2, mask(4, 0, 1))
        assert ldm.active_lockdowns() == 2
        ldm.load_performed(0)   # releases first, second still waits on 1
        assert ldm.active_lockdowns() == 1
