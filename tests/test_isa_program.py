"""Program container validation and rendering."""

import pytest

from repro.isa import (Instruction, Opcode, Program, ProgramBuilder,
                       int_reg)


class TestValidate:
    def test_branch_without_target(self):
        program = Program(code=[Instruction(Opcode.BEQ, rs1=1, rs2=2)])
        with pytest.raises(ValueError, match="without target"):
            program.validate()

    def test_target_out_of_range(self):
        program = Program(code=[Instruction(Opcode.JAL, rd=1, target=99)])
        with pytest.raises(ValueError, match="outside program"):
            program.validate()

    def test_jalr_needs_no_static_target(self):
        program = Program(code=[Instruction(Opcode.JALR, rd=0, rs1=1)])
        program.validate()

    def test_unaligned_data(self):
        program = Program(code=[], data={0x101: 5})
        with pytest.raises(ValueError, match="unaligned"):
            program.validate()

    def test_negative_data_address(self):
        program = Program(code=[], data={-8: 5})
        with pytest.raises(ValueError, match="negative"):
            program.validate()


class TestRendering:
    def test_instruction_str_forms(self):
        assert str(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)) == \
            "add x3, x1, x2"
        assert str(Instruction(Opcode.LD, rd=3, rs1=1, imm=8)) == \
            "ld x3, 8(x1)"
        assert str(Instruction(Opcode.SD, rs1=1, rs2=4, imm=16)) == \
            "sd x4, 16(x1)"
        assert str(Instruction(Opcode.ADDI, rd=2, rs1=2, imm=-1)) == \
            "addi x2, x2, -1"
        assert str(Instruction(Opcode.BEQ, rs1=1, rs2=0, target=7)) == \
            "beq x1, x0, @7"
        assert str(Instruction(Opcode.NOP)) == "nop"

    def test_listing_round(self):
        b = ProgramBuilder("l")
        b.label("top")
        b.addi("x1", "x1", 1)
        b.j("top")
        listing = b.build().listing()
        assert listing.splitlines()[0] == "top:"


class TestBuilderErrors:
    def test_duplicate_label(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")

    def test_undefined_label_at_build(self):
        b = ProgramBuilder()
        b.beq("x1", "x2", "nowhere")
        with pytest.raises(ValueError, match="undefined"):
            b.build()

    def test_data_block_layout(self):
        b = ProgramBuilder()
        b.data_block(0x100, [1, 2, 3])
        b.halt()
        program = b.build()
        assert program.data == {0x100: 1, 0x108: 2, 0x110: 3}
