"""Quiescent-cycle fast-forward: bit-exactness and gating.

The fast-forward path (:mod:`repro.pipeline.fastforward`) replays one
measured quiescent cycle and multiplies its statistics delta instead of
stepping the engine cycle by cycle.  These tests pin the contract: a
fast-forwarded run must be *field-identical* to the exact stepped run —
same SimStats, same frontend stall counter, same final cycle — across
scheduler and commit policies, while actually skipping work on
memory-bound traces.
"""

import dataclasses

import pytest

from repro.pipeline import O3Core, base_config
from repro.pipeline.events import CycleEvent, EventType
from repro.pipeline.fastforward import enabled_by_env
from repro.workloads import build_trace


def _run(trace, config, fast_forward):
    core = O3Core(trace, config)
    core.fast_forward_enabled = fast_forward
    stats = core.run()
    return core, stats


def _assert_identical(trace, config):
    core_ff, stats_ff = _run(trace, config, fast_forward=True)
    core_ex, stats_ex = _run(trace, config, fast_forward=False)
    ff = dataclasses.asdict(stats_ff)
    ex = dataclasses.asdict(stats_ex)
    diff = {k: (ff[k], ex[k]) for k in ex if ff[k] != ex[k]}
    assert not diff, f"fast-forward diverged: {diff}"
    assert core_ff.state.fetch.stall_cycles == core_ex.state.fetch.stall_cycles
    assert core_ff.state.cycle == core_ex.state.cycle
    return core_ff, core_ex


COMBOS = [
    ("mcf.chase", "age", "ioc"),
    ("mcf.chase", "orinoco", "orinoco"),
    ("mcf.chase", "mult", "vb"),
    ("lbm.stream", "orinoco", "ioc"),
    ("lbm.stream", "rand", "spec_norob"),
    ("cactu.stencil", "cri", "rob"),
    ("perl.branchy", "age", "ioc"),
]


@pytest.mark.parametrize("workload,scheduler,commit", COMBOS)
def test_fast_forward_is_bit_exact(workload, scheduler, commit):
    trace = build_trace(workload, scale=0.15)
    config = base_config(scheduler=scheduler, commit=commit)
    _assert_identical(trace, config)


def test_fast_forward_actually_skips_cycles():
    """On a pointer-chasing trace most cycles are quiescent: the
    fast-forwarded run must take far fewer engine steps than cycles."""
    trace = build_trace("mcf.chase", scale=0.15)
    config = base_config(scheduler="age", commit="ioc")
    core = O3Core(trace, config)
    core.fast_forward_enabled = True
    steps = 0
    original_step = core.step

    def counting_step():
        nonlocal steps
        steps += 1
        original_step()

    core.step = counting_step
    stats = core.run()
    assert steps < stats.cycles // 2, (
        f"expected >2x skip on mcf.chase, stepped {steps} of "
        f"{stats.cycles} cycles")


def test_instrumented_run_disables_fast_forward():
    """A per-cycle subscriber must see every cycle: live instrumentation
    makes no cycle quiescent, so no cycle may be skipped."""
    trace = build_trace("mcf.chase", scale=0.1)
    config = base_config(scheduler="age", commit="ioc")
    core = O3Core(trace, config)
    seen = []
    core.bus.subscribe(EventType.CYCLE, seen.append)
    stats = core.run()
    assert len(seen) == stats.cycles
    assert all(isinstance(event, CycleEvent) for event in seen)
    cycles = [event.cycle for event in seen]
    assert cycles == list(range(stats.cycles))


def test_env_kill_switch(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FASTFORWARD", raising=False)
    assert enabled_by_env()
    monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
    assert not enabled_by_env()
    trace = build_trace("mcf.chase", scale=0.05)
    core = O3Core(trace, base_config())
    assert not core.fast_forward_enabled
