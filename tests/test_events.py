"""Instrumentation event bus: ordering, fast path, taxonomy completeness.

Three contracts:

* subscribers run in subscription order, and ``EventBus.attach`` wires
  every ``on_<type>`` method of an observer object;
* a core with no subscribers publishes nothing at all (the hot loop's
  zero-cost contract);
* the event taxonomy is complete — :class:`StatsSubscriber`, fed only
  events, reproduces the core's own ``SimStats`` field by field.
"""

import dataclasses

import pytest

from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import (EventBus, EventRecorder, EventType, O3Core,
                            StatsSubscriber, base_config)
from repro.pipeline.events import CommitEvent, DispatchStall, FetchEvent
from repro.workloads import build_trace


def small_trace(name="gcc.mix", scale=0.1):
    return build_trace(name, scale)


class TestEventBus:
    def test_subscribers_run_in_subscription_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(EventType.FETCH, lambda ev: calls.append("first"))
        bus.subscribe(EventType.FETCH, lambda ev: calls.append("second"))
        bus.subscribe(EventType.FETCH, lambda ev: calls.append("third"))
        bus.publish(FetchEvent(0, 0, 0, False, False))
        assert calls == ["first", "second", "third"]

    def test_live_flags_track_subscriptions(self):
        bus = EventBus()
        assert not any(bus.live)
        bus.subscribe(EventType.COMMIT, lambda ev: None)
        assert bus.live[EventType.COMMIT]
        assert bus.wants(EventType.COMMIT)
        assert not bus.live[EventType.FETCH]

    def test_attach_binds_on_methods(self):
        bus = EventBus()
        seen = []

        class Observer:
            def on_commit(self, ev):
                seen.append(ev)

        bus.attach(Observer())
        assert bus.live[EventType.COMMIT]
        assert not bus.live[EventType.FETCH]
        event = CommitEvent(3, None, False, False)
        bus.publish(event)
        assert seen == [event]

    def test_published_counts_every_event(self):
        bus = EventBus()
        bus.subscribe(EventType.FETCH, lambda ev: None)
        for _ in range(5):
            bus.publish(FetchEvent(0, 0, 0, False, False))
        assert bus.published == 5


class TestZeroSubscriberFastPath:
    def test_unwatched_core_publishes_nothing(self):
        core = O3Core(small_trace(), base_config(scheduler="orinoco",
                                                 commit="orinoco"))
        core.run()
        assert core.bus.published == 0

    def test_attaching_does_not_change_results(self):
        trace = small_trace()
        config = base_config(scheduler="orinoco", commit="orinoco")
        plain = O3Core(trace, config).run()
        watched_core = O3Core(trace, config)
        watched_core.bus.attach(EventRecorder(limit=50))
        watched = watched_core.run()
        assert dataclasses.asdict(plain) == dataclasses.asdict(watched)
        assert watched_core.bus.published > 0


class TestStatsSubscriber:
    """The event taxonomy must be complete: a stats replica built only
    from events matches the core's inline counters field by field."""

    KERNELS = ["gcc.mix", "perl.branchy"]

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("commit,scheduler", [
        ("ioc", "age"), ("orinoco", "orinoco")])
    def test_replica_matches_core_stats(self, kernel, commit, scheduler):
        trace = small_trace(kernel, scale=0.1)
        core = O3Core(trace, base_config(scheduler=scheduler,
                                         commit=commit))
        replica = core.bus.attach(StatsSubscriber())
        stats = core.run()
        got = dataclasses.asdict(replica.stats)
        want = dataclasses.asdict(stats)
        assert got == want, {
            k: (want[k], got[k]) for k in want if got[k] != want[k]}

    def test_replica_matches_with_zombie_commits(self):
        # VB retires incomplete instructions (zombies + early loads)
        trace = small_trace("gcc.mix", scale=0.1)
        core = O3Core(trace, base_config(commit="vb"))
        replica = core.bus.attach(StatsSubscriber())
        stats = core.run()
        assert dataclasses.asdict(replica.stats) == \
            dataclasses.asdict(stats)


class TestEventRecorder:
    def test_dump_format_and_truncation(self):
        core = O3Core(small_trace(), base_config())
        recorder = core.bus.attach(EventRecorder(limit=10))
        core.run()
        text = recorder.format()
        assert "event dump" in text and "FETCH" in text
        assert len(recorder.lines) == 10 and recorder.truncated
        # CYCLE events are counted but never printed
        assert recorder.counts["CYCLE"] == core.stats.cycles
        assert not any("CYCLE" in line for line in recorder.lines)


class TestDispatchStallSingleAttribution:
    """A blocked dispatch cycle charges exactly one resource — the
    first exhausted one in rob/iq/lq/sq/reg priority order — even when
    several are exhausted at once."""

    def _congested_core(self):
        # long div chain backs everything up: with a tiny ROB and IQ
        # both fill, plus LQ pressure from the loads
        b = ProgramBuilder("congest")
        b.li("x1", 100).li("x2", 7)
        prev = "x1"
        for i in range(6):
            reg = f"x{10 + i}"
            b.div(reg, prev, "x2")
            prev = reg
        for i in range(24):
            b.ld(f"x{8 + i % 4}", "x3", 8 * i)
            b.addi("x4", prev, i)
        b.halt()
        config = base_config(rob_size=8, iq_size=8, lq_size=4)
        return O3Core(trace_program(b.build()), config)

    def test_one_stall_event_per_blocked_cycle(self):
        core = self._congested_core()
        stalls_by_cycle = {}
        core.bus.subscribe(
            EventType.STALL,
            lambda ev: stalls_by_cycle.setdefault(ev.cycle, []).append(ev))
        stats = core.run()
        dispatch_stalls = {
            cycle: [e for e in evs if isinstance(e, DispatchStall)]
            for cycle, evs in stalls_by_cycle.items()}
        assert any(dispatch_stalls.values())
        for cycle, evs in dispatch_stalls.items():
            assert len(evs) <= 1, \
                f"cycle {cycle} charged {len(evs)} blockers: {evs}"
        # the counters add up to exactly the number of blocked cycles
        total = (stats.stall_rob + stats.stall_iq + stats.stall_lq
                 + stats.stall_sq + stats.stall_reg)
        assert total == sum(
            1 for evs in dispatch_stalls.values() if evs)

    def test_multiple_exhausted_resources_charge_highest_priority(self):
        core = self._congested_core()
        charged = []
        core.bus.subscribe(
            EventType.STALL,
            lambda ev: charged.append(ev) if isinstance(ev, DispatchStall)
            else None)
        core.run()
        # the priority rule: whenever the ROB was full, the charge
        # names the ROB regardless of what else was exhausted
        assert any(ev.resource == "rob" for ev in charged)
        for ev in charged:
            assert ev.resource in ("rob", "iq", "lq", "sq", "reg")
