"""Steady-state allocation guard and REPRO_CHECK self-verification.

The PR 4 hot-path work preallocates every per-cycle buffer (matrix
scratch, select masks, group accumulators) so the cycle loop constructs
no new NumPy arrays in steady state.  This guard pins that property:
after a warm-up, a window of fully stepped cycles must execute without
a single call to a NumPy array *constructor* (``np.zeros`` /
``np.empty`` / ``np.ones`` / ``np.full`` / ``np.arange``).

The shim counts Python-level constructor calls, which is exactly the
contract the scratch-buffer convention establishes.  (C-level
temporaries inside ufuncs are invisible to any Python shim and are not
what the convention governs.)

Set ``REPRO_NO_PERF_GUARD=1`` to skip the guard, e.g. when bisecting
an unrelated failure on a machine where the engine is being hacked on.

The second half exercises ``REPRO_CHECK=1``: with checking latched on,
the incremental ready/commit-eligible caches recompute every answer
from the full matrix reduction and must agree over whole runs.
"""

import os
import unittest.mock

import numpy as np
import pytest

from repro.core import check
from repro.pipeline import O3Core, base_config
from repro.pipeline.lanes import LaneBatch, LaneCell, _Lane
from repro.workloads import build_trace

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_NO_PERF_GUARD") == "1",
    reason="REPRO_NO_PERF_GUARD=1")

CONSTRUCTORS = ("zeros", "empty", "ones", "full", "arange")
WARMUP_STEPS = 400
GUARDED_STEPS = 200


def _counting_shim(counts):
    patchers = []
    for name in CONSTRUCTORS:
        original = getattr(np, name)

        def counted(*args, _name=name, _original=original, **kwargs):
            counts[_name] = counts.get(_name, 0) + 1
            return _original(*args, **kwargs)

        patchers.append(unittest.mock.patch.object(np, name, counted))
    return patchers


@pytest.mark.parametrize("scheduler,commit", [
    ("age", "ioc"),
    ("orinoco", "orinoco"),
])
def test_steady_state_cycles_allocate_nothing(scheduler, commit):
    trace = build_trace("mcf.chase", scale=0.5)
    config = base_config(scheduler=scheduler, commit=commit)
    core = O3Core(trace, config)
    # fully stepped cycles (no fast-forward): the guard covers the
    # exact per-cycle engine work
    for _ in range(WARMUP_STEPS):
        if core.done():
            break
        core.step()
    assert not core.done(), "trace too small to reach steady state"

    counts = {}
    patchers = _counting_shim(counts)
    for patcher in patchers:
        patcher.start()
    try:
        for _ in range(GUARDED_STEPS):
            if core.done():
                break
            core.step()
    finally:
        for patcher in patchers:
            patcher.stop()
    assert not counts, (
        f"steady-state cycles constructed NumPy arrays: {counts} "
        f"over {GUARDED_STEPS} cycles — a scratch buffer regressed")


def test_vectorized_lane_loop_allocates_nothing():
    """The cross-lane fused kernels preallocate all their scratch
    (select stamps, broadcast pairs, landing rows) in the engine
    constructor, growing only on first contact with a bigger batch.
    After warm-up, a window of full-batch engine steps must run
    without a single Python-level NumPy constructor call."""
    trace = build_trace("mcf.chase", scale=0.5)
    config = base_config(scheduler="age", commit="ioc")
    batch = LaneBatch(4, config.iq_size, config.rob_size)
    lanes = []
    for slot_id in range(4):
        core = O3Core(trace, config, slot=batch.stack.slot(slot_id))
        lanes.append(_Lane(slot_id, LaneCell(slot_id, trace, config),
                           core, None, 0.0))
        assert lanes[-1].vec_ok
    engine = batch.engine
    for _ in range(WARMUP_STEPS):
        assert not engine.step(lanes)
    assert not any(lane.core.done() for lane in lanes), \
        "trace too small to reach steady state"

    counts = {}
    patchers = _counting_shim(counts)
    for patcher in patchers:
        patcher.start()
    try:
        for _ in range(GUARDED_STEPS):
            assert not engine.step(lanes)
    finally:
        for patcher in patchers:
            patcher.stop()
    assert not counts, (
        f"vectorized lane steps constructed NumPy arrays: {counts} "
        f"over {GUARDED_STEPS} steps — an engine scratch buffer "
        f"regressed")


class TestReproCheck:
    """REPRO_CHECK=1 cross-checks the incremental caches end to end."""

    def teardown_method(self):
        check.reset()

    def test_latched_from_environment(self, monkeypatch):
        check.reset()
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert check.check_enabled()
        check.reset()
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert not check.check_enabled()

    @pytest.mark.parametrize("scheduler,commit", [
        ("age", "ioc"),
        ("orinoco", "orinoco"),
        ("mult", "rob"),
    ])
    def test_checked_run_matches_unchecked(self, scheduler, commit):
        """A checked run must complete without CheckError and produce
        the same statistics as the unchecked engine."""
        import dataclasses
        trace = build_trace("xalanc.hash", scale=0.3)
        config = base_config(scheduler=scheduler, commit=commit)
        check.set_enabled(False)
        baseline = O3Core(trace, config).run()
        check.set_enabled(True)
        try:
            checked = O3Core(trace, config).run()
        finally:
            check.reset()
        assert dataclasses.asdict(checked) == dataclasses.asdict(baseline)

    def test_check_error_raised_on_seeded_divergence(self):
        """Corrupting a cached pending counter must trip the cross-check
        (proves the checked path actually compares)."""
        from repro.core.check import CheckError
        trace = build_trace("gcc.mix", scale=0.2)
        config = base_config(scheduler="age", commit="ioc")
        check.set_enabled(True)
        try:
            core = O3Core(trace, config)
            wakeup = core.state.wakeup
            for _ in range(500):
                if wakeup.valid.any():
                    break
                core.step()
            entry = int(np.flatnonzero(wakeup.valid)[0])
            wakeup._pending[entry] += 1                  # corrupt cache
            wakeup._dirty = True
            with pytest.raises(CheckError):
                wakeup.ready()
        finally:
            check.reset()
