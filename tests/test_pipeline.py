"""Pipeline integration: configs, determinism, exceptions, squashes."""

import pytest

from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import (CoreConfig, DeadlockError, O3Core, base_config,
                            make_config, pro_config, simulate, ultra_config)


def simple_trace(n=50):
    b = ProgramBuilder("simple")
    b.li("x1", 0).li("x2", n)
    b.label("loop")
    b.ld("x3", "x4", 0)
    b.add("x5", "x5", "x3")
    b.sd("x5", "x4", 8)
    b.addi("x1", "x1", 1)
    b.blt("x1", "x2", "loop")
    b.halt()
    return trace_program(b.build())


class TestConfigs:
    def test_table1_presets(self):
        base, pro, ultra = base_config(), pro_config(), ultra_config()
        assert (base.issue_width, base.rob_size, base.iq_size) == (4, 224, 97)
        assert (pro.issue_width, pro.rob_size, pro.iq_size) == (6, 256, 160)
        assert (ultra.issue_width, ultra.rob_size) == (8, 512)
        assert base.fu_total == 8 and pro.fu_total == 8
        assert ultra.fu_total == 11
        assert ultra.lq_size == 128 and ultra.sq_size == 72
        assert (base.rf_size, pro.rf_size, ultra.rf_size) == (180, 280, 380)

    def test_rename_scheme_follows_commit(self):
        assert base_config(commit="ioc").rename_scheme == "inorder"
        assert base_config(commit="orinoco").rename_scheme == "counter"
        assert base_config(commit="vb").rename_scheme == "counter"

    def test_ooo_rob_release(self):
        assert base_config(commit="orinoco").ooo_rob_release
        assert not base_config(commit="ioc").ooo_rob_release
        assert not base_config(commit="vb").ooo_rob_release

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            base_config(scheduler="lifo")
        with pytest.raises(ValueError):
            base_config(commit="yolo")
        with pytest.raises(ValueError):
            make_config("mega")

    def test_cri_scheduler_implies_criticality(self):
        assert base_config(scheduler="cri").criticality

    def test_with_policies_clones(self):
        config = base_config()
        clone = config.with_policies(scheduler="orinoco", commit="vb")
        assert clone.scheduler == "orinoco" and clone.commit == "vb"
        assert config.scheduler == "age"            # original untouched


class TestExecution:
    def test_all_instructions_commit(self):
        trace = simple_trace()
        stats = simulate(trace, base_config())
        assert stats.committed == len(trace)
        assert stats.dispatched >= len(trace)
        assert stats.cycles > 0

    def test_deterministic(self):
        trace = simple_trace()
        a = simulate(trace, base_config())
        b = simulate(trace, base_config())
        assert a.cycles == b.cycles
        assert a.ipc == b.ipc

    def test_seed_changes_random_policy_only(self):
        trace = simple_trace()
        r1 = simulate(trace, base_config(scheduler="rand", seed=1))
        r2 = simulate(trace, base_config(scheduler="rand", seed=2))
        # different seeds may change the schedule; both must complete
        assert r1.committed == r2.committed == len(trace)

    def test_ipc_bounded_by_width(self):
        trace = simple_trace()
        stats = simulate(trace, base_config())
        assert stats.ipc <= base_config().issue_width

    def test_occupancies_bounded(self):
        trace = simple_trace()
        from repro.pipeline import O3Core
        core = O3Core(trace, base_config())
        stats = core.run()
        assert stats.occupancy("rob") <= base_config().rob_size
        assert stats.occupancy("iq") <= base_config().iq_size

    def test_max_cycles_guard(self):
        trace = simple_trace(200)
        with pytest.raises(DeadlockError):
            simulate(trace, base_config(), max_cycles=10)


class TestPreciseExceptions:
    def _fault_trace(self):
        b = ProgramBuilder("fault")
        b.li("x1", 0x1000)
        for i in range(6):
            b.addi(f"x{10 + i}", "x1", i)
        b.ld("x2", "x1", 0, fault=True)      # page fault
        b.addi("x3", "x2", 1)
        b.addi("x4", "x3", 1)
        b.halt()
        return trace_program(b.build())

    @pytest.mark.parametrize("commit", ["ioc", "orinoco", "vb", "vb_noecl",
                                        "br", "br_noecl", "spec",
                                        "spec_norob", "ecl", "rob"])
    def test_exception_is_precise(self, commit):
        trace = self._fault_trace()
        stats = simulate(trace, base_config(commit=commit))
        assert stats.exceptions == 1
        # every instruction except the faulting one retires (the full
        # Cherry oracle absorbs the fault into its checkpoint and
        # retires the faulting instruction too)
        expected = len(trace) if commit == "spec" else len(trace) - 1
        assert stats.committed == expected

    def test_early_released_victims_squash_cleanly(self):
        """spec_norob recycles registers at completion; a younger
        completed instruction squashed by an older instruction's
        exception must not try to unwind its (irreversible) rename."""
        b = ProgramBuilder("early-release-squash")
        b.li("x5", 1)
        b.li("x1", 0x1000)
        b.ld("x2", "x1", 0, fault=True)      # faults once oldest
        # independent overwriters: they complete (and early-release
        # their prev mappings) before the flush squashes them
        for _ in range(4):
            b.addi("x5", "x5", 1)
        b.halt()
        trace = trace_program(b.build())
        stats = simulate(trace, base_config(commit="spec_norob"))
        assert stats.exceptions == 1
        assert stats.committed == len(trace) - 1

    def test_exception_in_orinoco_waits_for_older(self):
        """The faulting instruction must be the oldest in the ROB when
        the flush triggers, i.e. all older instructions committed."""
        trace = self._fault_trace()
        core = O3Core(trace, base_config(commit="orinoco"))
        flushes = []
        original = core._exception_flush
        def spy(op, cycle):
            flushes.append((op.seq, min(core.window)))
            return original(op, cycle)
        core._exception_flush = spy
        core.run()
        assert len(flushes) == 1
        seq, oldest = flushes[0]
        assert seq == oldest        # nothing older left in the window


class TestMemOrderViolations:
    def _violation_trace(self):
        """A load that must speculate past an unresolved store to the
        same address (the store's address arrives late)."""
        b = ProgramBuilder("viol")
        b.li("x1", 0x1000)
        b.li("x9", 4096 * 3).li("x8", 3)
        b.div("x2", "x9", "x8")        # slow: store address = 0x1000
        b.sd("x8", "x2", 0)            # store to 0x1000, address late
        b.ld("x3", "x1", 0)            # same address, issues earlier
        b.add("x4", "x3", "x3")
        b.halt()
        return trace_program(b.build())

    def test_violation_detected_and_recovered(self):
        trace = self._violation_trace()
        stats = simulate(trace, base_config())
        assert stats.mem_order_violations >= 1
        assert stats.committed == len(trace)

    def test_dependence_predictor_learns(self):
        """The violating PC enters the predictor; a second encounter in
        the same run must not violate again."""
        b = ProgramBuilder("viol2")
        b.li("x1", 0x1000)
        b.li("x9", 4096 * 3).li("x8", 3)
        b.li("x5", 0).li("x6", 2)
        b.label("loop")
        b.div("x2", "x9", "x8")
        b.sd("x8", "x2", 0)
        b.ld("x3", "x1", 0)
        b.add("x4", "x3", "x3")
        b.addi("x5", "x5", 1)
        b.blt("x5", "x6", "loop")
        b.halt()
        trace = trace_program(b.build())
        stats = simulate(trace, base_config())
        assert stats.mem_order_violations == 1
        assert stats.committed == len(trace)

    def test_conservative_mode_never_violates(self):
        trace = self._violation_trace()
        stats = simulate(trace, base_config(mem_dep_policy="conservative"))
        assert stats.mem_order_violations == 0
        assert stats.committed == len(trace)


class TestWrongPathModeling:
    def _mispredict_trace(self):
        b = ProgramBuilder("mp")
        b.li("x1", 0).li("x2", 40)
        b.data_block(0x1000, [(i * 2654435761 >> 13) & 1
                              for i in range(64)])
        b.li("x3", 0x1000)
        b.label("loop")
        b.andi("x4", "x1", 63)
        b.slli("x4", "x4", 3)
        b.add("x4", "x4", "x3")
        b.ld("x5", "x4", 0)
        b.beq("x5", "x0", "skip")
        b.addi("x6", "x6", 1)
        b.label("skip")
        b.addi("x1", "x1", 1)
        b.blt("x1", "x2", "loop")
        b.halt()
        return trace_program(b.build())

    def test_wrong_path_ops_dispatched_and_cleaned(self):
        trace = self._mispredict_trace()
        core = O3Core(trace, base_config())
        stats = core.run()
        if stats.branch_mispredicts:
            assert stats.wrong_path_dispatched > 0
        # at the end no wrong-path residue remains anywhere
        assert not core.window and not core.ops
        assert core.iq_queue.occupancy() == 0
        assert stats.committed == len(trace)

    def test_disabled_wrong_path(self):
        trace = self._mispredict_trace()
        stats = simulate(trace, base_config(model_wrong_path=False))
        assert stats.wrong_path_dispatched == 0
        assert stats.committed == len(trace)


class TestPresetsRun:
    @pytest.mark.parametrize("preset", ["base", "pro", "ultra"])
    def test_preset_completes(self, preset):
        trace = simple_trace(30)
        stats = simulate(trace, make_config(preset))
        assert stats.committed == len(trace)


class TestSquashRefetchWakeup:
    """Regression: a squash must not leave stale dependent registrations
    that wake (and double-decrement) the refetched incarnation of the
    same seq.

    The directed program interleaves same-address loads and stores with
    div-fed store data inside a short loop.  A store resolving its
    address finds speculatively-issued younger loads, squashes from the
    oldest violated load, and the refetched store re-registers its data
    dependence on the still-live div.  Before the identity check in the
    writeback wakeup walk, the stale registration from the squashed
    incarnation fired too, driving ``data_remaining`` to -1 so the
    store never completed — an IOC deadlock.
    """

    def _violating_loop(self):
        b = ProgramBuilder("squash-refetch")
        b.li("x1", 0)
        b.li("x2", 2)
        b.li("x3", 0x1000)
        b.label("loop")
        b.ld("x10", "x3", 0)
        b.sd("x14", "x3", 0)
        b.ld("x12", "x3", 0)
        b.sd("x16", "x3", 0)
        b.div("x14", "x17", "x2")
        b.add("x15", "x10", "x1")
        b.sd("x11", "x3", 0)
        b.ld("x17", "x3", 8)
        b.add("x10", "x13", "x1")
        b.div("x11", "x14", "x2")
        b.addi("x1", "x1", 1)
        b.blt("x1", "x2", "loop")
        b.halt()
        return trace_program(b.build())

    @pytest.mark.parametrize("commit", ["ioc", "orinoco", "vb", "rob"])
    def test_no_deadlock_after_violation_squash(self, commit):
        trace = self._violating_loop()
        core = O3Core(trace, base_config(commit=commit))
        stats = core.run(max_cycles=200_000)
        assert stats.committed == len(trace)
        assert stats.mem_order_violations > 0, \
            "program must actually exercise the violation squash"
        assert not core.window and not core.ops

    def test_counters_never_negative(self):
        core = O3Core(self._violating_loop(), base_config(commit="ioc"))
        while not core.done():
            core.step()
            for op in core.ops.values():
                assert op.data_remaining >= 0, \
                    f"stale wakeup double-decremented {op}"
                assert op.producers_remaining >= 0
