"""Register renaming: RAT, split register files, RST reclamation."""

import pytest

from repro.isa import NUM_ARCH_REGS, DynInstr, OpClass, Opcode, fp_reg
from repro.rename import PhysRegFreeList, RenameUnit


def make_instr(seq, dst=None, srcs=()):
    return DynInstr(seq=seq, pc=seq, opcode=Opcode.ADD,
                    op_class=OpClass.INT_ALU, dst=dst, srcs=tuple(srcs),
                    imm=0, addr=None, taken=False, next_pc=seq + 1,
                    fault=False, critical=False)


class TestFreeList:
    def test_allocate_free_cycle(self):
        fl = PhysRegFreeList(4)
        regs = [fl.allocate() for _ in range(4)]
        assert fl.allocate() is None
        fl.free(regs[2])
        assert fl.allocate() == regs[2]

    def test_double_free(self):
        fl = PhysRegFreeList(2)
        reg = fl.allocate()
        fl.free(reg)
        with pytest.raises(ValueError):
            fl.free(reg)


class TestRenameBasics:
    def test_initial_mappings_consume_arch_regs(self):
        r = RenameUnit(100, "inorder")
        assert r.int_freelist.occupancy() == 32
        assert r.fp_freelist.occupancy() == 32

    def test_sources_map_through_rat(self):
        r = RenameUnit(100, "inorder")
        w = r.rename(make_instr(0, dst=5))
        c = r.rename(make_instr(1, srcs=(5,)))
        assert c.srcs_phys == (w.phys_dst,)

    def test_split_files(self):
        r = RenameUnit(100, "inorder")
        rec_int = r.rename(make_instr(0, dst=3))
        rec_fp = r.rename(make_instr(1, dst=fp_reg(3)))
        assert rec_int.phys_dst < 100
        assert rec_fp.phys_dst >= 100

    def test_can_rename_per_class(self):
        r = RenameUnit(33, "inorder")   # 1 spare int, 1 spare fp
        assert r.can_rename(5)
        r.rename(make_instr(0, dst=5))
        assert not r.can_rename(6)
        assert r.can_rename(fp_reg(0))   # fp pool untouched
        assert r.can_rename(None)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RenameUnit(32)
        with pytest.raises(ValueError):
            RenameUnit(100, "bogus")


class TestInOrderReclamation:
    def test_prev_mapping_freed_at_overwriter_commit(self):
        r = RenameUnit(100, "inorder")
        first = r.rename(make_instr(0, dst=7))
        second = r.rename(make_instr(1, dst=7))
        before = r.int_freelist.available()
        r.writer_committed(second)
        assert r.int_freelist.available() == before + 1

    def test_architectural_mapping_never_freed(self):
        r = RenameUnit(100, "inorder")
        rec = r.rename(make_instr(0, dst=7))
        r.writer_committed(rec)      # frees the *previous* mapping only
        assert r.int_freelist.is_live(rec.phys_dst)


class TestCounterReclamation:
    def test_waits_for_consumers(self):
        r = RenameUnit(100, "counter")
        writer = r.rename(make_instr(0, dst=7))
        r.producer_completed(writer)
        reader = r.rename(make_instr(1, srcs=(7,)))
        overwriter = r.rename(make_instr(2, dst=7))
        before = r.int_freelist.available()
        r.writer_committed(overwriter)   # reader hasn't read yet
        assert r.int_freelist.available() == before
        r.operands_read(reader)
        assert r.int_freelist.available() == before + 1

    def test_waits_for_producer_completion(self):
        r = RenameUnit(100, "counter")
        writer = r.rename(make_instr(0, dst=7))
        overwriter = r.rename(make_instr(1, dst=7))
        before = r.int_freelist.available()
        r.writer_committed(overwriter)
        assert r.int_freelist.available() == before   # value not produced
        r.producer_completed(writer)
        assert r.int_freelist.available() == before + 1

    def test_double_read_rejected(self):
        r = RenameUnit(100, "counter")
        r.rename(make_instr(0, dst=7))
        reader = r.rename(make_instr(1, srcs=(7,)))
        r.operands_read(reader)
        with pytest.raises(RuntimeError):
            r.operands_read(reader)


class TestSquash:
    def test_rat_restored(self):
        r = RenameUnit(100, "counter")
        keep = r.rename(make_instr(0, dst=7))
        victim1 = r.rename(make_instr(1, dst=7))
        victim2 = r.rename(make_instr(2, dst=7))
        r.squash([victim1, victim2])
        assert r.rat[7] == keep.phys_dst

    def test_squashed_registers_returned(self):
        r = RenameUnit(100, "counter")
        before = r.int_freelist.available()
        victims = [r.rename(make_instr(i, dst=i % 5)) for i in range(5)]
        r.squash(victims)
        assert r.int_freelist.available() == before

    def test_consumer_counts_undone(self):
        r = RenameUnit(100, "counter")
        writer = r.rename(make_instr(0, dst=7))
        r.producer_completed(writer)
        reader = r.rename(make_instr(1, srcs=(7,)))      # unread consumer
        overwriter = r.rename(make_instr(2, dst=7))
        r.squash([reader, overwriter])
        rec3 = r.rename(make_instr(3, dst=7))
        before = r.int_freelist.available()
        r.writer_committed(rec3)
        # writer's register frees: the squashed reader's count was undone
        assert r.int_freelist.available() == before + 1
