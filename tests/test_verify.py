"""The differential memory-consistency verification campaign.

Covers the :mod:`repro.verify` subsystem end to end: deterministic
program generation, the healthy pipeline passing the oracle across
every commit policy, checkpointed resume after an interrupted
campaign, the planted-fault pipeline (detect -> minimise -> replayable
bundle -> regression snippet), crash-directory capping, and the
``repro replay`` exit-code contract.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.harness import load_bundle
from repro.testing.faults import parse_fault_specs
from repro.verify.campaign import (cell_name, combos, default_checkpoint,
                                   run_campaign, verify_program)
from repro.verify.generator import (CLASSIC_SHAPES, MemOp, VerifyProgram,
                                    generate_programs, program_sha)
from repro.verify.minimise import (minimise_and_bundle, minimise_violation,
                                   replay_violation)
from repro.verify.oracle import allowed_outcomes

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


@pytest.fixture
def crash_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crash"))
    return tmp_path / "crash"


@pytest.fixture
def verify_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_DIR", str(tmp_path / "verify"))
    return tmp_path / "verify"


# -- generator determinism (satellite: seeded reproducibility) --------------

class TestGeneratorDeterminism:
    def test_same_seed_byte_identical(self):
        a = generate_programs(42, 30)
        b = generate_programs(42, 30)
        assert [p.to_dict() for p in a] == [p.to_dict() for p in b]
        assert [program_sha(p) for p in a] == [program_sha(p) for p in b]
        blob_a = json.dumps([p.to_dict() for p in a], sort_keys=True)
        blob_b = json.dumps([p.to_dict() for p in b], sort_keys=True)
        assert blob_a.encode() == blob_b.encode()

    def test_different_seeds_differ(self):
        a = generate_programs(1, 30)
        b = generate_programs(2, 30)
        assert [p.to_dict() for p in a] != [p.to_dict() for p in b]

    def test_classics_lead_every_campaign(self):
        programs = generate_programs(7, 20)
        names = [p.name for p in programs[:len(CLASSIC_SHAPES)]]
        assert names == list(CLASSIC_SHAPES)

    def test_prefix_stability(self):
        """A larger campaign extends a smaller one, never reshuffles."""
        small = generate_programs(5, 15)
        large = generate_programs(5, 25)
        assert [p.to_dict() for p in small] == \
            [p.to_dict() for p in large[:15]]

    def test_roundtrip_through_dict(self):
        for program in generate_programs(9, 12):
            clone = VerifyProgram.from_dict(program.to_dict())
            assert clone == program
            assert program_sha(clone) == program_sha(program)


# -- the grid ---------------------------------------------------------------

class TestGrid:
    def test_seventeen_combos(self):
        grid = combos()
        assert len(grid) == 17
        assert ("rvwmo", "orinoco") in grid
        assert ("tso", "orinoco") in grid
        # ECL-family policies are not defined under TSO
        for policy in ("vb", "br", "ecl"):
            assert ("tso", policy) not in grid

    def test_healthy_classics_pass_everywhere(self):
        for name in ("sb", "mp", "mp_stress"):
            result = verify_program(CLASSIC_SHAPES[name])
            assert result["combos"] == 17
            assert result["violations"] == [], name
            assert result["errors"] == [], name

    def test_lane_path_matches_serial(self):
        serial = verify_program(CLASSIC_SHAPES["sb"], lanes=1)
        laned = verify_program(CLASSIC_SHAPES["sb"], lanes=4)
        assert laned["violations"] == serial["violations"] == []
        assert laned["combos"] == serial["combos"]


# -- checkpointed campaigns -------------------------------------------------

class TestCampaignCheckpoint:
    def test_clean_run_then_full_resume(self, verify_dir, crash_dir):
        first = run_campaign(seed=7, count=6, jobs=1)
        assert first.ok and first.completed == 6 and first.resumed == 0
        second = run_campaign(seed=7, count=6, jobs=1)
        assert second.ok and second.resumed == 6 and second.completed == 0

    def test_checkpoint_is_canonical_and_seed_keyed(self, verify_dir,
                                                    crash_dir):
        run_campaign(seed=7, count=6, jobs=1)
        path = default_checkpoint(7, 6)
        assert path.exists() and "s7-n6" in path.name
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"seed": 7, "count": 6, "version": 1}
        entries = [json.loads(line) for line in lines[1:]]
        assert [e["index"] for e in entries] == list(range(6))
        programs = generate_programs(7, 6)
        for e in entries:
            assert e["sha"] == program_sha(programs[e["index"]])
        # byte-identical across a fresh re-run (seeded determinism)
        blob = path.read_bytes()
        run_campaign(seed=7, count=6, jobs=1, fresh=True)
        assert path.read_bytes() == blob

    def test_truncated_checkpoint_resumes_without_rerun(self, verify_dir,
                                                        crash_dir):
        run_campaign(seed=7, count=6, jobs=1)
        path = default_checkpoint(7, 6)
        lines = path.read_text().splitlines()
        # keep header + 3 entries, and plant a marker violation in one
        # completed entry: if the resume re-ran the program, the marker
        # would be recomputed away
        marked = json.loads(lines[2])
        marker = {"cell": "verify/marker", "model": "tso",
                  "policy": "ioc", "outcomes": ["planted"],
                  "witnesses": []}
        marked["violations"] = [marker]
        lines[2] = json.dumps(marked, sort_keys=True)
        path.write_text("\n".join(lines[:4]) + "\n")
        result = run_campaign(seed=7, count=6, jobs=1, minimise=False)
        assert result.resumed == 3
        assert result.completed == 3
        assert any(v.get("cell") == "verify/marker"
                   for v in result.violations)

    def test_stale_checkpoint_discarded_on_seed_change(self, verify_dir,
                                                       crash_dir,
                                                       tmp_path):
        ckpt = tmp_path / "ckpt.jsonl"
        run_campaign(seed=7, count=6, jobs=1, checkpoint=ckpt)
        result = run_campaign(seed=8, count=6, jobs=1, checkpoint=ckpt)
        assert result.resumed == 0 and result.completed == 6

    def test_sigkill_mid_campaign_then_resume(self, tmp_path):
        """The acceptance path: SIGKILL a running campaign, resume it,
        and the finished programs are not re-run."""
        ckpt = tmp_path / "kill.jsonl"
        env = dict(os.environ, PYTHONPATH=SRC,
                   REPRO_VERIFY_DIR=str(tmp_path),
                   REPRO_CRASH_DIR=str(tmp_path / "crash"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "verify",
             "--programs", "40", "--seed", "7", "--jobs", "1",
             "--checkpoint", str(ckpt)],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if ckpt.exists() and \
                        len(ckpt.read_text().splitlines()) >= 4:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("campaign produced no checkpoint entries")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        done_before = len(ckpt.read_text().splitlines()) - 1
        assert done_before >= 3
        result = run_campaign(seed=7, count=40, jobs=1, checkpoint=ckpt,
                              minimise=False)
        # a torn final line may drop one entry; every fully-recorded
        # program must be resumed, not re-run
        assert result.resumed >= done_before - 1
        assert result.resumed + result.completed == 40
        assert result.ok


# -- planted fault: detect -> minimise -> bundle -> replay ------------------

PLANT = "lockdown:verify/mp_stress/tso/*"


class TestPlantedViolation:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("plant")
        os.environ["REPRO_CRASH_DIR"] = str(tmp / "crash")
        os.environ["REPRO_VERIFY_DIR"] = str(tmp / "verify")
        try:
            result = run_campaign(seed=7, count=9, jobs=1,
                                  faults_text=PLANT)
        finally:
            os.environ.pop("REPRO_CRASH_DIR", None)
            os.environ.pop("REPRO_VERIFY_DIR", None)
        return result

    def test_campaign_catches_planted_violation(self, campaign):
        assert campaign.violations
        cells = {v["cell"] for v in campaign.violations}
        assert cells <= {cell_name("mp_stress", "tso", p)
                         for _, p in combos()}
        # healthy models/policies stay clean
        assert all("/tso/" in c for c in cells)

    def test_bundle_written_and_replayable(self, campaign):
        assert campaign.bundles, "minimiser produced no bundle"
        bundle = load_bundle(campaign.bundles[0])
        assert bundle["verify"]["model"] == "tso"
        assert bundle["faults"] == PLANT
        assert "def test_verify_regression_" in \
            bundle["verify"]["regression"]
        minimised = VerifyProgram.from_dict(
            bundle["verify"]["minimised"])
        original = CLASSIC_SHAPES["mp_stress"]
        assert minimised.name == original.name
        assert sum(map(len, minimised.threads)) <= \
            sum(map(len, original.threads))
        report = replay_violation(bundle)
        assert report.reproduced
        assert "REPRODUCED" in report.format()

    def test_cli_replay_exit_codes(self, campaign, tmp_path, capsys):
        bundle_path = campaign.bundles[0]
        assert main(["replay", bundle_path]) == 0
        out = capsys.readouterr().out
        assert "verdict:  REPRODUCED" in out
        # strip the fault programme -> healthy pipeline -> code 3
        healthy = load_bundle(bundle_path)
        healthy["faults"] = ""
        healed = tmp_path / "healed.json"
        healed.write_text(json.dumps(healthy))
        assert main(["replay", str(healed)]) == 3
        assert "verdict:  NOT-REPRODUCED" in capsys.readouterr().out
        # unreadable bundle -> code 2
        assert main(["replay", str(tmp_path / "missing.json")]) == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{\"not\": \"a bundle\"}")
        assert main(["replay", str(garbage)]) == 2

    def test_minimised_program_still_fails(self, crash_dir):
        specs = parse_fault_specs(PLANT)
        program = CLASSIC_SHAPES["mp_stress"]
        result = verify_program(program, fault_specs=specs)
        violation = result["violations"][0]
        minimised, probes = minimise_violation(
            program, violation["model"], violation["policy"],
            fault_specs=specs)
        assert probes >= 1
        assert minimised.name == program.name
        check = verify_program(
            minimised, fault_specs=specs,
            grid=[(violation["model"], violation["policy"])])
        assert check["violations"]


# -- crash-directory cap (satellite) ----------------------------------------

class TestCrashDirCap:
    def test_oldest_bundles_evicted(self, tmp_path, monkeypatch, capsys):
        from repro.harness import diagnostics
        monkeypatch.setenv("REPRO_CRASH_KEEP", "5")
        monkeypatch.setattr(diagnostics, "_evict_warned", set())
        root = tmp_path / "crash"
        paths = []
        for i in range(8):
            bundle = {"config": {}, "cell": f"cell-{i}", "n": i}
            path = diagnostics.write_bundle(bundle, crash_dir=root)
            os.utime(path, (i, i))      # deterministic mtime order
            paths.append(path)
        survivors = sorted(p.name for p in root.glob("crash-*.json"))
        assert len(survivors) == 5
        assert sorted(p.name for p in paths[-5:]) == survivors
        assert "evicting oldest" in capsys.readouterr().err

    def test_warns_once_per_directory(self, tmp_path, monkeypatch,
                                      capsys):
        from repro.harness import diagnostics
        monkeypatch.setenv("REPRO_CRASH_KEEP", "2")
        monkeypatch.setattr(diagnostics, "_evict_warned", set())
        root = tmp_path / "crash"
        for i in range(6):
            path = diagnostics.write_bundle(
                {"config": {}, "cell": f"c{i}"}, crash_dir=root)
            os.utime(path, (i, i))
        err = capsys.readouterr().err
        assert err.count("evicting oldest") == 1

    def test_cap_disabled_for_nonpositive_keep(self, tmp_path,
                                               monkeypatch):
        from repro.harness import diagnostics
        monkeypatch.setenv("REPRO_CRASH_KEEP", "0")
        root = tmp_path / "crash"
        for i in range(4):
            diagnostics.write_bundle({"config": {}, "cell": f"c{i}"},
                                     crash_dir=root)
        assert len(list(root.glob("crash-*.json"))) == 4


# -- CLI seed plumbing (satellite) ------------------------------------------

class TestCliSeedPlumbing:
    def test_env_seed_names_checkpoint(self, tmp_path, monkeypatch,
                                       capsys):
        monkeypatch.setenv("REPRO_VERIFY_SEED", "123")
        monkeypatch.setenv("REPRO_VERIFY_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crash"))
        assert main(["verify", "--programs", "2", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "seed=123" in out
        assert (tmp_path / "campaign-s123-n2.jsonl").exists()

    def test_flag_overrides_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_VERIFY_SEED", "123")
        monkeypatch.setenv("REPRO_VERIFY_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crash"))
        assert main(["verify", "--programs", "2", "--seed", "9",
                     "--jobs", "1"]) == 0
        assert "seed=9" in capsys.readouterr().out
        assert (tmp_path / "campaign-s9-n2.jsonl").exists()

    def test_campaigns_byte_identical_across_runs(self, tmp_path,
                                                  monkeypatch, capsys):
        monkeypatch.setenv("REPRO_VERIFY_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crash"))
        assert main(["verify", "--programs", "3", "--seed", "4",
                     "--jobs", "1"]) == 0
        path = tmp_path / "campaign-s4-n3.jsonl"
        blob = path.read_bytes()
        assert main(["verify", "--programs", "3", "--seed", "4",
                     "--jobs", "1", "--fresh"]) == 0
        assert path.read_bytes() == blob
        capsys.readouterr()
