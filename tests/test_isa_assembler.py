"""Text assembler round-trips and error reporting."""

import pytest

from repro.isa import (AssemblerError, Emulator, Opcode, ProgramBuilder,
                       assemble)


class TestAssemble:
    def test_basic_program(self):
        program = assemble("""
            .name basic
            li x1, 3
            li x2, 4
            add x3, x1, x2
            halt
        """)
        assert program.name == "basic"
        emulator = Emulator(program)
        emulator.run()
        assert emulator.regs[3] == 7

    def test_labels_forward_and_backward(self):
        program = assemble("""
                li x1, 0
                li x2, 3
            loop:
                addi x1, x1, 1
                blt x1, x2, loop
                jal x0, done
                li x9, 1
            done:
                halt
        """)
        emulator = Emulator(program)
        emulator.run()
        assert emulator.regs[1] == 3
        assert emulator.regs[9] == 0

    def test_memory_operands(self):
        program = assemble("""
            .word 0x40 123
            li x1, 0x40
            ld x2, 0(x1)
            sd x2, 8(x1)
            halt
        """)
        emulator = Emulator(program)
        emulator.run()
        assert emulator.memory[0x48] == 123

    def test_fp_and_word_float(self):
        program = assemble("""
            .word 0 1.5
            fld f1, 0(x0)
            fadd f2, f1, f1
            halt
        """)
        emulator = Emulator(program)
        emulator.run()
        from repro.isa import fp_reg
        assert emulator.regs[fp_reg(2)] == pytest.approx(3.0)

    def test_comments_and_blank_lines(self):
        program = assemble("""
            # full-line comment
            li x1, 1   # trailing comment
            nop        ; alt comment
            halt
        """)
        assert len(program.code) == 3

    def test_jalr_default_imm(self):
        program = assemble("jalr x0, x1\nhalt\n")
        assert program.code[0].opcode is Opcode.JALR
        assert program.code[0].imm == 0

    def test_listing_shows_labels(self):
        program = assemble("top:\n  addi x1, x1, 1\n  jal x0, top\n")
        listing = program.listing()
        assert "top:" in listing
        assert "addi" in listing


class TestErrors:
    @pytest.mark.parametrize("source", [
        "frobnicate x1, x2, x3",     # unknown mnemonic
        "add x1, x2",                 # wrong arity
        "ld x1, x2",                  # bad memory operand
        "li x1, banana",              # bad immediate
        ".word 0",                    # bad directive arity
        ".unknown 1 2",               # unknown directive
        "beq x1, x2, nowhere\nhalt",  # undefined label
        "dup:\ndup:\n  halt",         # duplicate label
    ])
    def test_rejects(self, source):
        with pytest.raises((AssemblerError, ValueError)):
            assemble(source)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nadd x1, x2\n")


class TestBuilderParity:
    def test_builder_and_assembler_agree(self):
        source = """
            li x1, 10
            li x2, 0
        loop:
            addi x2, x2, 1
            blt x2, x1, loop
            halt
        """
        asm_prog = assemble(source)

        builder = ProgramBuilder()
        builder.li("x1", 10).li("x2", 0)
        builder.label("loop")
        builder.addi("x2", "x2", 1)
        builder.blt("x2", "x1", "loop")
        builder.halt()
        built_prog = builder.build()

        assert len(asm_prog.code) == len(built_prog.code)
        for a, b in zip(asm_prog.code, built_prog.code):
            assert (a.opcode, a.rd, a.rs1, a.rs2, a.imm, a.target) == \
                   (b.opcode, b.rd, b.rs1, b.rs2, b.imm, b.target)
