"""Simulation statistics helpers."""

import pytest

from repro.pipeline import SimStats


class TestDerived:
    def test_ipc(self):
        stats = SimStats(cycles=100, committed=250)
        assert stats.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_occupancy(self):
        stats = SimStats(cycles=10, rob_occupancy_sum=500)
        assert stats.occupancy("rob") == 50.0

    def test_stall_breakdown_keys(self):
        stats = SimStats(stall_rob=3, stall_iq=1, stall_reg=2)
        breakdown = stats.stall_breakdown()
        assert breakdown == {"ROB": 3, "IQ": 1, "LQ": 0, "SQ": 0,
                             "REG": 2}

    def test_summary_mentions_ipc_and_events(self):
        stats = SimStats(name="x", cycles=10, committed=20,
                         branch_mispredicts=3)
        text = stats.summary()
        assert "IPC 2.000" in text and "mispredicts=3" in text


class TestMatrixActivity:
    def test_per_cycle_normalization(self):
        stats = SimStats(cycles=100, iq_select_ops=50, iq_writes=200,
                         rob_check_ops=25, rob_check_rows=100,
                         mdm_ops=10, wakeup_ops=40)
        activity = stats.matrix_activity()
        assert activity["iq_ops"] == 0.5
        assert activity["iq_writes"] == 2.0
        assert activity["rob_rows"] == 4.0      # rows per check op
        assert activity["wakeup_ops"] == 0.4

    def test_zero_cycles_safe(self):
        activity = SimStats().matrix_activity()
        assert all(v == 0 for v in activity.values())


class TestZeroCycleConvention:
    def test_every_rate_reads_zero_on_zero_cycles(self):
        """One convention for all derived rates: 0.0 when cycles == 0."""
        stats = SimStats(committed=50, iq_select_ops=10,
                         rob_occupancy_sum=400)
        assert stats.ipc == 0.0
        assert stats.occupancy("rob") == 0.0
        assert stats.per_cycle(123) == 0.0
        assert all(v == 0.0 for v in stats.matrix_activity().values())

    def test_per_cycle_matches_ipc(self):
        stats = SimStats(cycles=200, committed=100)
        assert stats.per_cycle(stats.committed) == stats.ipc == 0.5
