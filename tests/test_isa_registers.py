"""Unit tests for the flat register id space."""

import pytest

from repro.isa import (FP_BASE, NUM_ARCH_REGS, fp_reg, int_reg, is_fp,
                       parse_reg, reg_name)


class TestRegisterIds:
    def test_int_reg_range(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31

    def test_fp_reg_offset(self):
        assert fp_reg(0) == FP_BASE
        assert fp_reg(31) == NUM_ARCH_REGS - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            int_reg(32)
        with pytest.raises(ValueError):
            fp_reg(-1)

    def test_is_fp(self):
        assert not is_fp(int_reg(5))
        assert is_fp(fp_reg(5))


class TestParsing:
    @pytest.mark.parametrize("name,expected", [
        ("x0", 0), ("x31", 31), ("f0", FP_BASE), ("f31", NUM_ARCH_REGS - 1),
        ("X7", 7), ("F2", FP_BASE + 2),
    ])
    def test_parse_reg(self, name, expected):
        assert parse_reg(name) == expected

    @pytest.mark.parametrize("bad", ["", "y1", "x", "xx", "x32", "f99", "7"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_reg(bad)

    def test_round_trip(self):
        for reg in range(NUM_ARCH_REGS):
            assert parse_reg(reg_name(reg)) == reg

    def test_reg_name_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)
