"""Branch predictors, BTB, RAS, and the trace-driven fetch unit."""

import pytest

from repro.frontend import (BimodalPredictor, BranchTargetBuffer, FetchUnit,
                            GsharePredictor, ReturnAddressStack,
                            SaturatingCounter, TagePredictor, make_predictor)
from repro.isa import ProgramBuilder, trace_program


class TestSaturatingCounter:
    def test_saturates_high_and_low(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.update(True)
        assert c.value == 3 and c.taken
        for _ in range(10):
            c.update(False)
        assert c.value == 0 and not c.taken

    def test_hysteresis(self):
        c = SaturatingCounter(bits=2, value=3)
        c.update(False)
        assert c.taken            # still predicts taken after one miss


class TestDirectionPredictors:
    @pytest.mark.parametrize("cls", [BimodalPredictor, GsharePredictor])
    def test_learns_constant_direction(self, cls):
        p = cls(entries=256)
        for _ in range(8):
            p.update(12, True)
        assert p.predict(12)

    def test_bimodal_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_gshare_uses_history(self):
        p = GsharePredictor(entries=1024, history_bits=4)
        # alternating pattern at one PC: gshare can learn it, bimodal not
        for _ in range(64):
            p.update(5, True)
            p.update(5, False)
        first = p.predict(5)
        p.update(5, first)
        second = p.predict(5)
        assert isinstance(first, bool) and isinstance(second, bool)

    def test_tage_learns_loop_pattern(self):
        p = TagePredictor(num_tables=4, table_entries=128)
        # loop taken 7 times then not taken, repeated
        mispredicts = 0
        for rep in range(80):
            for i in range(8):
                taken = i != 7
                if p.predict(42) != taken:
                    mispredicts += 1
                p.update(42, taken)
        # after warmup TAGE should track the period-8 pattern well
        last_round_mispredicts = 0
        for i in range(8):
            taken = i != 7
            if p.predict(42) != taken:
                last_round_mispredicts += 1
            p.update(42, taken)
        assert last_round_mispredicts <= 1

    def test_tage_geometric_history_lengths(self):
        p = TagePredictor(num_tables=5, min_history=4, max_history=64)
        lengths = p.history_lengths
        assert lengths[0] == 4 and lengths[-1] == 64
        assert all(a < b for a, b in zip(lengths, lengths[1:]))


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert btb.lookup(100) is None
        btb.insert(100, 200)
        assert btb.lookup(100) == 200

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.insert(1, 10)
        btb.insert(2, 20)
        btb.lookup(1)            # 1 is now MRU
        btb.insert(3, 30)        # evicts 2
        assert btb.lookup(2) is None
        assert btb.lookup(1) == 10


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(10)
        ras.push(20)
        assert ras.pop() == 20
        assert ras.pop() == 10
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


def _loop_trace(iters=20):
    b = ProgramBuilder("loop")
    b.li("x1", 0).li("x2", iters)
    b.label("loop")
    b.addi("x1", "x1", 1)
    b.blt("x1", "x2", "loop")
    b.halt()
    return trace_program(b.build())


class TestPredictorFacade:
    def test_oracle_never_mispredicts(self):
        trace = _loop_trace()
        predictor = make_predictor("oracle")
        for instr in trace:
            if instr.is_branch:
                assert not predictor.predict(instr)
        assert predictor.accuracy() == 1.0

    def test_tage_learns_the_loop(self):
        trace = _loop_trace(iters=50)
        predictor = make_predictor("tage")
        mispredicts = sum(predictor.predict(i) for i in trace if i.is_branch)
        assert mispredicts <= 5

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("nope")

    def test_jalr_return_predicted_by_ras(self):
        b = ProgramBuilder("call")
        b.jal("x1", "fn")
        b.halt()
        b.label("fn")
        b.jalr("x0", "x1")
        trace = trace_program(b.build())
        predictor = make_predictor("tage")
        results = [predictor.predict(i) for i in trace if i.is_branch]
        assert results == [False, False]   # call then correctly-popped return


class TestFetchUnit:
    def test_fetch_width_respected(self):
        trace = _loop_trace()
        fetch = FetchUnit(trace, make_predictor("oracle"), width=2)
        group = fetch.fetch(0)
        assert len(group) <= 2

    def test_taken_branch_ends_group(self):
        trace = _loop_trace()
        fetch = FetchUnit(trace, make_predictor("oracle"), width=8)
        seen = []
        cycle = 0
        while not fetch.exhausted() and cycle < 100:
            group = fetch.fetch(cycle)
            if group:
                seen.append(group)
            cycle += 1
        for group in seen:
            takens = [g.instr for g in group
                      if g.instr.is_branch and g.instr.taken]
            if takens:
                assert group[-1].instr is takens[-1]

    def test_mispredict_stalls_until_resolved(self):
        trace = _loop_trace(iters=4)
        predictor = make_predictor("btfn")   # predicts not-taken: wrong
        fetch = FetchUnit(trace, predictor, width=4, redirect_penalty=3,
                          model_wrong_path=False)
        group = fetch.fetch(0)
        branch = next(g for g in group if g.mispredicted)
        assert fetch.fetch(1) == []          # stalled
        fetch.branch_resolved(branch.instr.seq, cycle=5)
        assert fetch.fetch(6) == []          # redirect penalty
        assert fetch.fetch(8) != []

    def test_wrong_path_emitted_while_stalled(self):
        trace = _loop_trace(iters=4)
        predictor = make_predictor("btfn")
        fetch = FetchUnit(trace, predictor, width=4,
                          model_wrong_path=True)
        fetch.fetch(0)                       # hits the mispredict
        wrong = fetch.fetch(1)
        assert wrong and all(g.wrong_path for g in wrong)
        assert all(g.instr.seq < 0 for g in wrong)

    def test_squash_to_rewinds(self):
        trace = _loop_trace()
        fetch = FetchUnit(trace, make_predictor("oracle"), width=4)
        fetch.fetch(0)
        fetch.squash_to(0, cycle=10)
        group = fetch.fetch(10 + fetch.redirect_penalty)
        assert group[0].instr.seq == 1
