"""Issue selection policies over the age matrix."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AgeMatrix
from repro.pipeline import FUType
from repro.scheduler import (AgeSelect, IdealSelect, MultSelect,
                             OrinocoSelect, RandomSelect, SelectContext,
                             make_select_policy)


def make_ctx(entries_with_fu, dispatch_order, fu_available, width,
             critical=()):
    """entries_with_fu: dict entry -> FUType; dispatch_order: list of
    entries oldest-first."""
    size = 32
    age = AgeMatrix(size)
    for entry in dispatch_order:
        age.dispatch(entry, critical=entry in critical)
    order_index = {entry: i for i, entry in enumerate(dispatch_order)}
    return SelectContext(
        entries=sorted(entries_with_fu),
        fu_of=lambda e: entries_with_fu[e],
        age_of=lambda e: order_index[e],
        age_matrix=age,
        fu_available=fu_available,
        width=width,
        rng=random.Random(1))


FULL_FU = {FUType.ALU: 3, FUType.MULDIV: 1, FUType.FPU: 2,
           FUType.LOAD: 1, FUType.STORE: 1}


class TestOrinocoSelect:
    def test_selects_width_oldest(self):
        ctx = make_ctx({e: FUType.ALU for e in (1, 2, 3)},
                       dispatch_order=[3, 1, 2],
                       fu_available=FULL_FU, width=2)
        granted = OrinocoSelect().select(ctx)
        assert sorted(granted) == [1, 3]

    def test_respects_fu_caps(self):
        ctx = make_ctx({1: FUType.MULDIV, 2: FUType.MULDIV, 3: FUType.ALU},
                       dispatch_order=[1, 2, 3],
                       fu_available=FULL_FU, width=4)
        granted = OrinocoSelect().select(ctx)
        assert 1 in granted and 3 in granted
        assert 2 not in granted          # only one MULDIV unit

    def test_clips_to_width_globally_oldest(self):
        fus = {1: FUType.ALU, 2: FUType.ALU, 3: FUType.FPU, 4: FUType.LOAD}
        ctx = make_ctx(fus, dispatch_order=[1, 2, 3, 4],
                       fu_available=FULL_FU, width=2)
        granted = OrinocoSelect().select(ctx)
        assert sorted(granted) == [1, 2]

    def test_zero_fu_type_skipped(self):
        ctx = make_ctx({1: FUType.FPU}, dispatch_order=[1],
                       fu_available={**FULL_FU, FUType.FPU: 0}, width=4)
        assert OrinocoSelect().select(ctx) == []


class TestAgeSelect:
    def test_oldest_always_granted(self):
        ctx = make_ctx({e: FUType.ALU for e in (5, 6, 7, 8)},
                       dispatch_order=[7, 5, 8, 6],
                       fu_available=FULL_FU, width=2)
        granted = AgeSelect().select(ctx)
        assert 7 in granted

    def test_oldest_skipped_when_fu_busy(self):
        ctx = make_ctx({1: FUType.MULDIV, 2: FUType.ALU},
                       dispatch_order=[1, 2],
                       fu_available={**FULL_FU, FUType.MULDIV: 0}, width=2)
        granted = AgeSelect().select(ctx)
        assert granted == [2]


class TestMultSelect:
    def test_oldest_per_type_granted(self):
        fus = {1: FUType.ALU, 2: FUType.ALU, 3: FUType.FPU, 4: FUType.FPU}
        ctx = make_ctx(fus, dispatch_order=[2, 4, 1, 3],
                       fu_available=FULL_FU, width=2)
        granted = MultSelect().select(ctx)
        assert 2 in granted and 4 in granted


class TestRandomSelect:
    def test_bounded_by_width_and_fu(self):
        fus = {e: FUType.ALU for e in range(8)}
        ctx = make_ctx(fus, dispatch_order=list(range(8)),
                       fu_available=FULL_FU, width=4)
        granted = RandomSelect().select(ctx)
        assert len(granted) == 3        # ALU cap

    def test_deterministic_with_seed(self):
        fus = {e: FUType.ALU for e in range(8)}
        results = []
        for _ in range(2):
            ctx = make_ctx(fus, dispatch_order=list(range(8)),
                           fu_available=FULL_FU, width=2)
            results.append(RandomSelect().select(ctx))
        assert results[0] == results[1]


class TestCriticality:
    def test_critical_beats_older_noncritical(self):
        ctx = make_ctx({1: FUType.ALU, 2: FUType.ALU},
                       dispatch_order=[1, 2],     # 1 older
                       fu_available={**FULL_FU, FUType.ALU: 1}, width=1,
                       critical={2})
        granted = OrinocoSelect().select(ctx)
        assert granted == [2]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("rand", RandomSelect), ("age", AgeSelect), ("mult", MultSelect),
        ("orinoco", OrinocoSelect), ("cri", OrinocoSelect),
        ("ideal", IdealSelect), ("shift", IdealSelect)])
    def test_mapping(self, name, cls):
        assert isinstance(make_select_policy(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_select_policy("fifo")


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_orinoco_equals_ideal_oracle(data):
    """Property (§3.1): the bit-count selection over the age matrix
    grants exactly what an oracle sorting by true age would, under any
    mix of FU types, availability, and width."""
    size = 24
    count = data.draw(st.integers(min_value=1, max_value=16))
    entries = data.draw(st.lists(
        st.integers(min_value=0, max_value=size - 1), unique=True,
        min_size=count, max_size=count))
    fus = {e: data.draw(st.sampled_from(list(FUType))) for e in entries}
    avail = {fu: data.draw(st.integers(min_value=0, max_value=3))
             for fu in FUType}
    width = data.draw(st.integers(min_value=1, max_value=8))
    order = list(entries)
    # dispatch order = a permutation drawn by shuffling deterministically
    perm = data.draw(st.permutations(order))

    def build(policy):
        age = AgeMatrix(size)
        for entry in perm:
            age.dispatch(entry)
        index = {e: i for i, e in enumerate(perm)}
        ctx = SelectContext(entries=sorted(entries),
                            fu_of=lambda e: fus[e],
                            age_of=lambda e: index[e],
                            age_matrix=age, fu_available=avail,
                            width=width, rng=random.Random(0))
        return policy.select(ctx)

    assert sorted(build(OrinocoSelect())) == sorted(build(IdealSelect()))
