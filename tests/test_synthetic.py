"""Parameterized synthetic workload generator."""

import pytest

from repro.isa import OpClass, trace_program
from repro.pipeline import base_config, simulate
from repro.workloads import SyntheticSpec


class TestValidation:
    def test_entropy_bounds(self):
        with pytest.raises(ValueError):
            SyntheticSpec(branch_entropy=1.5)

    def test_lane_bounds(self):
        with pytest.raises(ValueError):
            SyntheticSpec(lanes=9)

    def test_iterations_positive(self):
        with pytest.raises(ValueError):
            SyntheticSpec(iterations=0)


class TestGeneration:
    def test_builds_and_runs(self):
        spec = SyntheticSpec(iterations=50, lanes=2, loads_per_iter=1)
        trace = trace_program(spec.build())
        stats = simulate(trace, base_config())
        assert stats.committed == len(trace)

    def test_mix_follows_knobs(self):
        spec = SyntheticSpec(iterations=50, lanes=1, loads_per_iter=2,
                             stores_per_iter=1, muls_per_iter=2,
                             fp_per_iter=1)
        trace = trace_program(spec.build())
        mix = trace.class_mix()
        assert mix.get(OpClass.STORE, 0) > 0
        assert mix.get(OpClass.FP_ADD, 0) > 0
        # 2 indexed loads + 1 LCG mul + 2 pressure muls per iteration
        assert mix.get(OpClass.INT_MUL, 0) > mix.get(OpClass.STORE, 0)

    def test_footprint_drives_misses(self):
        small = SyntheticSpec(iterations=150, loads_per_iter=2,
                              footprint_kb=16, name="small")
        big = SyntheticSpec(iterations=150, loads_per_iter=2,
                            footprint_kb=8192, name="big")
        from repro.pipeline import O3Core
        small_core = O3Core(trace_program(small.build()), base_config())
        small_stats = small_core.run()
        big_core = O3Core(trace_program(big.build()), base_config())
        big_stats = big_core.run()
        # the small footprint re-hits lines in the L1; the big one
        # scatters over fresh lines (short runs are cold-miss dominated,
        # so compare at the L1 and through IPC)
        assert big_stats.memory["l1_miss_rate"] > \
            small_stats.memory["l1_miss_rate"] + 0.1
        assert big_stats.ipc < small_stats.ipc

    def test_branch_entropy_drives_mispredicts(self):
        tame = SyntheticSpec(iterations=300, branch_entropy=0.0,
                             name="tame")
        wild = SyntheticSpec(iterations=300, branch_entropy=1.0,
                             name="wild")
        tame_stats = simulate(trace_program(tame.build()), base_config())
        wild_stats = simulate(trace_program(wild.build()), base_config())
        assert wild_stats.branch_mispredicts > \
            tame_stats.branch_mispredicts + 10

    def test_deterministic_given_seed(self):
        a = trace_program(SyntheticSpec(seed=5).build())
        b = trace_program(SyntheticSpec(seed=5).build())
        assert len(a) == len(b)
        assert all(x.opcode is y.opcode and x.addr == y.addr
                   for x, y in zip(a, b))
