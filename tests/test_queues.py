"""Queue organizations: SHIFT / CIRC / RAND semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queues import CircularQueue, CollapsibleQueue, RandomQueue


class TestRandomQueue:
    def test_allocates_until_full(self):
        q = RandomQueue(3)
        entries = [q.allocate() for _ in range(3)]
        assert sorted(entries) == [0, 1, 2]
        assert q.allocate() is None
        assert q.alloc_failures == 1

    def test_free_any_order(self):
        q = RandomQueue(3)
        entries = [q.allocate() for _ in range(3)]
        q.free(entries[1])
        assert q.allocatable() == 1
        assert q.allocate() == entries[1]

    def test_double_free_rejected(self):
        q = RandomQueue(2)
        entry = q.allocate()
        q.free(entry)
        with pytest.raises(ValueError):
            q.free(entry)

    def test_occupancy_tracks(self):
        q = RandomQueue(4)
        a = q.allocate()
        q.allocate()
        q.free(a)
        assert q.occupancy() == 1
        assert q.allocatable() == 3

    def test_no_capacity_loss_under_ooo_free(self):
        """RAND is capacity-efficient: any free slot is allocatable."""
        q = RandomQueue(4)
        entries = [q.allocate() for _ in range(4)]
        q.free(entries[2])
        q.free(entries[0])
        assert q.allocatable() == 2


class TestCircularQueue:
    def test_fifo_when_freed_in_order(self):
        q = CircularQueue(3)
        entries = [q.allocate() for _ in range(3)]
        for entry in entries:
            q.free(entry)
        assert q.allocatable() == 3

    def test_gap_blocks_capacity(self):
        """Figure 1(b): freeing a middle entry does not free its slot."""
        q = CircularQueue(3)
        entries = [q.allocate() for _ in range(3)]
        q.free(entries[1])          # middle: becomes a gap
        assert q.occupancy() == 2
        assert q.allocatable() == 0          # still full!
        assert q.gaps() == 1
        q.free(entries[0])          # head: reclaims itself AND the gap
        assert q.allocatable() == 2

    def test_wraparound(self):
        q = CircularQueue(3)
        for _ in range(7):
            entry = q.allocate()
            q.free(entry)
        assert q.allocatable() == 3

    def test_alloc_failure_counted(self):
        q = CircularQueue(2)
        q.allocate()
        q.allocate()
        assert q.allocate() is None
        assert q.alloc_failures == 1

    def test_gap_statistics(self):
        q = CircularQueue(4)
        entries = [q.allocate() for _ in range(3)]
        q.free(entries[1])
        q.tick()
        assert q.gap_slots == 1


class TestCollapsibleQueue:
    def test_handles_stable_across_compaction(self):
        q = CollapsibleQueue(4)
        handles = [q.allocate() for _ in range(4)]
        q.free(handles[0])
        # remaining handles still resolve, now shifted down
        assert q.position(handles[1]) == 0
        assert q.position(handles[3]) == 2

    def test_shift_ops_counted(self):
        q = CollapsibleQueue(4)
        handles = [q.allocate() for _ in range(4)]
        q.free(handles[0])          # 3 entries shift
        assert q.shift_ops == 3
        q.free(handles[3])          # tail: nothing shifts
        assert q.shift_ops == 3

    def test_positional_order_is_age_order(self):
        q = CollapsibleQueue(4)
        h0 = q.allocate()
        h1 = q.allocate()
        q.free(h0)
        h2 = q.allocate()
        assert q.handles_oldest_first() == [h1, h2]

    def test_capacity_efficient(self):
        q = CollapsibleQueue(2)
        h0 = q.allocate()
        q.allocate()
        assert q.allocate() is None
        q.free(h0)
        assert q.allocate() is not None

    def test_free_unknown_handle(self):
        q = CollapsibleQueue(2)
        with pytest.raises(ValueError):
            q.free(99)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_rand_never_loses_capacity_circ_may(data):
    """Property: RAND's allocatable == size - occupancy always; CIRC's
    allocatable <= that, with equality when frees arrive in FIFO order."""
    size = data.draw(st.integers(min_value=2, max_value=12))
    rand, circ = RandomQueue(size), CircularQueue(size)
    live = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=60))):
        if live and data.draw(st.booleans()):
            idx = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
            r_entry, c_entry = live.pop(idx)
            rand.free(r_entry)
            circ.free(c_entry)
        else:
            r_entry = rand.allocate()
            c_entry = circ.allocate()
            if r_entry is None or c_entry is None:
                # CIRC may fill first due to gaps — RAND must not be the
                # one that fails if CIRC succeeded
                assert not (r_entry is None and c_entry is not None)
                if c_entry is not None:
                    circ.free(c_entry)
                if r_entry is not None:
                    rand.free(r_entry)
                continue
            live.append((r_entry, c_entry))
        assert rand.allocatable() == size - rand.occupancy()
        assert circ.allocatable() <= rand.allocatable()
