"""LSQ unit: allocation, forwarding search, disambiguation, TSO mode."""

import numpy as np
import pytest

from repro.lsq import LSQUnit


def fresh(lq=8, sq=8, sb=4, tso=False):
    return LSQUnit(lq, sq, sb, tso=tso, ldt_size=4)


class TestAllocation:
    def test_load_allocation_capacity(self):
        lsq = fresh(lq=2)
        assert lsq.allocate_load(0) is not None
        assert lsq.allocate_load(1) is not None
        assert not lsq.can_allocate_load()

    def test_store_allocation_sets_mdm_column(self):
        lsq = fresh()
        entry = lsq.allocate_store(0)
        assert lsq.mdm.store_valid[entry]


class TestLoadLookup:
    def test_memory_when_no_stores(self):
        lsq = fresh()
        lsq.allocate_load(5)
        outcome, unresolved, match = lsq.load_lookup(5, 0x100)
        assert outcome == "memory" and match is None
        assert not unresolved.any()

    def test_forwards_from_youngest_older_match(self):
        lsq = fresh()
        lsq.allocate_store(1)
        lsq.allocate_store(2)
        lsq.store_resolve(1, 0x100)
        lsq.store_resolve(2, 0x100)
        lsq.allocate_load(3)
        outcome, _, match = lsq.load_lookup(3, 0x100)
        assert outcome == "forward" and match == 2

    def test_younger_store_never_forwards(self):
        lsq = fresh()
        lsq.allocate_store(9)
        lsq.store_resolve(9, 0x100)
        lsq.allocate_load(3)
        outcome, _, _ = lsq.load_lookup(3, 0x100)
        assert outcome == "memory"

    def test_unresolved_older_store_flagged(self):
        lsq = fresh()
        entry = lsq.allocate_store(1)
        lsq.allocate_load(2)
        outcome, unresolved, _ = lsq.load_lookup(2, 0x100)
        assert outcome == "memory"
        assert unresolved[entry]

    def test_unresolved_between_match_and_load_stays_flagged(self):
        lsq = fresh()
        lsq.allocate_store(1)          # will match
        blocker = lsq.allocate_store(2)  # unresolved, younger than match
        lsq.store_resolve(1, 0x100)
        lsq.allocate_load(3)
        outcome, unresolved, match = lsq.load_lookup(3, 0x100)
        assert outcome == "forward" and match == 1
        assert unresolved[blocker]

    def test_unresolved_older_than_match_cleared(self):
        lsq = fresh()
        lsq.allocate_store(1)          # stays unresolved (older)
        lsq.allocate_store(2)
        lsq.store_resolve(2, 0x100)    # the match supersedes store 1
        lsq.allocate_load(3)
        outcome, unresolved, match = lsq.load_lookup(3, 0x100)
        assert outcome == "forward" and match == 2
        assert not unresolved.any()

    def test_store_buffer_forwards(self):
        lsq = fresh()
        lsq.allocate_store(1)
        lsq.store_resolve(1, 0x200)
        lsq.commit_store(1)
        lsq.allocate_load(2)
        outcome, _, match = lsq.load_lookup(2, 0x200)
        assert outcome == "forward" and match == 1


class TestViolationDetection:
    def test_conflicting_speculative_load_reported(self):
        lsq = fresh()
        store_entry = lsq.allocate_store(1)
        lsq.allocate_load(2)
        _, unresolved, _ = lsq.load_lookup(2, 0x100)
        lsq.load_issue(2, 0x100, unresolved)
        violated = lsq.store_resolve(1, 0x100)
        assert violated == [2]

    def test_different_address_no_violation(self):
        lsq = fresh()
        lsq.allocate_store(1)
        lsq.allocate_load(2)
        _, unresolved, _ = lsq.load_lookup(2, 0x100)
        lsq.load_issue(2, 0x100, unresolved)
        assert lsq.store_resolve(1, 0x180) == []
        assert lsq.load_is_nonspeculative(2)


class TestCommit:
    def test_store_commit_order_oldest_first(self):
        lsq = fresh()
        lsq.allocate_store(3)
        lsq.allocate_store(7)
        assert lsq.oldest_store_seq() == 3

    def test_store_buffer_capacity(self):
        lsq = fresh(sb=1)
        lsq.allocate_store(1)
        lsq.store_resolve(1, 0x100)
        lsq.commit_store(1)
        assert not lsq.can_commit_store()
        lsq.drain_store()
        assert lsq.can_commit_store()

    def test_unresolved_store_cannot_commit(self):
        lsq = fresh()
        lsq.allocate_store(1)
        with pytest.raises(RuntimeError):
            lsq.commit_store(1)

    def test_load_commit_frees_entry(self):
        lsq = fresh(lq=1)
        lsq.allocate_load(1)
        lsq.load_issue(1, 0x100, np.zeros(8, dtype=bool))
        lsq.commit_load(1)
        assert lsq.can_allocate_load()


class TestSquash:
    def test_removes_younger_entries(self):
        lsq = fresh()
        lsq.allocate_load(1)
        lsq.allocate_load(5)
        lsq.allocate_store(6)
        lsq.squash(5)
        assert lsq.lq_occupancy() == 1
        assert lsq.sq_occupancy() == 0
        assert 1 in lsq._seq_to_lq


class TestTSOMode:
    def test_ooo_load_commit_takes_lockdown(self):
        lsq = fresh(tso=True)
        lsq.allocate_load(1)                 # older, not performed
        lsq.allocate_load(2)
        lsq.load_issue(2, 0x200, np.zeros(8, dtype=bool))
        lsq.load_performed(2)
        lsq.commit_load(2)                   # commits past load 1
        assert lsq.lockdown.is_locked(0x200)
        assert lsq.lockdowns_taken == 1

    def test_lockdown_lifts_when_older_performs(self):
        lsq = fresh(tso=True)
        lsq.allocate_load(1)
        lsq.load_issue(1, 0x100, np.zeros(8, dtype=bool))
        lsq.allocate_load(2)
        lsq.load_issue(2, 0x200, np.zeros(8, dtype=bool))
        lsq.load_performed(2)
        lsq.commit_load(2)
        assert lsq.lockdown.is_locked(0x200)
        released = lsq.load_performed(1)
        assert released == [0x200]
        assert not lsq.lockdown.is_locked(0x200)

    def test_ordered_commit_takes_no_lockdown(self):
        lsq = fresh(tso=True)
        lsq.allocate_load(1)
        lsq.load_issue(1, 0x100, np.zeros(8, dtype=bool))
        lsq.load_performed(1)
        lsq.commit_load(1)
        assert lsq.lockdowns_taken == 0

    def test_unperformed_commit_rejected_under_tso(self):
        lsq = fresh(tso=True)
        lsq.allocate_load(1)
        lsq.load_issue(1, 0x100, np.zeros(8, dtype=bool))
        with pytest.raises(RuntimeError):
            lsq.commit_load(1)               # ECL is not TSO-compatible
