"""Experiment harness: runners, speedups, reporting."""

import pytest

from repro.harness import (ExperimentResult, format_speedup_matrix,
                           format_table, geomean, geomean_speedup, percent,
                           run_config, run_config_with_criticality, speedups,
                           table1)
from repro.pipeline import base_config
from repro.workloads import build_suite

SMALL = ["gcc.mix", "x264.divint"]


@pytest.fixture(scope="module")
def traces():
    return build_suite(scale=0.3, names=SMALL)


class TestRunner:
    def test_run_config_covers_suite(self, traces):
        result = run_config("base", base_config(), traces)
        assert set(result.stats) == set(SMALL)
        assert all(s.committed > 0 for s in result.stats.values())

    def test_speedups_vs_self_are_unity(self, traces):
        result = run_config("base", base_config(), traces)
        ratios = speedups(result, result)
        assert all(v == pytest.approx(1.0) for v in ratios.values())

    def test_geomean_speedup(self, traces):
        a = run_config("a", base_config(), traces)
        b = run_config("b", base_config(commit="orinoco"), traces)
        value = geomean_speedup(b, a)
        assert 0.5 < value < 2.0

    def test_criticality_runner_clears_tags(self, traces):
        profile = base_config()
        result = run_config_with_criticality(
            "cri", base_config(scheduler="cri"), traces, profile)
        assert set(result.stats) == set(SMALL)
        for trace in traces.values():
            assert not any(i.critical for i in trace)


class TestMath:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 1.0

    def test_percent(self):
        assert percent(1.148) == "+14.8%"
        assert percent(0.59) == "-41.0%"


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 22]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[1]

    def test_speedup_matrix(self):
        text = format_speedup_matrix(
            {"w1": {"A": 1.5, "B": 0.9}}, ["A", "B"], title="X",
            baseline="BASE")
        assert "1.500" in text and "0.900" in text and "BASE" in text

    def test_table1_contents(self):
        text = table1()
        assert "224" in text and "512" in text and "4/4" in text

    def test_experiment_result_format(self):
        result = ExperimentResult("Fig X", "test", baseline_label="base")
        result.summary = {"conf": 1.1}
        result.per_workload = {"w": {"conf": 1.1}}
        result.results = {"base": None, "conf": None}
        text = result.format()
        assert "Fig X" in text and "+10.0%" in text


class TestEngineVersionInCacheKey:
    """An engine revision bump must bust every cached cell: SimStats
    produced by an older engine may no longer match what the current
    engine would compute."""

    def test_engine_version_exported(self):
        from repro.pipeline import ENGINE_VERSION
        assert isinstance(ENGINE_VERSION, int) and ENGINE_VERSION >= 2

    def test_engine_bump_changes_every_key(self, monkeypatch):
        from repro.harness.cache import cache_key
        before = cache_key(base_config(), "gcc.mix", 0.5)
        monkeypatch.setattr("repro.harness.cache.ENGINE_VERSION", -1)
        after = cache_key(base_config(), "gcc.mix", 0.5)
        assert before != after

    def test_key_stable_at_fixed_engine(self):
        from repro.harness.cache import cache_key
        assert cache_key(base_config(), "gcc.mix", 0.5) == \
            cache_key(base_config(), "gcc.mix", 0.5)
