"""Trace serialization round trips."""

import json

import pytest

from repro.isa import ProgramBuilder, load_trace, save_trace, trace_program
from repro.pipeline import base_config, simulate


@pytest.fixture
def trace():
    b = ProgramBuilder("roundtrip")
    b.li("x1", 5).li("x2", 0)
    b.label("loop")
    b.ld("x3", "x4", 8)
    b.sd("x3", "x4", 16)
    b.fadd("f1", "f1", "f2")
    b.addi("x2", "x2", 1)
    b.blt("x2", "x1", "loop")
    b.halt()
    return trace_program(b.build())


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.seq, a.pc, a.opcode, a.dst, a.srcs, a.imm, a.addr,
                    a.taken, a.next_pc, a.fault) == \
                   (b.seq, b.pc, b.opcode, b.dst, b.srcs, b.imm, b.addr,
                    b.taken, b.next_pc, b.fault)

    def test_loaded_trace_simulates_identically(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        original = simulate(trace, base_config())
        reloaded = simulate(loaded, base_config())
        assert original.cycles == reloaded.cycles
        assert original.ipc == reloaded.ipc


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text("hello\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "vx.jsonl"
        path.write_text(json.dumps({"format": "repro-trace",
                                    "version": 99, "count": 0}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)
