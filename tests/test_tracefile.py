"""Trace serialization round trips."""

import json

import pytest

from repro.isa import ProgramBuilder, load_trace, save_trace, trace_program
from repro.pipeline import base_config, simulate


@pytest.fixture
def trace():
    b = ProgramBuilder("roundtrip")
    b.li("x1", 5).li("x2", 0)
    b.label("loop")
    b.ld("x3", "x4", 8)
    b.sd("x3", "x4", 16)
    b.fadd("f1", "f1", "f2")
    b.addi("x2", "x2", 1)
    b.blt("x2", "x1", "loop")
    b.halt()
    return trace_program(b.build())


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.seq, a.pc, a.opcode, a.dst, a.srcs, a.imm, a.addr,
                    a.taken, a.next_pc, a.fault) == \
                   (b.seq, b.pc, b.opcode, b.dst, b.srcs, b.imm, b.addr,
                    b.taken, b.next_pc, b.fault)

    def test_loaded_trace_simulates_identically(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        original = simulate(trace, base_config())
        reloaded = simulate(loaded, base_config())
        assert original.cycles == reloaded.cycles
        assert original.ipc == reloaded.ipc


class TestErrors:
    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text("hello\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"format": "other"}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "vx.jsonl"
        path.write_text(json.dumps({"format": "repro-trace",
                                    "version": 99, "count": 0}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_trace(path)


def _mangle_record(path, index, mutate):
    """Rewrite record ``index`` (0-based) through ``mutate(record)``."""
    lines = path.read_text().splitlines()
    record = json.loads(lines[1 + index])
    lines[1 + index] = json.dumps(mutate(record))
    path.write_text("\n".join(lines) + "\n")


class TestErrorReporting:
    """Malformed files name the file, line, and offending field."""

    @pytest.fixture
    def saved(self, tmp_path, trace):
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        return path

    def test_unknown_opcode_names_file_and_line(self, saved):
        def mutate(record):
            record[2] = "FROBNICATE"
            return record
        _mangle_record(saved, 1, mutate)
        with pytest.raises(ValueError,
                           match=r"line 3: unknown opcode 'FROBNICATE'"):
            load_trace(saved)

    def test_wrong_arity_names_line(self, saved):
        _mangle_record(saved, 0, lambda record: record[:9])
        with pytest.raises(ValueError, match="line 2: expected a 10-field"):
            load_trace(saved)

    def test_bad_field_type_names_field(self, saved):
        def mutate(record):
            record[1] = "not-a-pc"
            return record
        _mangle_record(saved, 2, mutate)
        with pytest.raises(ValueError, match=r"line 4: field 'pc'"):
            load_trace(saved)

    def test_bad_srcs_named(self, saved):
        def mutate(record):
            record[4] = [1, "x2"]
            return record
        _mangle_record(saved, 0, mutate)
        with pytest.raises(ValueError, match=r"field 'srcs'"):
            load_trace(saved)

    def test_seq_index_mismatch_rejected(self, saved):
        def mutate(record):
            record[0] += 5
            return record
        _mangle_record(saved, 3, mutate)
        with pytest.raises(ValueError, match=r"line 5: field 'seq'"):
            load_trace(saved)

    def test_unparseable_record_names_line(self, saved):
        lines = saved.read_text().splitlines()
        lines[2] = "{not json"
        saved.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 3: malformed JSON"):
            load_trace(saved)

    def test_excess_records_rejected(self, saved):
        lines = saved.read_text().splitlines()
        lines.append(lines[-1])          # duplicate the final record
        saved.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="more follow"):
            load_trace(saved)

    def test_bad_header_count(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(json.dumps({"format": "repro-trace", "version": 2,
                                    "count": "many"}) + "\n")
        with pytest.raises(ValueError, match="'count'"):
            load_trace(path)


class TestV1Migration:
    """v1 files (no ``meta`` header field) stay loadable forever."""

    @pytest.fixture
    def v1_path(self, tmp_path, trace):
        path = tmp_path / "v1.jsonl"
        lines = [json.dumps({"format": "repro-trace", "version": 1,
                             "name": trace.name, "count": len(trace)})]
        for i in trace:
            lines.append(json.dumps(
                [i.seq, i.pc, i.opcode.name, i.dst, list(i.srcs), i.imm,
                 i.addr, int(i.taken), i.next_pc, int(i.fault)]))
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_v1_loads_through_v2_reader(self, v1_path, trace):
        loaded = load_trace(v1_path)
        assert len(loaded) == len(trace)
        assert loaded.meta == {}
        for a, b in zip(trace, loaded):
            assert (a.seq, a.opcode, a.addr) == (b.seq, b.opcode, b.addr)

    def test_convert_rewrites_as_v2(self, v1_path, tmp_path, trace):
        from repro.isa import convert_trace_file, read_header
        dst = tmp_path / "v2.jsonl"
        summary = convert_trace_file(v1_path, dst)
        assert summary["version"] == 2 and summary["count"] == len(trace)
        header = read_header(dst)
        assert header["meta"]["converted_from"]["version"] == 1
        a = load_trace(v1_path)
        b = load_trace(dst)
        assert [repr(i) for i in a] == [repr(i) for i in b]

    def test_validate_summarises(self, v1_path, trace):
        from repro.isa import file_sha256, validate_trace_file
        summary = validate_trace_file(v1_path)
        assert summary["count"] == len(trace)
        assert summary["sha256"] == file_sha256(v1_path)


class TestRoundTripProperty:
    """Random DynInstr sequences survive a save/load round trip."""

    def test_random_traces_round_trip(self, tmp_path):
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        from repro.isa import DynInstr, Opcode, Trace

        opcodes = sorted(Opcode, key=lambda op: op.name)
        regs = st.integers(min_value=0, max_value=63)
        instr_fields = st.tuples(
            st.sampled_from(opcodes),
            st.none() | regs,                          # dst
            st.lists(regs, max_size=3),                # srcs
            st.integers(min_value=-2**31, max_value=2**31),   # imm
            st.none() | st.integers(min_value=0, max_value=2**40),  # addr
            st.booleans(),                             # taken
            st.integers(min_value=0, max_value=2**20),        # next_pc
            st.booleans(),                             # fault
        )

        @settings(max_examples=25, deadline=None,
                  suppress_health_check=[HealthCheck.function_scoped_fixture])
        @given(st.lists(instr_fields, min_size=1, max_size=40))
        def check(rows):
            instrs = [
                DynInstr(seq=index, pc=index * 2, opcode=op,
                         op_class=op.op_class, dst=dst, srcs=tuple(srcs),
                         imm=imm, addr=addr, taken=taken, next_pc=next_pc,
                         fault=fault, critical=False)
                for index, (op, dst, srcs, imm, addr, taken, next_pc,
                            fault) in enumerate(rows)]
            path = tmp_path / "prop.jsonl"
            save_trace(Trace(instrs, name="prop"), path,
                       meta={"origin": "hypothesis"})
            loaded = load_trace(path)
            assert loaded.meta == {"origin": "hypothesis"}
            assert len(loaded) == len(instrs)
            for a, b in zip(instrs, loaded):
                assert (a.seq, a.pc, a.opcode, a.dst, a.srcs, a.imm,
                        a.addr, a.taken, a.next_pc, a.fault) == \
                       (b.seq, b.pc, b.opcode, b.dst, b.srcs, b.imm,
                        b.addr, b.taken, b.next_pc, b.fault)

        check()
