"""Age matrix semantics: dispatch/remove, bit-count selection, criticality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AgeMatrix


def mask(size, *indices):
    vec = np.zeros(size, dtype=bool)
    for idx in indices:
        vec[idx] = True
    return vec


class TestDispatchRemove:
    def test_dispatch_marks_valid(self):
        age = AgeMatrix(4)
        age.dispatch(2)
        assert age.valid[2]
        assert age.occupancy() == 1

    def test_double_dispatch_rejected(self):
        age = AgeMatrix(4)
        age.dispatch(1)
        with pytest.raises(ValueError):
            age.dispatch(1)

    def test_remove_invalid_rejected(self):
        age = AgeMatrix(4)
        with pytest.raises(ValueError):
            age.remove(0)

    def test_entry_reuse_fixes_stale_age(self):
        age = AgeMatrix(4)
        age.dispatch(0)          # oldest
        age.dispatch(1)
        age.remove(0)
        age.dispatch(0)          # entry 0 now holds the *youngest*
        assert age.age_order() == [1, 0]


class TestSelection:
    def test_single_oldest(self):
        age = AgeMatrix(8)
        for entry in (3, 5, 1):   # dispatch order = age order
            age.dispatch(entry)
        grant = age.select_single_oldest(mask(8, 3, 5, 1))
        assert list(np.flatnonzero(grant)) == [3]

    def test_single_oldest_respects_request(self):
        age = AgeMatrix(8)
        for entry in (3, 5, 1):
            age.dispatch(entry)
        grant = age.select_single_oldest(mask(8, 5, 1))
        assert list(np.flatnonzero(grant)) == [5]

    def test_bit_count_selects_width_oldest(self):
        age = AgeMatrix(8)
        for entry in (6, 2, 7, 0, 4):      # age order: 6,2,7,0,4
            age.dispatch(entry)
        grant = age.select_oldest(mask(8, 6, 2, 7, 0, 4), width=3)
        assert sorted(np.flatnonzero(grant)) == [2, 6, 7]

    def test_bit_count_with_partial_request(self):
        age = AgeMatrix(8)
        for entry in (6, 2, 7, 0, 4):
            age.dispatch(entry)
        # Only 7, 0, 4 request; two grants -> the two oldest of those.
        grant = age.select_oldest(mask(8, 7, 0, 4), width=2)
        assert sorted(np.flatnonzero(grant)) == [0, 7]

    def test_fewer_requests_than_width(self):
        age = AgeMatrix(8)
        age.dispatch(5)
        grant = age.select_oldest(mask(8, 5), width=4)
        assert list(np.flatnonzero(grant)) == [5]

    def test_empty_request(self):
        age = AgeMatrix(4)
        age.dispatch(0)
        grant = age.select_oldest(np.zeros(4, dtype=bool), width=2)
        assert not grant.any()

    def test_width_one_equals_single_oldest(self):
        age = AgeMatrix(8)
        for entry in (4, 1, 6):
            age.dispatch(entry)
        req = mask(8, 4, 1, 6)
        multi = age.select_oldest(req, width=1)
        single = age.select_single_oldest(req)
        assert (multi == single).all()


class TestOldestLocation:
    def test_oldest_overall(self):
        age = AgeMatrix(8)
        for entry in (2, 6, 0):
            age.dispatch(entry)
        assert age.oldest() == 2

    def test_oldest_among_subset(self):
        age = AgeMatrix(8)
        for entry in (2, 6, 0):
            age.dispatch(entry)
        assert age.oldest(mask(8, 6, 0)) == 6

    def test_oldest_empty_returns_none(self):
        age = AgeMatrix(4)
        assert age.oldest() is None

    def test_younger_than_column_read(self):
        age = AgeMatrix(8)
        for entry in (2, 6, 0):
            age.dispatch(entry)
        younger = age.younger_than(6)
        assert sorted(np.flatnonzero(younger)) == [0]
        assert sorted(np.flatnonzero(age.younger_than(2))) == [0, 6]

    def test_older_than_row_read(self):
        age = AgeMatrix(8)
        for entry in (2, 6, 0):
            age.dispatch(entry)
        assert sorted(np.flatnonzero(age.older_than(0))) == [2, 6]


class TestCriticality:
    def test_critical_appears_older_than_noncritical(self):
        age = AgeMatrix(8)
        age.dispatch(0, critical=False)      # older in time
        age.dispatch(1, critical=True)       # younger but critical
        grant = age.select_single_oldest(mask(8, 0, 1))
        assert list(np.flatnonzero(grant)) == [1]

    def test_criticals_ordered_among_themselves(self):
        age = AgeMatrix(8)
        age.dispatch(3, critical=True)
        age.dispatch(5, critical=True)
        assert age.age_order() == [3, 5]

    def test_noncriticals_ordered_after_criticals(self):
        age = AgeMatrix(8)
        age.dispatch(0)                      # non-critical, oldest in time
        age.dispatch(1, critical=True)
        age.dispatch(2)                      # non-critical
        age.dispatch(3, critical=True)
        assert age.age_order() == [1, 3, 0, 2]

    def test_bit_count_prioritizes_criticals_then_oldest(self):
        age = AgeMatrix(8)
        age.dispatch(0)
        age.dispatch(1)
        age.dispatch(2, critical=True)
        grant = age.select_oldest(mask(8, 0, 1, 2), width=2)
        assert sorted(np.flatnonzero(grant)) == [0, 2]

    def test_remove_clears_critical_flag(self):
        age = AgeMatrix(4)
        age.dispatch(1, critical=True)
        age.remove(1)
        age.dispatch(1)      # reused as non-critical
        assert not age.critical[1]


class TestGroupOps:
    def test_dispatch_group_order(self):
        age = AgeMatrix(8)
        age.dispatch_group([4, 2, 7])
        assert age.age_order() == [4, 2, 7]

    def test_remove_group(self):
        age = AgeMatrix(8)
        age.dispatch_group([4, 2, 7])
        age.remove_group([4, 7])
        assert age.age_order() == [2]

    def test_group_equals_sequential_noncritical(self):
        """The all-non-critical fast path must land the exact state a
        scalar dispatch loop would."""
        batched, scalar = AgeMatrix(8), AgeMatrix(8)
        batched.dispatch_group([4, 2, 7], [False, False, False])
        for entry in (4, 2, 7):
            scalar.dispatch(entry)
        assert (batched.matrix.bits == scalar.matrix.bits).all()
        assert (batched.valid == scalar.valid).all()
        assert (batched.critical == scalar.critical).all()

    def test_group_equals_sequential_critical_mix(self):
        batched, scalar = AgeMatrix(8), AgeMatrix(8)
        batched.dispatch_group([1, 5, 3], [False, True, False])
        for entry, critical in ((1, False), (5, True), (3, False)):
            scalar.dispatch(entry, critical=critical)
        assert (batched.matrix.bits == scalar.matrix.bits).all()
        assert (batched.valid == scalar.valid).all()
        assert (batched.critical == scalar.critical).all()

    def test_group_duplicate_entry_rejected(self):
        age = AgeMatrix(8)
        with pytest.raises(ValueError):
            age.dispatch_group([3, 3], [False, False])
        age.dispatch(2)
        with pytest.raises(ValueError):
            age.dispatch_group([2, 4], [False, False])


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_dispatch_group_matches_sequential(data):
    """Property: after any interleaving of group dispatches (random
    criticality) and removes, the batched matrix state is identical to
    a twin driven by scalar ``dispatch`` calls."""
    size = data.draw(st.integers(min_value=2, max_value=24))
    batched, scalar = AgeMatrix(size), AgeMatrix(size)
    for _ in range(data.draw(st.integers(min_value=1, max_value=20))):
        free = [e for e in range(size) if not batched.valid[e]]
        occupied = [e for e in range(size) if batched.valid[e]]
        if free and (not occupied or data.draw(st.booleans())):
            count = data.draw(st.integers(min_value=1,
                                          max_value=len(free)))
            entries = data.draw(st.permutations(free))[:count]
            flags = [data.draw(st.booleans()) for _ in entries]
            batched.dispatch_group(entries, flags)
            for entry, critical in zip(entries, flags):
                scalar.dispatch(entry, critical=critical)
        elif occupied:
            entry = data.draw(st.sampled_from(occupied))
            batched.remove(entry)
            scalar.remove(entry)
        assert (batched.matrix.bits == scalar.matrix.bits).all()
        assert (batched.valid == scalar.valid).all()
        assert (batched.critical == scalar.critical).all()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_bit_count_matches_oracle_order(data):
    """Property: select_oldest(req, w) == the w oldest requesters by true
    dispatch order, for random dispatch/remove interleavings."""
    size = data.draw(st.integers(min_value=2, max_value=24))
    age = AgeMatrix(size)
    dispatch_time = {}
    clock = 0
    for _ in range(data.draw(st.integers(min_value=1, max_value=60))):
        occupied = [e for e in range(size) if age.valid[e]]
        free = [e for e in range(size) if not age.valid[e]]
        if free and (not occupied or data.draw(st.booleans())):
            entry = data.draw(st.sampled_from(free))
            age.dispatch(entry)
            dispatch_time[entry] = clock
            clock += 1
        elif occupied:
            entry = data.draw(st.sampled_from(occupied))
            age.remove(entry)
            del dispatch_time[entry]

    occupied = [e for e in range(size) if age.valid[e]]
    if not occupied:
        return
    req_entries = data.draw(st.lists(st.sampled_from(occupied), unique=True))
    if not req_entries:
        return
    width = data.draw(st.integers(min_value=1, max_value=size))
    req = np.zeros(size, dtype=bool)
    req[req_entries] = True

    grant = age.select_oldest(req, width)
    oracle = sorted(req_entries, key=lambda e: dispatch_time[e])[:width]
    assert sorted(np.flatnonzero(grant)) == sorted(oracle)
