"""Property tests: random programs through the full pipeline.

For arbitrary (small) generated programs, every commit policy must
retire exactly the architectural instruction stream, leave no resources
behind, and agree with the functional emulator's instruction count.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import O3Core, base_config

POLICIES = ["ioc", "orinoco", "vb", "br", "spec", "ecl", "rob"]


@st.composite
def small_programs(draw):
    """Random straight-line-with-one-loop programs."""
    b = ProgramBuilder("random")
    b.li("x1", 0)
    b.li("x2", draw(st.integers(min_value=1, max_value=5)))   # trip count
    b.li("x3", 0x1000)
    n_body = draw(st.integers(min_value=1, max_value=12))
    b.label("loop")
    for i in range(n_body):
        kind = draw(st.sampled_from(
            ["alu", "mul", "div", "load", "store", "fp"]))
        dst = f"x{10 + (i % 8)}"
        src = f"x{10 + ((i + 3) % 8)}"
        if kind == "alu":
            b.add(dst, src, "x1")
        elif kind == "mul":
            b.mul(dst, src, "x2")
        elif kind == "div":
            b.div(dst, src, "x2")
        elif kind == "load":
            offset = draw(st.integers(min_value=0, max_value=4)) * 8
            b.ld(dst, "x3", offset)
        elif kind == "store":
            offset = draw(st.integers(min_value=0, max_value=4)) * 8
            b.sd(src, "x3", offset)
        else:
            b.fadd(f"f{1 + (i % 4)}", f"f{1 + ((i + 1) % 4)}", "f1")
    b.addi("x1", "x1", 1)
    b.blt("x1", "x2", "loop")
    b.halt()
    return b.build()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(program=small_programs(), policy=st.sampled_from(POLICIES))
def test_random_program_commits_fully_and_cleanly(program, policy):
    trace = trace_program(program)
    core = O3Core(trace, base_config(commit=policy))
    stats = core.run(max_cycles=200_000)
    assert stats.committed == len(trace)
    assert not core.window and not core.ops and not core.zombies
    assert core.iq_queue.occupancy() == 0
    assert core.lsq.lq_occupancy() == 0
    assert core.lsq.sq_occupancy() == 0
    assert core.rename.int_freelist.occupancy() == 32
    assert core.rename.fp_freelist.occupancy() == 32


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(program=small_programs())
def test_policies_commit_same_instruction_count(program):
    """All policies retire the identical architectural stream."""
    trace = trace_program(program)
    counts = set()
    for policy in ("ioc", "orinoco", "vb"):
        core = O3Core(trace, base_config(commit=policy))
        counts.add(core.run(max_cycles=200_000).committed)
    assert len(counts) == 1
