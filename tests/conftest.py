"""Tier-1 test environment.

The parallel executor path is exercised on every run: unless the
caller pins ``REPRO_JOBS`` explicitly, harness runs fan out over two
spawn workers, so a plain ``pytest`` invocation covers worker pickling,
in-worker trace rebuild, and order-preserving result assembly — not
just the in-process serial path.

The on-disk result cache is redirected to a throwaway directory so
test runs stay hermetic (no reads from, or writes to, the repo's
``benchmarks/.cache/``); cache-specific tests pass their own roots.
"""

import atexit
import os
import shutil
import tempfile

os.environ.setdefault("REPRO_JOBS", "2")

_CACHE_DIR = tempfile.mkdtemp(prefix="repro-test-cache-")
os.environ.setdefault("REPRO_CACHE_DIR", _CACHE_DIR)
atexit.register(shutil.rmtree, _CACHE_DIR, True)
