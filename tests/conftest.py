"""Tier-1 test environment.

The parallel executor path is exercised on every run: unless the
caller pins ``REPRO_JOBS`` explicitly, harness runs fan out over two
spawn workers, so a plain ``pytest`` invocation covers worker pickling,
in-worker trace rebuild, and order-preserving result assembly — not
just the in-process serial path.

The on-disk result cache and the crash-bundle directory are redirected
to throwaway directories so test runs stay hermetic (no reads from, or
writes to, the repo's ``benchmarks/.cache/`` or ``benchmarks/crash/``);
cache-specific tests pass their own roots.

When the ``pytest-timeout`` plugin is installed (CI installs it; the
local environment need not), every test gets a generous global timeout
so an accidental harness hang fails the run instead of wedging it.
"""

import atexit
import os
import shutil
import tempfile

os.environ.setdefault("REPRO_JOBS", "2")

_CACHE_DIR = tempfile.mkdtemp(prefix="repro-test-cache-")
os.environ.setdefault("REPRO_CACHE_DIR", _CACHE_DIR)
atexit.register(shutil.rmtree, _CACHE_DIR, True)

_CRASH_DIR = tempfile.mkdtemp(prefix="repro-test-crash-")
os.environ.setdefault("REPRO_CRASH_DIR", _CRASH_DIR)
atexit.register(shutil.rmtree, _CRASH_DIR, True)


def pytest_configure(config):
    # applied only when pytest-timeout is available: the container
    # image does not ship it, but CI adds it for hang containment
    if config.pluginmanager.hasplugin("timeout") and \
            config.getoption("--timeout", None) is None:
        config.option.timeout = 300
        config.option.timeout_method = "thread"
