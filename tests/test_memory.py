"""Cache hierarchy, DRAM, prefetcher, TLB."""

import pytest

from repro.memory import (Cache, DRAMModel, HierarchyConfig, MemoryHierarchy,
                          StreamPrefetcher, TLB)


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache("L1", 1024, 2, hit_latency=4)
        assert not c.lookup(0x100)
        c.insert(0x100)
        assert c.lookup(0x100)
        assert c.miss_rate() == 0.5

    def test_same_line_hits(self):
        c = Cache("L1", 1024, 2, hit_latency=4, line_size=64)
        c.insert(0x100)
        assert c.lookup(0x13F)       # same 64B line
        assert not c.lookup(0x140)   # next line

    def test_lru_eviction(self):
        c = Cache("L1", 2 * 64, 2, hit_latency=1, line_size=64)  # 1 set
        c.insert(0 * 64)
        c.insert(1 * 64)
        c.lookup(0 * 64)             # 0 MRU
        victim = c.insert(2 * 64)
        assert victim == (1, False)
        assert c.contains(0)

    def test_dirty_writeback_flag(self):
        c = Cache("L1", 2 * 64, 2, hit_latency=1, line_size=64)
        c.insert(0, dirty=True)
        c.insert(64)
        victim = c.insert(128)
        assert victim == (0, True)

    def test_invalidate(self):
        c = Cache("L1", 1024, 2, hit_latency=1)
        c.insert(0x40)
        assert c.invalidate(0x40)
        assert not c.contains(0x40)
        assert not c.invalidate(0x40)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3, 1)


class TestDRAM:
    def test_fixed_latency_when_idle(self):
        d = DRAMModel(access_latency=100, banks=4)
        assert d.access(0, cycle=0) == 100

    def test_bank_conflicts_queue(self):
        d = DRAMModel(access_latency=100, banks=4)
        first = d.access(0, cycle=0)
        second = d.access(0, cycle=0)   # same bank, same time
        assert first == 100
        assert second == 200

    def test_different_banks_parallel(self):
        d = DRAMModel(access_latency=100, banks=16)
        latencies = {d.access(line * 64, 0) for line in range(4)}
        assert latencies == {100}

    def test_power_of_two_strides_spread(self):
        """The XOR-fold must spread page-strided accesses across banks."""
        d = DRAMModel(access_latency=100, banks=16)
        latencies = [d.access(i * 8192, 0) for i in range(8)]
        assert latencies.count(100) >= 4


class TestPrefetcher:
    def test_stream_detected_after_two_misses(self):
        p = StreamPrefetcher(streams=4, degree=2)
        assert p.on_miss(0 * 64) == []
        assert p.on_miss(1 * 64) == []          # direction learned
        prefetches = p.on_miss(2 * 64)
        assert prefetches == [3 * 64, 4 * 64]

    def test_descending_stream(self):
        p = StreamPrefetcher(streams=4, degree=1)
        p.on_miss(10 * 64)
        p.on_miss(9 * 64)
        assert p.on_miss(8 * 64) == [7 * 64]

    def test_random_misses_never_prefetch(self):
        p = StreamPrefetcher(streams=4, degree=2)
        for line in (5, 90, 17, 200, 3):
            assert p.on_miss(line * 64) == []

    def test_stream_capacity_bounded(self):
        p = StreamPrefetcher(streams=2, degree=1)
        for line in range(0, 100, 10):
            p.on_miss(line * 64)
        assert len(p._streams) <= 2


class TestTLB:
    def test_miss_then_hit(self):
        t = TLB(entries=4, walk_latency=30)
        assert t.translate(0x1000).latency == 30
        assert t.translate(0x1008).latency == 0   # same page

    def test_capacity_eviction(self):
        t = TLB(entries=2, page_size=4096)
        t.translate(0 * 4096)
        t.translate(1 * 4096)
        t.translate(2 * 4096)
        assert t.translate(0 * 4096).latency == 30  # evicted

    def test_fault_flag(self):
        t = TLB()
        result = t.translate(0x2000, fault=True)
        assert result.fault
        assert t.faults == 1


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy()
        first = h.load(0x100, 0)
        assert first > h.config.l1_latency      # cold miss
        assert h.load(0x100, first + 1) == h.config.l1_latency

    def test_miss_fills_all_levels(self):
        h = MemoryHierarchy()
        h.load(0x4000, 0)
        assert h.l1.contains(0x4000)
        assert h.l2.contains(0x4000)
        assert h.llc.contains(0x4000)

    def test_mshr_exhaustion_returns_none(self):
        config = HierarchyConfig(mshrs=2, prefetch_streams=0)
        h = MemoryHierarchy(config)
        assert h.load(0x10000, 0) is not None
        assert h.load(0x20000, 0) is not None
        assert h.load(0x30000, 0) is None
        assert h.mshr_stalls == 1

    def test_pending_fill_merges(self):
        h = MemoryHierarchy()
        first = h.load(0x8000, 0)
        merged = h.load(0x8000, 5)
        assert merged <= first

    def test_store_write_allocates_through_mshr(self):
        h = MemoryHierarchy()
        latency = h.store(0x9000, 0)
        assert latency == h.config.l1_latency   # absorbed by MSHR
        assert h.l1.contains(0x9000)

    def test_store_mshr_full_returns_none(self):
        config = HierarchyConfig(mshrs=1, prefetch_streams=0)
        h = MemoryHierarchy(config)
        h.load(0x10000, 0)
        assert h.store(0x20000, 0) is None

    def test_sequential_loads_trigger_prefetch(self):
        h = MemoryHierarchy()
        for i in range(6):
            h.load(i * 64, i * 10)
        assert h.prefetcher.issued > 0

    def test_stats_shape(self):
        h = MemoryHierarchy()
        h.load(0, 0)
        stats = h.stats()
        assert set(stats) == {"l1_miss_rate", "l2_miss_rate",
                              "llc_miss_rate", "dram_requests",
                              "mshr_stalls", "prefetches_issued"}
