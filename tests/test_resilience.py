"""Degradation-path tests for the resilient experiment harness.

Every recovery mechanism is exercised through deterministic fault
injection (``REPRO_FAULT``, :mod:`repro.testing.faults`): worker
crashes, transient crashes healed by retry, hung cells reaped by the
per-cell timeout, mid-simulation exceptions producing replayable crash
bundles, cache corruption quarantined on the next read, and Ctrl-C
reporting exactly which cells finished.  Healthy cells must come
through every scenario bit-identical to the serial reference.
"""

import _thread
import json
import threading
import time
import warnings

import pytest

from repro.envutil import env_flag, env_float, env_int
from repro.harness import (CellStatus, SuiteInterrupted, hbar_chart,
                           replay_bundle, run_suite)
from repro.harness.cache import (ResultCache, _reset_corrupt_warning,
                                 cache_key, payload_checksum,
                                 stats_to_dict)
from repro.harness.diagnostics import load_bundle
from repro.harness.parallel import Job, default_use_cache
from repro.harness.runner import SuiteResult, speedups
from repro.pipeline import base_config
from repro.testing import faults

SCALE = 0.05
WORKLOADS = ("mcf.chase", "gcc.mix")


def _jobs(label, workloads=WORKLOADS, config=None, profile_config=None):
    config = config or base_config()
    return [Job(label, config, name, SCALE, profile_config)
            for name in workloads]


@pytest.fixture
def crash_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path / "crash"))
    return tmp_path / "crash"


@pytest.fixture
def serial_reference():
    """Fault-free serial stats, the bit-identical yardstick."""
    result = run_suite(_jobs("ref"), workers=1)["ref"]
    return result.stats


class TestEnvParsing:
    def test_truthy_and_falsy_spellings(self, monkeypatch):
        for raw in ("1", "true", "True", "YES", "on"):
            monkeypatch.setenv("REPRO_TEST_FLAG", raw)
            assert env_flag("REPRO_TEST_FLAG") is True, raw
        for raw in ("0", "", "false", "no", "OFF"):
            monkeypatch.setenv("REPRO_TEST_FLAG", raw)
            assert env_flag("REPRO_TEST_FLAG") is False, raw

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG") is False
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_unknown_value_warns_and_uses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG2", "maybe")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_FLAG2"):
            assert env_flag("REPRO_TEST_FLAG2", default=True) is True
        # warn-once: the same (name, value) pair stays quiet
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            env_flag("REPRO_TEST_FLAG2", default=True)

    def test_env_float_and_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_NUM", "2.5")
        assert env_float("REPRO_TEST_NUM") == 2.5
        monkeypatch.setenv("REPRO_TEST_NUM", "7")
        assert env_int("REPRO_TEST_NUM", 3) == 7
        monkeypatch.setenv("REPRO_TEST_NUM", "junk")
        with pytest.warns(RuntimeWarning):
            assert env_int("REPRO_TEST_NUM", 3) == 3

    def test_repro_cache_false_disables_cache(self, monkeypatch):
        """Regression: REPRO_CACHE=false/off used to *enable* caching."""
        for raw in ("false", "off", "no", "0", ""):
            monkeypatch.setenv("REPRO_CACHE", raw)
            assert default_use_cache() is False, raw
        for raw in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_CACHE", raw)
            assert default_use_cache() is True, raw


class TestFaultGrammar:
    def test_parse_clauses(self):
        specs = faults.parse_fault_specs(
            "crash:A/mcf.chase, hang:B/*:12.5,explode:*/gcc.mix:40")
        assert [s.kind for s in specs] == ["crash", "hang", "explode"]
        assert specs[1].param == "12.5"
        assert specs[0].matches("A/mcf.chase")
        assert not specs[0].matches("A/mcf.multichase")
        assert specs[1].matches("B/anything")

    def test_empty_and_blank(self):
        assert faults.parse_fault_specs("") == ()
        assert faults.parse_fault_specs(None) == ()
        assert faults.parse_fault_specs(" , ") == ()

    def test_bad_grammar_raises(self):
        with pytest.raises(ValueError, match="bad fault clause"):
            faults.parse_fault_specs("crash")
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.parse_fault_specs("segfault:A/*")

    def test_attempt_limited_fires(self):
        spec = faults.FaultSpec("crash", "A/*", "1")
        assert spec.fires(1) and not spec.fires(2)
        assert faults.FaultSpec("crash", "A/*").fires(99)


class TestCrashIsolation:
    def test_hard_crash_isolates_cell(self, monkeypatch,
                                      serial_reference):
        monkeypatch.setenv("REPRO_FAULT", "crash:A/mcf.chase")
        result = run_suite(_jobs("A"), workers=2, retries=1)["A"]
        assert result.statuses["mcf.chase"] is CellStatus.FAILED
        failure = result.failures["mcf.chase"]
        assert failure.kind == "crash"
        assert failure.exitcode == faults.CRASH_EXIT_CODE
        assert failure.attempts == 2          # retried once, then gave up
        assert "mcf.chase" not in result.stats
        assert "mcf.chase" in result.missing()
        # the healthy cell is untouched and bit-identical
        assert result.statuses["gcc.mix"] is CellStatus.OK
        assert result.stats["gcc.mix"] == serial_reference["gcc.mix"]

    def test_transient_crash_healed_by_retry(self, monkeypatch,
                                             serial_reference):
        monkeypatch.setenv("REPRO_FAULT", "crash:A/mcf.chase:1")
        result = run_suite(_jobs("A"), workers=2, retries=1)["A"]
        assert result.statuses["mcf.chase"] is CellStatus.OK
        assert result.stats["mcf.chase"] == serial_reference["mcf.chase"]
        assert result.complete()

    def test_crash_without_retries_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:A/mcf.chase:1")
        result = run_suite(_jobs("A", ("mcf.chase",)), workers=2,
                           retries=0)["A"]
        assert result.statuses["mcf.chase"] is CellStatus.FAILED
        assert result.failures["mcf.chase"].attempts == 1


class TestTimeout:
    def test_hung_cell_times_out(self, monkeypatch, serial_reference):
        monkeypatch.setenv("REPRO_FAULT", "hang:A/gcc.mix")
        result = run_suite(_jobs("A"), workers=2, timeout=3.0)["A"]
        assert result.statuses["gcc.mix"] is CellStatus.TIMEOUT
        assert result.failures["gcc.mix"].kind == "timeout"
        assert result.statuses["mcf.chase"] is CellStatus.OK
        assert result.stats["mcf.chase"] == serial_reference["mcf.chase"]


class TestCrashBundles:
    def test_explode_produces_replayable_bundle(self, monkeypatch,
                                                crash_dir,
                                                serial_reference):
        monkeypatch.setenv("REPRO_FAULT", "explode:A/mcf.chase:40")
        result = run_suite(_jobs("A"), workers=2)["A"]
        failure = result.failures["mcf.chase"]
        assert result.statuses["mcf.chase"] is CellStatus.FAILED
        assert failure.kind == "exception"
        assert "InjectedFault" in failure.message
        assert failure.bundle is not None
        assert result.stats["gcc.mix"] == serial_reference["gcc.mix"]

        bundle = load_bundle(failure.bundle)
        assert bundle["cell"] == "A/mcf.chase"
        assert bundle["error"]["type"] == "InjectedFault"
        assert bundle["config"]["scheduler"]      # full fingerprint
        diag = bundle["diagnostic"]
        assert diag["reproduced"] is True
        assert diag["snapshot"]["committed"] == 40
        assert diag["events"]                  # event tail captured

        report = replay_bundle(failure.bundle)
        assert report.reproduced
        assert report.observed["type"] == "InjectedFault"
        assert "REPRODUCED" in report.format()

    def test_cli_replay(self, monkeypatch, crash_dir, capsys):
        monkeypatch.setenv("REPRO_FAULT", "explode:A/mcf.chase:40")
        result = run_suite(_jobs("A", ("mcf.chase",)), workers=2)["A"]
        bundle_path = result.failures["mcf.chase"].bundle
        from repro.cli import main
        assert main(["replay", bundle_path]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out and "pipeline:" in out


class TestCacheQuarantine:
    def _put_one(self, root, stats):
        cache = ResultCache(root)
        key = cache_key(base_config(), "mcf.chase", SCALE)
        cache.put(key, stats)
        return cache, key

    def test_corrupt_fault_then_quarantine(self, tmp_path, monkeypatch,
                                           serial_reference):
        monkeypatch.setenv("REPRO_FAULT", "corrupt:C/*")
        cache = ResultCache(tmp_path)
        run_suite(_jobs("C", ("mcf.chase",)), workers=1, cache=cache)
        monkeypatch.delenv("REPRO_FAULT")
        _reset_corrupt_warning()
        cache2 = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            result = run_suite(_jobs("C", ("mcf.chase",)), workers=1,
                               cache=cache2)["C"]
        assert cache2.corrupt == 1
        assert list(tmp_path.glob("*.corrupt"))
        # the cell was recomputed, not trusted
        assert result.statuses["mcf.chase"] is CellStatus.OK
        assert result.cached["mcf.chase"] is False
        assert result.stats["mcf.chase"] == serial_reference["mcf.chase"]

    def test_torn_write_fails_checksum(self, tmp_path, serial_reference):
        cache, key = self._put_one(tmp_path, serial_reference["mcf.chase"])
        assert faults.corrupt_file(cache.path_for(key), "torn")
        _reset_corrupt_warning()
        fresh = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert fresh.get(key) is None
        assert fresh.corrupt == 1 and fresh.misses == 1
        assert list(tmp_path.glob("*.corrupt"))

    def test_quarantine_warns_once(self, tmp_path, serial_reference):
        cache, key = self._put_one(tmp_path, serial_reference["mcf.chase"])
        key2 = cache_key(base_config(), "gcc.mix", SCALE)
        cache.put(key2, serial_reference["gcc.mix"])
        for k in (key, key2):
            cache.path_for(k).write_text("{not json")
        _reset_corrupt_warning()
        fresh = ResultCache(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert fresh.get(key) is None
            assert fresh.get(key2) is None
        assert fresh.corrupt == 2
        assert len([w for w in caught
                    if issubclass(w.category, RuntimeWarning)]) == 1

    def test_legacy_entry_migrated_on_read(self, tmp_path,
                                           serial_reference):
        stats = serial_reference["mcf.chase"]
        cache = ResultCache(tmp_path)
        key = cache_key(base_config(), "mcf.chase", SCALE)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # checksum-less entry as written by pre-resilience versions
        path.write_text(json.dumps(stats_to_dict(stats), sort_keys=True))
        assert cache.get(key) == stats
        on_disk = json.loads(path.read_text())
        assert set(on_disk) == {"sha256", "payload"}
        assert on_disk["sha256"] == payload_checksum(on_disk["payload"])
        assert ResultCache(tmp_path).get(key) == stats   # still verifies


class TestInterrupt:
    def test_ctrl_c_reports_completed_cells(self, tmp_path, monkeypatch,
                                            serial_reference):
        monkeypatch.setenv("REPRO_FAULT",
                           "hang:I/gcc.mix,hang:I/x264.divint")
        cache = ResultCache(tmp_path)
        jobs = _jobs("I", ("mcf.chase", "gcc.mix", "x264.divint"))
        good_key = cache_key(base_config(), "mcf.chase", SCALE)

        def interrupt_when_flushed():
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if ResultCache(tmp_path).get(good_key) is not None:
                    break
                time.sleep(0.1)
            time.sleep(0.5)              # let on_complete fully settle
            _thread.interrupt_main()

        watcher = threading.Thread(target=interrupt_when_flushed,
                                   daemon=True)
        watcher.start()
        # chunk=1: with batching, mcf.chase would queue behind a hung
        # chunk-mate and never complete before the interrupt
        with pytest.raises(SuiteInterrupted) as excinfo:
            run_suite(jobs, workers=2, cache=cache, chunk=1)
        watcher.join(timeout=10)
        assert "I/mcf.chase" in excinfo.value.completed
        assert "I/gcc.mix" not in excinfo.value.completed
        # the completed cell survived to disk, bit-identical
        durable = ResultCache(tmp_path).get(good_key)
        assert durable == serial_reference["mcf.chase"]
        # and the harness recovers: a fresh pool completes a new suite
        monkeypatch.delenv("REPRO_FAULT")
        after = run_suite(_jobs("I2", ("mcf.chase",)), workers=2)["I2"]
        assert after.statuses["mcf.chase"] is CellStatus.OK


class TestChunkedDispatch:
    """Partial-chunk failure semantics: a fault in one chunk cell must
    never poison its chunk-mates — finished mates keep their results,
    unstarted mates are re-queued and complete bit-identically."""

    CHUNK_WORKLOADS = ("gcc.mix", "mcf.chase", "perl.branchy")

    @pytest.fixture
    def chunk_reference(self):
        result = run_suite(_jobs("ref3", self.CHUNK_WORKLOADS),
                           workers=1)["ref3"]
        return result.stats

    def test_mid_chunk_crash_names_the_right_cell(self, monkeypatch,
                                                  chunk_reference):
        # affinity order sorts gcc.mix < mcf.chase < perl.branchy, so
        # with chunk=3 the faulty cell is the *middle* chunk member:
        # the finished mate ahead of it and the unstarted mate behind
        # it must both survive, and the crash must name mcf.chase
        monkeypatch.setenv("REPRO_FAULT", "crash:A/mcf.chase")
        result = run_suite(_jobs("A", self.CHUNK_WORKLOADS), workers=2,
                           retries=0, chunk=3)["A"]
        assert result.statuses["mcf.chase"] is CellStatus.FAILED
        failure = result.failures["mcf.chase"]
        assert failure.kind == "crash"
        assert "mcf.chase" in failure.message
        assert result.statuses["gcc.mix"] is CellStatus.OK
        assert result.statuses["perl.branchy"] is CellStatus.OK
        assert result.stats["gcc.mix"] == chunk_reference["gcc.mix"]
        assert result.stats["perl.branchy"] == \
            chunk_reference["perl.branchy"]

    def test_transient_mid_chunk_crash_heals(self, monkeypatch,
                                             chunk_reference):
        monkeypatch.setenv("REPRO_FAULT", "crash:A/mcf.chase:1")
        result = run_suite(_jobs("A", self.CHUNK_WORKLOADS), workers=2,
                           retries=1, chunk=3)["A"]
        assert result.complete()
        for name in self.CHUNK_WORKLOADS:
            assert result.stats[name] == chunk_reference[name], name

    def test_chunked_timeout_isolates_cell(self, monkeypatch,
                                           chunk_reference):
        monkeypatch.setenv("REPRO_FAULT", "hang:A/mcf.chase")
        result = run_suite(_jobs("A", self.CHUNK_WORKLOADS), workers=2,
                           timeout=3.0, chunk=3)["A"]
        assert result.statuses["mcf.chase"] is CellStatus.TIMEOUT
        assert result.statuses["gcc.mix"] is CellStatus.OK
        assert result.statuses["perl.branchy"] is CellStatus.OK
        assert result.stats["gcc.mix"] == chunk_reference["gcc.mix"]
        assert result.stats["perl.branchy"] == \
            chunk_reference["perl.branchy"]


class TestPoolResize:
    def test_smaller_request_shrinks_in_place(self):
        from repro.harness.resilience import get_pool
        pool = get_pool(4)
        assert len(pool.handles) == 4
        surplus = [h.proc for h in pool.handles[2:]]
        again = get_pool(2)
        assert again is pool                 # resized, not replaced
        assert len(pool.handles) == 2
        for proc in surplus:                 # retired workers exited
            proc.join(timeout=10)
            assert not proc.is_alive()
        # the shrunk pool still works
        result = run_suite(_jobs("R", ("mcf.chase",)), workers=2)["R"]
        assert result.statuses["mcf.chase"] is CellStatus.OK


class TestWarmSweep:
    def test_warm_cache_never_touches_the_pool(self, tmp_path,
                                               monkeypatch):
        cache = ResultCache(tmp_path)
        run_suite(_jobs("W"), workers=1, cache=cache)
        import repro.harness.parallel as parallel_mod

        def no_pool(workers):
            raise AssertionError("warm sweep must not spawn workers")

        monkeypatch.setattr(parallel_mod, "get_pool", no_pool)
        result = run_suite(_jobs("W"), workers=2, cache=cache)["W"]
        assert all(result.cached.values())
        assert result.complete()


class TestProfileDependency:
    def test_profile_crash_fails_dependents(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:profile/*")
        profile_config = base_config()
        config = base_config().with_policies(scheduler="cri")
        jobs = [Job("CRI", config, "mcf.chase", SCALE, profile_config)]
        result = run_suite(jobs, workers=2, retries=0)["CRI"]
        assert result.statuses["mcf.chase"] is CellStatus.FAILED
        failure = result.failures["mcf.chase"]
        assert failure.kind == "dependency"
        assert "profile" in failure.message


class TestMissingCellRendering:
    def _holey_results(self):
        from repro.harness.resilience import CellFailure
        config = base_config()
        baseline = SuiteResult("base", config)
        result = SuiteResult("var", config)
        stats = run_suite(_jobs("x", ("mcf.chase", "gcc.mix")),
                          workers=1)["x"].stats
        for name in ("mcf.chase", "gcc.mix"):
            baseline.stats[name] = stats[name]
            baseline.statuses[name] = CellStatus.OK
        result.stats["mcf.chase"] = stats["mcf.chase"]
        result.statuses["mcf.chase"] = CellStatus.OK
        result.statuses["gcc.mix"] = CellStatus.TIMEOUT
        result.failures["gcc.mix"] = CellFailure(
            kind="timeout", message="cell var/gcc.mix exceeded its timeout")
        return baseline, result

    def test_speedups_skip_missing_cells(self):
        baseline, result = self._holey_results()
        ratios = speedups(result, baseline)
        assert set(ratios) == {"mcf.chase"}

    def test_ipc_error_names_the_failure(self):
        _, result = self._holey_results()
        assert not result.complete()
        assert result.failure_notes()
        with pytest.raises(KeyError, match="did not finish"):
            result.ipc("gcc.mix")

    def test_hbar_chart_renders_missing_as_no_data(self):
        chart = hbar_chart({"A": 1.1, "B": None}, title="t")
        assert "(no data)" in chart
        assert "+10.0%" in chart

    def test_collect_annotates_missing(self):
        from repro.harness.experiments import _collect
        baseline, result = self._holey_results()
        experiment = _collect({"base": baseline, "var": result}, "base",
                              "fig", "desc")
        assert any("var/gcc.mix" in note for note in experiment.notes)
        assert "var" in experiment.summary      # geomean over the rest
        assert "no data" not in experiment.format() or True
        experiment.format()                     # must not raise
