"""Functional unit pool: per-cycle issue limits, unpipelined dividers."""

import pytest

from repro.isa import OpClass
from repro.pipeline import FUPool, FUType, fu_type_for


@pytest.fixture
def pool():
    return FUPool({FUType.ALU: 2, FUType.MULDIV: 1, FUType.FPU: 1,
                   FUType.LOAD: 1, FUType.STORE: 1})


class TestMapping:
    @pytest.mark.parametrize("cls,fu", [
        (OpClass.INT_ALU, FUType.ALU), (OpClass.BRANCH, FUType.ALU),
        (OpClass.JUMP, FUType.ALU), (OpClass.SYS, FUType.ALU),
        (OpClass.INT_MUL, FUType.MULDIV), (OpClass.INT_DIV, FUType.MULDIV),
        (OpClass.FP_ADD, FUType.FPU), (OpClass.FP_DIV, FUType.FPU),
        (OpClass.LOAD, FUType.LOAD), (OpClass.STORE, FUType.STORE)])
    def test_class_to_fu(self, cls, fu):
        assert fu_type_for(cls) is fu


class TestPerCycleLimits:
    def test_issue_width_per_type(self, pool):
        pool.begin_cycle(0)
        assert pool.acquire(OpClass.INT_ALU, 1)
        assert pool.acquire(OpClass.INT_ALU, 1)
        assert not pool.acquire(OpClass.INT_ALU, 1)   # only 2 ALUs

    def test_limits_reset_each_cycle(self, pool):
        pool.begin_cycle(0)
        pool.acquire(OpClass.INT_ALU, 1)
        pool.acquire(OpClass.INT_ALU, 1)
        pool.begin_cycle(1)
        assert pool.available(FUType.ALU) == 2

    def test_availability_vector(self, pool):
        pool.begin_cycle(0)
        pool.acquire(OpClass.LOAD, 4)
        vec = pool.availability_vector()
        assert vec[FUType.LOAD] == 0
        assert vec[FUType.ALU] == 2


class TestUnpipelined:
    def test_divider_blocks_for_latency(self, pool):
        pool.begin_cycle(0)
        assert pool.acquire(OpClass.INT_DIV, 12)
        pool.begin_cycle(5)
        assert pool.available(FUType.MULDIV) == 0     # still dividing
        assert not pool.acquire(OpClass.INT_MUL, 3)
        pool.begin_cycle(13)
        assert pool.available(FUType.MULDIV) == 1

    def test_pipelined_mul_does_not_block(self, pool):
        pool.begin_cycle(0)
        assert pool.acquire(OpClass.INT_MUL, 3)
        pool.begin_cycle(1)
        assert pool.acquire(OpClass.INT_MUL, 3)       # new op each cycle

    def test_fp_div_unpipelined(self, pool):
        pool.begin_cycle(0)
        assert pool.acquire(OpClass.FP_DIV, 12)
        pool.begin_cycle(1)
        assert not pool.acquire(OpClass.FP_ADD, 3)    # FPU busy
