"""Lane-batched engine: stack storage, lockstep driver, harness wiring.

The contract under test: any lane width is a storage-layout/throughput
optimisation that is *field-identical* per cell to the serial engine —
including mid-batch retirement and refill, a deadlocking cell isolated
from its batch-mates, and the worker-pool composition.  The scalar
path (``slot=None`` everywhere) must be byte-for-byte untouched.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.harness.parallel as parallel
from repro.core import LaneStack, check
from repro.harness import default_lanes, run_config, \
    run_config_with_criticality
from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import (DeadlockError, LaneBatch, LaneCell,
                            LaneDivergence, O3Core, base_config)
from repro.pipeline.lanes import crosscheck
from repro.workloads import build_suite, build_trace

SCALE = 0.1


def fields(stats):
    return dataclasses.asdict(stats)


@pytest.fixture(scope="module")
def trace():
    return build_trace("gcc.mix", SCALE)


@pytest.fixture(scope="module")
def traces():
    return build_suite(SCALE, ["gcc.mix", "x264.divint", "mcf.chase"])


# -- the stack -------------------------------------------------------------

class TestLaneStack:
    def test_slot_views_alias_the_stack(self):
        stack = LaneStack(2, 4, 8)
        slot = stack.slot(1)
        slot.iq_age.bit.bits[2, 3] = True
        slot.merged.blockers[5] = 7
        slot.wakeup.pending[0] = 3
        assert stack.iq_age_bits[1, 2, 3]
        assert stack.blockers[1, 5] == 7
        assert stack.wakeup_pending[1, 0] == 3

    def test_no_cross_lane_aliasing(self):
        stack = LaneStack(3, 4, 8)
        slot = stack.slot(0)
        slot.iq_age.bit.bits[...] = True
        slot.wakeup.valid[...] = True
        slot.merged.spec[...] = True
        slot.rob_scratch[...] = True
        for lane in (1, 2):
            other = stack.slot(lane)
            assert not other.iq_age.bit.bits.any()
            assert not other.wakeup.valid.any()
            assert not other.merged.spec.any()
            assert not other.rob_scratch.any()

    def test_lane_out_of_range(self):
        stack = LaneStack(2, 4, 8)
        with pytest.raises(IndexError):
            stack.slot(2)
        with pytest.raises(IndexError):
            stack.slot(-1)

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            LaneStack(0, 4, 8)
        with pytest.raises(ValueError):
            LaneStack(2, 0, 8)

    def test_occupancy_reductions(self):
        stack = LaneStack(2, 4, 8)
        stack.iq_age_valid[0, :2] = True
        stack.rob_age_valid[1, :5] = True
        assert list(stack.iq_occupancy()) == [2, 0]
        assert list(stack.rob_occupancy()) == [0, 5]

    def test_verify_catches_corrupted_counter(self):
        stack = LaneStack(2, 4, 8)
        stack.verify([0, 1])                      # clean stack passes
        stack.wakeup_valid[1, 2] = True
        stack.wakeup_pending[1, 2] = 9            # bits say 0
        stack.verify([0])                         # lane 0 still clean
        with pytest.raises(check.CheckError, match="lane 1"):
            stack.verify([0, 1])

    def test_verify_catches_corrupted_blockers(self):
        stack = LaneStack(1, 4, 8)
        stack.rob_age_valid[0, 3] = True
        stack.blockers[0, 3] = 2                  # no SPEC bits set
        with pytest.raises(check.CheckError, match="blockers"):
            stack.verify([0])


# -- slot-backed cores -----------------------------------------------------

class TestSlotBackedCore:
    def test_identical_to_owned_storage(self, trace):
        config = base_config(scheduler="orinoco", commit="orinoco")
        want = fields(O3Core(trace, config).run())
        stack = LaneStack(2, config.iq_size, config.rob_size)
        got = fields(O3Core(trace, config, slot=stack.slot(1)).run())
        assert got == want

    def test_slot_reuse_resets_state(self, trace):
        """A retired lane's successor must see pristine planes."""
        config = base_config()
        stack = LaneStack(1, config.iq_size, config.rob_size)
        O3Core(trace, config, slot=stack.slot(0)).run()
        other = build_trace("x264.divint", SCALE)
        want = fields(O3Core(other, config).run())
        got = fields(O3Core(other, config, slot=stack.slot(0)).run())
        assert got == want

    def test_shape_mismatch_rejected(self, trace):
        config = base_config()
        stack = LaneStack(1, config.iq_size + 1, config.rob_size)
        with pytest.raises(ValueError, match="does not match config"):
            O3Core(trace, config, slot=stack.slot(0))


# -- the lockstep driver ---------------------------------------------------

class TestLaneBatch:
    def test_identity_with_refill(self, traces):
        """3 cells through 2 lanes: the third refills a retired slot;
        every cell is field-identical to its own serial run."""
        config = base_config(scheduler="orinoco", commit="orinoco")
        want = {name: fields(O3Core(t, config).run())
                for name, t in traces.items()}
        batch = LaneBatch(2, config.iq_size, config.rob_size)
        cells = [LaneCell(name, t, config) for name, t in traces.items()]
        report = batch.run(cells)
        assert len(report.outcomes) == 3
        for outcome in report.outcomes:
            assert outcome.error is None and not outcome.timed_out
            assert fields(outcome.stats) == want[outcome.index]
        assert report.steps > 0
        assert 1.0 <= report.mean_active() <= 2.0

    def test_deadlock_in_one_lane_is_isolated(self, traces):
        """A cell that exhausts its budget retires with the error;
        batch-mates finish with untouched, serial-identical stats."""
        config = base_config()
        names = list(traces)
        cells = [LaneCell(name, traces[name], config) for name in names]
        cells[1].max_cycles = 1                   # guaranteed budget blow
        batch = LaneBatch(2, config.iq_size, config.rob_size)
        report = batch.run(cells)
        by_index = {o.index: o for o in report.outcomes}
        dead = by_index[names[1]]
        assert isinstance(dead.error, DeadlockError)
        assert "budget" in str(dead.error)
        assert "DeadlockError" in dead.error_tb
        for name in (names[0], names[2]):
            outcome = by_index[name]
            assert outcome.stats is not None
            assert fields(outcome.stats) == \
                fields(O3Core(traces[name], config).run())

    def test_cooperative_timeout(self, trace):
        config = base_config()
        batch = LaneBatch(2, config.iq_size, config.rob_size)
        report = batch.run([LaneCell("a", trace, config)], timeout=0.0)
        (outcome,) = report.outcomes
        assert outcome.timed_out and outcome.stats is None

    def test_incompatible_cell_rejected(self, trace):
        config = base_config()
        batch = LaneBatch(2, config.iq_size + 1, config.rob_size)
        with pytest.raises(ValueError, match="not compatible"):
            batch.run([LaneCell("a", trace, config)])

    def test_on_cell_fires_per_retirement(self, traces):
        config = base_config()
        seen = []
        batch = LaneBatch(2, config.iq_size, config.rob_size)
        batch.run([LaneCell(n, t, config) for n, t in traces.items()],
                  on_cell=lambda o: seen.append(o.index))
        assert sorted(seen) == sorted(traces)

    def test_crosscheck_accepts_and_rejects(self, trace):
        config = base_config()
        cell = LaneCell("a", trace, config)
        stats = O3Core(trace, config).run()
        crosscheck(cell, stats)                   # identical: passes
        stats.committed += 1
        with pytest.raises(LaneDivergence, match="committed"):
            crosscheck(cell, stats)

    def test_batched_verify_runs_under_check(self, trace, monkeypatch):
        """REPRO_CHECK=1 wires the vectorised stack verification into
        the lockstep loop (every _VERIFY_EVERY iterations)."""
        from repro.pipeline import lanes as lanes_mod
        check.set_enabled(True)
        try:
            config = base_config()
            batch = LaneBatch(2, config.iq_size, config.rob_size)
            calls = []
            original = batch.stack.verify
            monkeypatch.setattr(
                batch.stack, "verify",
                lambda active: calls.append(1) or original(active))
            monkeypatch.setattr(lanes_mod, "_VERIFY_EVERY", 8)
            batch.run([LaneCell("a", trace, config)])
            assert calls
        finally:
            check.reset()


# -- property test: random programs x random lane groupings ----------------

@st.composite
def tiny_programs(draw):
    """Random short loops, small enough for many lane permutations."""
    b = ProgramBuilder("lane-prop")
    b.li("x1", 0)
    b.li("x2", draw(st.integers(min_value=1, max_value=3)))
    b.li("x3", 0x1000)
    b.label("loop")
    for i in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["alu", "mul", "load", "store"]))
        dst = f"x{10 + (i % 6)}"
        src = f"x{10 + ((i + 2) % 6)}"
        if kind == "alu":
            b.add(dst, src, "x1")
        elif kind == "mul":
            b.mul(dst, src, "x2")
        elif kind == "load":
            b.ld(dst, "x3", draw(st.integers(0, 3)) * 8)
        else:
            b.sd(src, "x3", draw(st.integers(0, 3)) * 8)
    b.addi("x1", "x1", 1)
    b.blt("x1", "x2", "loop")
    b.halt()
    return b.build()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(data=st.data())
def test_property_lane_batches_match_serial(data):
    """Any grouping of random tiny cells into any lane width — with
    optional mid-batch retirement (more cells than lanes) and an
    optional deadlocked lane — is field-identical to serial per cell."""
    n_cells = data.draw(st.integers(min_value=2, max_value=5),
                        label="n_cells")
    lanes = data.draw(st.integers(min_value=2, max_value=4), label="lanes")
    programs = [data.draw(tiny_programs(), label=f"program{i}")
                for i in range(n_cells)]
    commits = [data.draw(st.sampled_from(["ioc", "orinoco"]),
                         label=f"commit{i}") for i in range(n_cells)]
    dead = data.draw(
        st.one_of(st.none(), st.integers(0, n_cells - 1)), label="dead")
    config = base_config()
    cells, want = [], {}
    for i, program in enumerate(programs):
        trace = trace_program(program)
        cell_config = base_config(commit=commits[i])
        cell = LaneCell(i, trace, cell_config, max_cycles=200_000)
        if dead == i:
            cell.max_cycles = 1
        else:
            want[i] = fields(O3Core(trace, cell_config).run(200_000))
        cells.append(cell)
    batch = LaneBatch(lanes, config.iq_size, config.rob_size)
    report = batch.run(cells)
    assert len(report.outcomes) == n_cells
    for outcome in report.outcomes:
        if outcome.index == dead:
            assert isinstance(outcome.error, DeadlockError)
        else:
            assert fields(outcome.stats) == want[outcome.index], \
                f"cell {outcome.index} diverged (lanes={lanes})"


# -- harness wiring --------------------------------------------------------

class TestHarnessWiring:
    def test_default_lanes_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LANES", raising=False)
        assert default_lanes() == 1
        monkeypatch.setenv("REPRO_LANES", "6")
        assert default_lanes() == 6
        monkeypatch.setenv("REPRO_LANES", "0")
        assert default_lanes() == 1
        monkeypatch.setenv("REPRO_LANES", "junk")
        assert default_lanes() == 1

    def test_repro_check_samples_a_crosscheck(self, traces, monkeypatch):
        """REPRO_CHECK=1 pays for one serial re-run per lane batch and
        diffs it against the lane result."""
        calls = []
        original = parallel.crosscheck
        monkeypatch.setattr(parallel, "crosscheck",
                            lambda cell, stats:
                            calls.append(cell.index) or
                            original(cell, stats))
        check.set_enabled(True)
        try:
            result = run_config("chk", base_config(), traces,
                                workers=1, use_cache=False, lanes=2)
        finally:
            check.reset()
        assert calls, "no sampled cross-check ran under REPRO_CHECK=1"
        assert result.lane_batches

    def test_lane_failures_are_annotated_holes(self, traces, monkeypatch):
        """In-process lane mode keeps the worker-path failure contract:
        a deadlocked cell is a typed hole, batch-mates complete."""
        from repro.harness.resilience import CellStatus
        # force one cell to blow its budget by shrinking max_cycles on
        # the LaneCell the harness builds for it
        original_cell = parallel.LaneCell

        def tiny_first(index, trace, config, *args, **kwargs):
            cell = original_cell(index, trace, config, *args, **kwargs)
            if getattr(trace, "name", "") == "mcf.chase":
                cell.max_cycles = 1
            return cell

        monkeypatch.setattr(parallel, "LaneCell", tiny_first)
        result = run_config("iso", base_config(), traces,
                            workers=1, use_cache=False, lanes=2)
        assert result.statuses["mcf.chase"] is CellStatus.FAILED
        assert "DeadlockError" in result.failures["mcf.chase"].message
        for name in ("gcc.mix", "x264.divint"):
            assert result.statuses[name] is CellStatus.OK
            assert fields(result.stats[name]) == \
                fields(O3Core(traces[name], base_config()).run())

    def test_criticality_cells_never_lane_batch(self, traces):
        result = run_config_with_criticality(
            "cri", base_config(scheduler="cri"), traces, base_config(),
            workers=1, use_cache=False, lanes=4)
        assert result.complete()
        assert not result.lane_batches

    def test_fault_runs_never_lane_batch(self, traces, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "crash:no-such-cell/*")
        result = run_config("flt", base_config(), traces,
                            workers=1, use_cache=False, lanes=4)
        assert result.complete()
        assert not result.lane_batches

    def test_single_cell_group_skips_lane_driver_on_workers(self):
        """A group of one gains nothing from lockstep; the worker path
        routes it through the plain per-cell task."""
        groups = parallel._lane_groups(
            [parallel.Job("a", base_config(), "gcc.mix", SCALE)], [0])
        assert groups == [[0]]


# -- CLI surface -----------------------------------------------------------

class TestProfileLanes:
    def test_profile_lanes_flag_runs_batch(self, capsys):
        from repro.cli import main
        rc = main(["profile", "gcc.mix", "--scale", "0.05",
                   "--lanes", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "x2 cells on 2 lanes" in out
        assert "serial-equiv kcycles/s" in out

    def test_profile_lanes_env_runs_batch(self, capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.setenv("REPRO_LANES", "2")
        rc = main(["profile", "gcc.mix", "--scale", "0.05"])
        assert rc == 0
        assert "on 2 lanes" in capsys.readouterr().out

    def test_profile_lanes_rejects_events(self, capsys):
        # event subscribers instrument one core's bus; a lane batch
        # has no single bus to attach to
        from repro.cli import main
        rc = main(["profile", "gcc.mix", "--lanes", "2", "--events"])
        assert rc == 2
        assert "requires --lanes 1" in capsys.readouterr().err

    def test_profile_lanes_one_still_runs(self):
        from repro.cli import main
        assert main(["profile", "gcc.mix", "--scale", "0.02",
                     "--lanes", "1"]) == 0
