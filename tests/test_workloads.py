"""Workload kernels: architectural correctness and behaviour classes."""

import pytest

from repro.isa import Emulator, OpClass
from repro.workloads import (build_program, build_suite, build_trace,
                             clear_trace_cache, fetch_trace,
                             generation_params, kernel_names, kernels,
                             scale_params, sweep_names, trace_cache_cap,
                             trace_cache_stats)


class TestRegistry:
    def test_suite_names(self):
        names = kernel_names()
        assert len(names) >= 12
        assert "mcf.chase" in names and "xalanc.hash" in names

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            build_program("spec.nothing")

    def test_traces_cached(self):
        a = build_trace("gcc.mix")
        b = build_trace("gcc.mix")
        assert a is b

    def test_cache_bypass(self):
        a = build_trace("gcc.mix")
        b = build_trace("gcc.mix", use_cache=False)
        assert a is not b and len(a) == len(b)

    def test_scale_changes_length(self):
        small = build_trace("gcc.mix", scale=0.5, use_cache=False)
        full = build_trace("gcc.mix", scale=1.0, use_cache=False)
        assert len(small) < len(full)


class TestScaleParams:
    def test_default_floor(self):
        assert scale_params({"n": 700}, 0.001) == {"n": 8}

    def test_per_key_minimum_overrides_floor(self):
        assert scale_params({"dim": 12}, 0.25, {"dim": 4}) == {"dim": 4}
        assert scale_params({"dim": 12}, 0.5, {"dim": 4}) == {"dim": 6}

    def test_matmul_scales_below_the_old_floor(self):
        # the blanket max(8, ...) floor used to pin dim=12 kernels at 8
        # for every scale below 0.7 — scaling must actually scale
        assert generation_params("blender.matmul", 0.5) == {"dim": 6}
        assert generation_params("blender.matmul", 0.25) == {"dim": 4}
        half = build_trace("blender.matmul", 0.5, use_cache=False)
        full = build_trace("blender.matmul", 1.0, use_cache=False)
        assert len(half) < len(full)

    def test_generation_params_reflect_built_size(self):
        # the cache key must describe the kernel actually generated
        params = generation_params("gcc.mix", 0.01)
        program = kernels.gcc_mix(**params)
        assert program is not None
        assert params == {"n": 8}


class TestTraceLRU:
    def test_fetch_reports_hit_flag_and_counts(self):
        clear_trace_cache()
        _, hit_first = fetch_trace("gcc.mix", 0.1)
        _, hit_second = fetch_trace("gcc.mix", 0.1)
        assert (hit_first, hit_second) == (False, True)
        stats = trace_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        clear_trace_cache()
        assert trace_cache_stats() == {"hits": 0, "misses": 0,
                                       "entries": 0}

    def test_cache_is_bounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
        assert trace_cache_cap() == 2
        clear_trace_cache()
        fetch_trace("gcc.mix", 0.1)
        fetch_trace("mcf.chase", 0.1)
        fetch_trace("perl.branchy", 0.1)     # evicts gcc.mix (LRU)
        assert trace_cache_stats()["entries"] == 2
        _, hit = fetch_trace("gcc.mix", 0.1)
        assert hit is False                  # was evicted, rebuilt
        clear_trace_cache()

    def test_recent_use_protects_from_eviction(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "2")
        clear_trace_cache()
        fetch_trace("gcc.mix", 0.1)
        fetch_trace("mcf.chase", 0.1)
        fetch_trace("gcc.mix", 0.1)          # refresh: now most recent
        fetch_trace("perl.branchy", 0.1)     # evicts mcf.chase instead
        _, hit = fetch_trace("gcc.mix", 0.1)
        assert hit is True
        clear_trace_cache()


class TestKernelCorrectness:
    def test_pointer_chase_visits_every_step(self):
        program = kernels.pointer_chase(nodes=64, steps=32)
        emulator = Emulator(program)
        trace = emulator.run()
        assert emulator.regs[2] == 32          # step counter
        loads = [i for i in trace if i.is_load]
        assert len(loads) == 64                # two loads per step

    def test_pointer_chase_is_a_permutation_cycle(self):
        program = kernels.pointer_chase(nodes=32, steps=64)
        emulator = Emulator(program)
        emulator.run()
        # after nodes steps the walk revisits node addresses; verify the
        # next pointers form a single cycle by walking them functionally
        start = 0x10_0000
        seen = set()
        addr = start
        for _ in range(32):
            assert addr not in seen
            seen.add(addr)
            addr = int(emulator.memory[addr])
        assert addr == start

    def test_stream_triad_computes_triad(self):
        program = kernels.stream_triad(n=16)
        emulator = Emulator(program)
        emulator.run()
        b0 = emulator.memory[0x10_0000]
        c0 = emulator.memory[0x10_0000 + 0x80_0000]
        a0 = emulator.memory[0x10_0000 + 0x100_0000]
        assert a0 == pytest.approx(b0 + 3.5 * c0)

    def test_hash_probe_accumulates(self):
        program = kernels.hash_probe(n=32, table_words=1 << 10)
        emulator = Emulator(program)
        emulator.run()
        assert emulator.instr_count > 32 * 8

    def test_matmul_result_spot_check(self):
        dim = 4
        program = kernels.matmul(dim=dim)
        emulator = Emulator(program)
        emulator.run()
        a = lambda i, k: (((i * dim + k) % 7) + 0.5)
        b = lambda k, j: (((k * dim + j) % 5) + 0.25)
        expected = sum(a(1, k) * b(k, 2) for k in range(dim))
        c_addr = 0x10_0000 + 0x2_0000 + 8 * (1 * dim + 2)
        assert emulator.memory[c_addr] == pytest.approx(expected)

    def test_div_chain_uses_divider(self):
        trace = build_trace("x264.divint")
        mix = trace.class_mix()
        assert mix.get(OpClass.INT_DIV, 0) > 0.1

    def test_branchy_is_hard_to_predict(self):
        from repro.frontend import make_predictor
        trace = build_trace("perl.branchy")
        predictor = make_predictor("tage")
        for instr in trace:
            if instr.is_branch:
                predictor.predict(instr)
        assert predictor.accuracy() < 0.95

    def test_tree_search_descends_fixed_depth(self):
        program = kernels.tree_search(nodes_log2=10, queries=4, depth=8)
        emulator = Emulator(program)
        trace = emulator.run()
        loads = [i for i in trace if i.is_load]
        assert len(loads) == 4 * 8


class TestBehaviourClasses:
    """The stressors DESIGN.md promises each kernel delivers."""

    def test_chase_misses_llc(self):
        from repro.pipeline import O3Core, base_config
        core = O3Core(build_trace("mcf.chase"), base_config())
        stats = core.run()
        assert stats.memory["llc_miss_rate"] > 0.5

    def test_matmul_is_core_bound(self):
        from repro.pipeline import O3Core, base_config
        core = O3Core(build_trace("blender.matmul"), base_config())
        stats = core.run()
        assert stats.memory["l1_miss_rate"] < 0.1
        assert stats.ipc > 1.5

    def test_listupd_forwards(self):
        from repro.pipeline import O3Core, base_config
        core = O3Core(build_trace("sjeng.listupd"), base_config())
        stats = core.run()
        assert stats.forwarded_loads > 100

    def test_suite_builds_all(self):
        suite = build_suite(scale=0.25)
        # default sweeps enumerate the whole target registry: every
        # synthetic kernel plus the stock scenario families
        assert set(suite) == set(sweep_names())
        assert set(kernel_names()) < set(suite)
        assert {"smt.gccdiv", "sys.drain", "phase.flip"} <= set(suite)
        for trace in suite.values():
            assert len(trace) > 100
