"""Setup shim so `pip install -e .` works without the `wheel` package.

The offline environment lacks `wheel`, which PEP 660 editable installs
require; the legacy `setup.py develop` path used via
`--no-use-pep517` does not. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
