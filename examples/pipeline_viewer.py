"""Visualize out-of-order commit with the pipeline timeline viewer.

Renders per-instruction D(ispatch)/I(ssue)/C(omplete)/R(etire) marks
for in-order vs Orinoco commit — the unordered `R` column is the paper's
contribution made visible.

Run:  python examples/pipeline_viewer.py
"""

from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import O3Core, Timeline, base_config


def build():
    b = ProgramBuilder("viewer")
    b.li("x1", 1000).li("x2", 7).li("x3", 0x100000)
    for i in range(3):
        b.ld("x4", "x3", i * 8192)      # DRAM miss: slow at the head
        b.add("x5", "x5", "x4")
        for lane in range(4):           # independent younger work
            dst = f"x{10 + lane}"
            b.addi(dst, "x1", lane)
            b.xor(dst, dst, "x2")
    b.halt()
    return trace_program(b.build())


def main():
    trace = build()
    for commit in ("ioc", "orinoco"):
        core = O3Core(trace, base_config(commit=commit))
        timeline = Timeline.attach(core)
        core.run()
        print(f"\n=== commit policy: {commit} "
              f"(IPC {core.stats.ipc:.3f}) ===")
        print(timeline.render(count=24))
        print(f"out-of-order commits: {timeline.out_of_order_commits()}")


if __name__ == "__main__":
    main()
