"""Out-of-order commit study (paper §6.2, Figure 15).

Runs the commit-policy design space — IOC, Orinoco, Validation Buffer,
NOREBA-style branch relaxation, Cherry-style speculative bounds, DeSC's
early committed loads — over kernels stressing different blockers.

Run:  python examples/ooo_commit.py
"""

from repro.harness import format_table
from repro.pipeline import base_config, simulate
from repro.workloads import build_trace

KERNELS = ["xalanc.hash", "omnet.tree", "blender.matmul", "lbm.stream"]
POLICIES = ["ioc", "orinoco", "vb", "vb_noecl", "br", "spec", "ecl"]


def main():
    rows = []
    for name in KERNELS:
        trace = build_trace(name)
        stats = {policy: simulate(trace, base_config(commit=policy))
                 for policy in POLICIES}
        base = stats["ioc"].ipc
        rows.append([name] + [f"{stats[p].ipc / base:.3f}"
                              for p in POLICIES])
    print(format_table(["kernel"] + POLICIES, rows,
                       title="Commit policy speedups vs IOC "
                             "(Figure 15 style)"))
    print("""
Reading the table:
  * xalanc.hash   — window-limited MLP: Orinoco/VB/SPEC unclog it;
  * omnet.tree    — branches blocked on slow loads: only BR/SPEC help;
  * blender.matmul— register-bound: Orinoco frees registers, VB cannot
                    (the paper's own critique of post-commit execution);
  * lbm.stream    — streaming misses: early reclamation extends the
                    effective window.""")


if __name__ == "__main__":
    main()
