"""Bring your own workload: three ways into the target registry.

The harness simulates *workload targets* (``repro.workloads.targets``)
— named objects that build a deterministic trace, fingerprint
themselves for the result cache, and know how to rebuild in a worker
process.  This example walks the full user path:

1. assemble a program and check it architecturally;
2. register it as a custom ``WorkloadTarget`` so every harness layer
   (sweeps, caching, ``--jobs`` workers) can use it by name;
3. record the trace to disk and re-import it as a trace-file target —
   the same mechanism as ``repro trace record`` / ``--trace PATH``;
4. compose it into a scenario (SMT-style interleave with a suite
   kernel) and sweep everything across core sizes and policies.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro.harness import format_table
from repro.isa import Emulator, assemble, save_trace, trace_program
from repro.pipeline import make_config, simulate
from repro.workloads import (InterleaveTarget, WorkloadTarget,
                             add_trace_target, build_trace, get_target,
                             register_target, unregister_target)

SOURCE = """
.name histogram
# histogram 256 pseudo-random bytes into 16 buckets
    li   x1, 0          # i
    li   x2, 256        # count
    li   x3, 0x1000     # input base
    li   x4, 0x8000     # bucket base
    li   x28, 99        # lcg state
    li   x29, 1664525
loop:
    mul  x28, x28, x29
    addi x28, x28, 1013904223
    srli x5, x28, 16
    andi x5, x5, 15     # bucket index
    slli x5, x5, 3
    add  x5, x5, x4
    ld   x6, 0(x5)      # read-modify-write the bucket
    addi x6, x6, 1
    sd   x6, 0(x5)
    addi x1, x1, 1
    blt  x1, x2, loop
    halt
"""


class HistogramTarget(WorkloadTarget):
    """A custom target: assembly source in, deterministic trace out.

    ``fingerprint`` must identify the trace *content* — here the
    source text and the iteration count — so the result cache can
    never serve a stale entry after the program changes.
    """

    kind = "example"

    def __init__(self, name: str, count: int = 256):
        super().__init__(name)
        self.count = count

    def _program(self):
        source = SOURCE.replace("li   x2, 256", f"li   x2, {self.count}")
        return assemble(source)

    def build_trace(self, scale: float = 1.0):
        return trace_program(self._program())

    def fingerprint(self, scale: float = 1.0):
        return {"kind": self.kind, "source_lines": len(SOURCE.split()),
                "count": self.count}

    def provenance(self) -> str:
        return "example: inline assembly histogram"


def main():
    # 1. architectural check with the functional emulator
    target = HistogramTarget("example.hist")
    emulator = Emulator(target._program())
    trace = emulator.run()
    total = sum(int(emulator.memory.get(0x8000 + 8 * b, 0))
                for b in range(16))
    print(f"functional result: {total} items histogrammed "
          f"({len(trace)} dynamic instructions)")
    assert total == 256

    # 2. register it — now every harness layer knows "example.hist"
    register_target(target)
    print(f"registered {target.name!r} "
          f"(fingerprint {target.fingerprint()})")

    # 3. record to disk and re-import: the trace-file path.  The
    #    import verifies a sha256 checksum at registration and before
    #    every build, and its fingerprint is the checksum — so cache
    #    entries follow the *content*, not the path.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "hist.jsonl"
        save_trace(build_trace("example.hist"), path,
                   meta={"source": "example.hist"})
        imported = add_trace_target(path, name="example.hist.rec")
        print(f"re-imported as {imported.name!r} "
              f"(sha256 {imported.sha256[:12]}…)")

        # 4. compose: interleave the histogram with a suite kernel,
        #    as the stock smt.* scenario families do
        register_target(InterleaveTarget(
            "example.smt", ("example.hist", "gcc.mix"), seed=7))

        names = ("example.hist", "example.hist.rec", "example.smt")
        rows = []
        for preset in ("base", "pro", "ultra"):
            for name in names:
                trace = build_trace(name, 0.25, use_cache=False)
                row = [preset, name]
                for commit in ("ioc", "orinoco"):
                    stats = simulate(trace, make_config(preset,
                                                        commit=commit))
                    row.append(f"{stats.ipc:.3f}")
                rows.append(row)
        print(format_table(
            ["core", "target", "IPC (IOC)", "IPC (Orinoco)"], rows,
            title="\nYour targets across Table 1 cores"))

        for name in ("example.smt", "example.hist.rec", "example.hist"):
            unregister_target(name)

    print("\nNotes: the recorded target simulates identically to its "
          "source (same instruction stream, checksum-pinned); the "
          "bucket RMW chain forwards store-to-load in the LSQ — try "
          "mem_dep_policy='conservative' to see the cost of not "
          "speculating.  `python -m repro kernels` lists the stock "
          "registry; `repro trace record/convert/validate` is the CLI "
          "for step 3.")


if __name__ == "__main__":
    main()
