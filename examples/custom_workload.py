"""Bring your own workload: text assembly in, evaluation out.

Shows the full user path: assemble a program, check it architecturally
with the functional emulator, then sweep it across core sizes and
policies.

Run:  python examples/custom_workload.py
"""

from repro.harness import format_table
from repro.isa import Emulator, assemble
from repro.pipeline import make_config, simulate

SOURCE = """
.name histogram
# histogram 256 pseudo-random bytes into 16 buckets
    li   x1, 0          # i
    li   x2, 256        # count
    li   x3, 0x1000     # input base
    li   x4, 0x8000     # bucket base
    li   x28, 99        # lcg state
    li   x29, 1664525
loop:
    mul  x28, x28, x29
    addi x28, x28, 1013904223
    srli x5, x28, 16
    andi x5, x5, 15     # bucket index
    slli x5, x5, 3
    add  x5, x5, x4
    ld   x6, 0(x5)      # read-modify-write the bucket
    addi x6, x6, 1
    sd   x6, 0(x5)
    addi x1, x1, 1
    blt  x1, x2, loop
    halt
"""


def main():
    program = assemble(SOURCE)
    print(f"assembled {len(program.code)} instructions")

    # 1. architectural check
    emulator = Emulator(program)
    trace = emulator.run()
    total = sum(int(emulator.memory.get(0x8000 + 8 * b, 0))
                for b in range(16))
    print(f"functional result: {total} items histogrammed "
          f"({len(trace)} dynamic instructions)")
    assert total == 256

    # 2. sweep core sizes x commit policies
    rows = []
    for preset in ("base", "pro", "ultra"):
        row = [preset]
        for commit in ("ioc", "orinoco"):
            stats = simulate(trace, make_config(preset, commit=commit))
            row.append(f"{stats.ipc:.3f}")
        rows.append(row)
    print(format_table(["core", "IPC (IOC)", "IPC (Orinoco)"], rows,
                       title="\nYour workload across Table 1 cores"))
    print("\nNote: the bucket RMW chain forwards store-to-load in the "
          "LSQ; try mem_dep_policy='conservative' to see the cost of "
          "not speculating.")


if __name__ == "__main__":
    main()
