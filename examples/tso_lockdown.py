"""TSO load-load reordering with the lockdown matrix (paper §3.3).

Under TSO a load may not appear to pass an older load.  Orinoco commits
loads out of order anyway and keeps the reordering invisible: the
committed load's address is locked down (invalidations/evictions
withheld) until every older load has performed.

This example drives a core in TSO mode, shows lockdowns being taken and
released, and demonstrates the coherence-visible invariant.

Run:  python examples/tso_lockdown.py
"""

import numpy as np

from repro.core import LockdownMatrix
from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import O3Core, base_config


def direct_demo():
    """The mechanism in isolation (Figure 7)."""
    print("Lockdown matrix (direct):")
    ldm = LockdownMatrix(ldt_size=4, lq_size=8)
    older = np.zeros(8, dtype=bool)
    older[[2, 5]] = True          # two older loads not yet performed
    ldm.lockdown(address=0x1000, load_seq=30, older_nonperformed=older)
    print(f"  load #30 committed early; 0x1000 locked: "
          f"{ldm.is_locked(0x1000)}")
    ldm.load_performed(2)
    print(f"  older load in LQ[2] performed; still locked: "
          f"{ldm.is_locked(0x1000)}")
    released = ldm.load_performed(5)
    print(f"  older load in LQ[5] performed; released addresses: "
          f"{[hex(a) for a in released]}")


def pipeline_demo():
    """A TSO-mode core committing a fast load past a slow one."""
    b = ProgramBuilder("tso")
    b.li("x1", 0x100000)          # slow: large-footprint address
    b.li("x2", 0x1000)            # fast: small address, L1 after warmup
    b.ld("x9", "x2", 0)           # warm the fast line
    b.ld("x3", "x1", 0)           # load A: DRAM miss (slow)
    b.ld("x4", "x2", 0)           # load B: L1 hit (fast, younger)
    b.add("x5", "x3", "x4")
    b.halt()
    trace = trace_program(b.build())
    core = O3Core(trace, base_config(commit="orinoco", tso=True))
    stats = core.run()
    print("\nTSO pipeline run:")
    print(f"  committed {stats.committed} instructions in "
          f"{stats.cycles} cycles")
    print(f"  lockdowns taken: {core.lsq.lockdowns_taken}")
    print("  (the younger load committed before the older one "
          "performed, with its line locked until ordering was safe)")


def litmus_demo():
    """Exhaustive message-passing litmus (§3.3's TSO argument)."""
    from repro.lsq.litmus import enumerate_outcomes, tso_holds
    print("\nMessage-passing litmus (writer: data=1; flag=1 /"
          " reader: r1=flag; r2=data):")
    for use_lockdown in (False, True):
        outcomes = enumerate_outcomes(use_lockdown)
        label = "with lockdown" if use_lockdown else "without lockdown"
        forbidden = [o for o in outcomes if o.forbidden_under_tso]
        print(f"  {label}: outcomes "
              f"{sorted((o.r_flag, o.r_data) for o in outcomes)}; "
              f"TSO holds: {tso_holds(outcomes)}"
              + (f" (forbidden r1=1,r2=0 observable!)" if forbidden
                 else ""))


if __name__ == "__main__":
    direct_demo()
    pipeline_demo()
    litmus_demo()
