"""Quickstart: build a program, simulate it, compare commit policies.

Run:  python examples/quickstart.py
"""

from repro.isa import ProgramBuilder, trace_program
from repro.pipeline import base_config, simulate


def build_program():
    """A loop with a cache-missing load and independent younger work —
    the pattern where out-of-order commit pays off."""
    b = ProgramBuilder("quickstart")
    b.li("x1", 0)                # induction variable
    b.li("x2", 300)              # trip count
    b.li("x3", 0x100000)         # array base
    b.li("x28", 12345).li("x29", 1664525)
    b.label("loop")
    # a pseudo-random indexed load: usually a DRAM miss
    b.mul("x28", "x28", "x29")
    b.addi("x28", "x28", 1013904223)
    b.srli("x4", "x28", 16)
    b.andi("x4", "x4", 0xFFF8)
    b.add("x4", "x4", "x3")
    b.ld("x5", "x4", 0)
    b.add("x6", "x6", "x5")      # consumer of the load
    # independent younger work that in-order commit holds hostage
    b.addi("x10", "x1", 1)
    b.slli("x11", "x10", 2)
    b.xor("x12", "x11", "x1")
    b.addi("x1", "x1", 1)
    b.blt("x1", "x2", "loop")
    b.halt()
    return b.build()


def main():
    program = build_program()
    print(program.listing()[:400], "...\n")

    trace = trace_program(program)
    print(f"dynamic trace: {trace.summary()}\n")

    baseline = simulate(trace, base_config(scheduler="age", commit="ioc"))
    orinoco = simulate(trace, base_config(scheduler="orinoco",
                                          commit="orinoco"))

    print(f"baseline (AGE + in-order commit): IPC {baseline.ipc:.3f} "
          f"in {baseline.cycles} cycles")
    print(f"Orinoco (ordered issue + unordered commit): "
          f"IPC {orinoco.ipc:.3f} in {orinoco.cycles} cycles")
    print(f"speedup: {orinoco.ipc / baseline.ipc:.3f}x")
    print(f"\nfull-window stalls: {baseline.full_window_stall_cycles} -> "
          f"{orinoco.full_window_stall_cycles}")
    print(f"L1 miss rate: {orinoco.memory['l1_miss_rate']:.1%}")


if __name__ == "__main__":
    main()
