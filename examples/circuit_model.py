"""The PIM circuit model (paper §4, §6.3, §6.4).

Reproduces Table 2, the overhead analysis, the Monte Carlo stability
claim, and the ROB-512 scalability study.

Run:  python examples/circuit_model.py
"""

from repro.circuit import (BitlineModel, SRAM8TArray, format_scalability,
                           format_table2, overhead_report,
                           simulate_bitcount)


def main():
    print(format_table2())

    print("\n" + overhead_report().format())

    print("\nBit count encoding (voltage-drop sensing on one 96-column "
          "RBL):")
    model = BitlineModel(96)
    print(f"  drop per set bit: {model.drop_per_bit_mv():.1f} mV; "
          f"Vref for IW=4: {model.vref_for_threshold_mv(4):.0f} mV")
    for threshold in (2, 4, 8):
        result = simulate_bitcount(model, threshold, trials=10000)
        print(f"  IW={threshold}: margin {result.margin_sigma:.1f} sigma, "
              f"failures {result.failures}/{result.trials}")

    print("\n" + format_scalability())

    print("\nCustom geometry example — a 160-entry IQ age matrix:")
    array = SRAM8TArray(160, 160, banks=4)
    print(f"  area {array.area_mm2():.4f} mm2, "
          f"read {array.read_latency_ps():.0f} ps, "
          f"meets 2 GHz: {array.meets_timing()}")


if __name__ == "__main__":
    main()
