"""Priority scheduling study (paper §6.2, Figure 14).

Compares the issue selection policies — RAND, AGE (single oldest),
MULT (oldest per type), Orinoco (IW oldest via bit count encoding) and
criticality scheduling — on the kernels where selection order matters.

Run:  python examples/priority_scheduling.py
"""

from repro.criticality import CriticalityTagger, clear_tags
from repro.harness import format_table
from repro.pipeline import O3Core, base_config, simulate
from repro.workloads import build_trace

KERNELS = ["leela.chains", "perl.branchy", "xalanc.hash", "gcc.mix"]
POLICIES = ["rand", "age", "mult", "orinoco"]


def run_criticality(trace):
    """CRI: profile (stand-in for hardware counters), tag via IBDA,
    rerun with the critical instructions prioritized."""
    profiler = O3Core(trace, base_config(scheduler="age"))
    profiler.run()
    tagger = CriticalityTagger()
    tagger.feed_profile(profiler.pc_l1_misses, profiler.pc_mispredicts)
    tagged = tagger.tag(trace)
    try:
        stats = simulate(trace, base_config(scheduler="cri"))
    finally:
        clear_tags(trace)
    return stats, tagged


def main():
    rows = []
    for name in KERNELS:
        trace = build_trace(name)
        ipcs = {policy: simulate(trace, base_config(scheduler=policy)).ipc
                for policy in POLICIES}
        cri_stats, tagged = run_criticality(trace)
        base = ipcs["age"]
        rows.append([name] + [f"{ipcs[p] / base:.3f}" for p in POLICIES]
                    + [f"{cri_stats.ipc / base:.3f}", tagged])
    print(format_table(
        ["kernel"] + POLICIES + ["cri", "#critical"], rows,
        title="Issue policy speedups vs AGE (Figure 14 style)"))
    print("\nExpected ordering (paper): RAND < AGE <= MULT <= Orinoco,"
          " with CRI adding further gains where critical slices exist.")


if __name__ == "__main__":
    main()
