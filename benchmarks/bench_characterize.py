"""Workload characterization: the DESIGN.md substitution evidence.

Each SPEC-surrogate kernel must actually deliver the behaviour class it
stands in for (misses, mispredicts, FP mix, window pressure).
"""

from repro.harness import characterize, format_characterization

from conftest import publish, scale


def test_characterization(run_once):
    profiles = run_once(characterize, scale=scale())
    publish("characterization", format_characterization(profiles))
    by_name = {p.name: p for p in profiles}
    # the stressors DESIGN.md promises
    assert by_name["mcf.chase"].llc_miss_rate > 0.5       # DRAM chains
    assert by_name["blender.matmul"].ipc > 1.5            # core bound
    assert by_name["perl.branchy"].branch_mpki > 5        # mispredicts
    assert by_name["nab.reduce"].fp_fraction > 0.3        # FP chains
    assert by_name["xalanc.hash"].full_window_frac > 0.5  # window bound
    assert by_name["lbm.stream"].store_fraction > 0.05    # store traffic
