"""Engine speed benchmark: simulated kilocycles per second.

Unlike the other ``bench_*`` files (pytest experiments that regenerate
paper artefacts), this is a standalone script measuring how fast the
*simulator itself* runs — the number the PR 4 hot-path work optimises:

    PYTHONPATH=src python benchmarks/bench_speed.py [--quick] [--jobs N]

Each suite kernel is simulated ``--reps`` times and the fastest rep
kept (min-of-reps rejects background-load noise).  With ``--jobs N``
the same cells are also fanned out over N worker processes to measure
aggregate throughput.  Results land in ``benchmarks/out/
BENCH_speed.json`` — per-workload kilocycles/sec, geomean, and suite
totals — for before/after comparisons: check out the baseline tree,
run with ``--out baseline.json``, and diff the ``summary`` blocks.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import math
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.pipeline import base_config, simulate           # noqa: E402
from repro.workloads import build_trace, kernel_names      # noqa: E402

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_speed.json"
QUICK_KERNELS = ("mcf.chase", "lbm.stream", "perl.branchy",
                 "gcc.mix", "xalanc.hash")


def _run_cell(kernel: str, scale: float, scheduler: str, commit: str):
    """One simulation cell; returns (cycles, seconds).  Top-level so
    process-pool workers can import it."""
    trace = build_trace(kernel, scale)
    config = base_config(scheduler=scheduler, commit=commit)
    start = time.perf_counter()
    stats = simulate(trace, config)
    return stats.cycles, time.perf_counter() - start


def _serial_pass(kernels, scale, scheduler, commit, reps):
    results = {}
    for kernel in kernels:
        best = None
        cycles = None
        for _ in range(reps):
            cell_cycles, seconds = _run_cell(kernel, scale, scheduler,
                                             commit)
            cycles = cell_cycles
            best = seconds if best is None else min(best, seconds)
        results[kernel] = {
            "cycles": cycles,
            "seconds": round(best, 4),
            "kcps": round(cycles / best / 1e3, 1) if best > 0 else 0.0,
        }
    return results


def _parallel_pass(kernels, scale, scheduler, commit, jobs):
    start = time.perf_counter()
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_run_cell, kernel, scale, scheduler,
                               commit) for kernel in kernels]
        cells = [future.result() for future in futures]
    wall = time.perf_counter() - start
    total_cycles = sum(cycles for cycles, _ in cells)
    return {
        "jobs": jobs,
        "wall_seconds": round(wall, 4),
        "total_cycles": total_cycles,
        "kcps": round(total_cycles / wall / 1e3, 1) if wall > 0 else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="simulator speed benchmark (kilocycles/sec)")
    parser.add_argument("--quick", action="store_true",
                        help=f"subset of {len(QUICK_KERNELS)} kernels at "
                             "scale 0.25 (CI smoke)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default 1.0, quick 0.25)")
    parser.add_argument("--kernels", nargs="*", default=None,
                        help="restrict to these suite kernels")
    parser.add_argument("--scheduler", default="age")
    parser.add_argument("--commit", default="ioc")
    parser.add_argument("--reps", type=int, default=1,
                        help="serial reps per cell; fastest kept")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="also measure aggregate throughput over N "
                             "worker processes")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help="output JSON path")
    args = parser.parse_args(argv)

    kernels = args.kernels or (list(QUICK_KERNELS) if args.quick
                               else kernel_names())
    scale = args.scale if args.scale is not None else \
        (0.25 if args.quick else 1.0)

    serial = _serial_pass(kernels, scale, args.scheduler, args.commit,
                          max(1, args.reps))
    total_cycles = sum(row["cycles"] for row in serial.values())
    total_seconds = sum(row["seconds"] for row in serial.values())
    geomean = math.exp(sum(math.log(row["kcps"])
                           for row in serial.values()) / len(serial))
    report = {
        "schema": "bench-speed/1",
        "scale": scale,
        "reps": max(1, args.reps),
        "scheduler": args.scheduler,
        "commit": args.commit,
        "serial": serial,
        "summary": {
            "total_cycles": total_cycles,
            "total_seconds": round(total_seconds, 4),
            "kcps": round(total_cycles / total_seconds / 1e3, 1)
            if total_seconds > 0 else 0.0,
            "geomean_kcps": round(geomean, 1),
        },
    }
    if args.jobs > 1:
        report["parallel"] = _parallel_pass(kernels, scale,
                                            args.scheduler, args.commit,
                                            args.jobs)

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(k) for k in kernels)
    print(f"engine speed ({args.scheduler}/{args.commit}, scale "
          f"{scale:g}, min of {max(1, args.reps)} reps):")
    for kernel, row in serial.items():
        print(f"  {kernel:<{width}}  {row['cycles']:>9} cycles  "
              f"{row['seconds']:>8.3f}s  {row['kcps']:>8.1f} kcps")
    summary = report["summary"]
    print(f"  {'total':<{width}}  {summary['total_cycles']:>9} cycles  "
          f"{summary['total_seconds']:>8.3f}s  {summary['kcps']:>8.1f} "
          f"kcps (geomean {summary['geomean_kcps']:.1f})")
    if "parallel" in report:
        par = report["parallel"]
        print(f"  parallel x{par['jobs']}: {par['wall_seconds']:.3f}s "
              f"wall, {par['kcps']:.1f} kcps aggregate")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
