"""Engine speed benchmark: simulated kilocycles per second.

Unlike the other ``bench_*`` files (pytest experiments that regenerate
paper artefacts), this is a standalone script measuring how fast the
*simulator itself* runs — the number the PR 4 hot-path work optimises:

    PYTHONPATH=src python benchmarks/bench_speed.py [--quick] [--jobs N]

Each suite kernel is simulated ``--reps`` times and the fastest rep
kept (min-of-reps rejects background-load noise).  With ``--jobs N``
the same cells are also run through the harness executor
(:func:`repro.harness.run_config` — the chunked dispatcher real
experiments use) to measure true end-to-end parallel wall-clock
against the serial sweep wall, and the parallel stats are checked
bit-identical against the serial ones.  ``--gate RATIO`` turns the
comparison into a pass/fail check for CI: exit 1 if parallel wall
exceeds ``RATIO x`` serial wall (skipped, and recorded as skipped,
on single-CPU hosts where a speedup is physically unattainable) and
exit 2 if the stats diverge.  ``--lanes L`` measures the lane-batched
engine two ways: the heterogeneous sweep (same cells, workers=1,
lockstep batches of L — end-to-end occupancy included) and a
*saturated* pass (L copies of each kernel filling one batch — the
engine's full-occupancy throughput, reported per kernel as
``lane_serial_equiv_kcps`` = simulated cycles summed across lanes /
wall, with a ``lanes_vs_serial_geomean`` across kernels).
``--lane-gate R`` is the lane CI check: the saturated geomean must be
>= R — identity always enforced, the throughput check skipped on
1-CPU hosts.  Results land in ``benchmarks/out/BENCH_speed.json`` —
per-workload kilocycles/sec, geomean, suite totals, and the
serial-vs-parallel/lane comparisons — for before/after comparisons:
check out the baseline tree, run with ``--out baseline.json``, and
diff the ``summary`` blocks.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.harness import run_config, shutdown_pools       # noqa: E402
from repro.pipeline import base_config, simulate           # noqa: E402
from repro.pipeline.lanes import LaneBatch, LaneCell       # noqa: E402
from repro.workloads import (build_suite, build_trace,     # noqa: E402
                             kernel_names)

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_speed.json"
QUICK_KERNELS = ("mcf.chase", "lbm.stream", "perl.branchy",
                 "gcc.mix", "xalanc.hash")


def _run_cell(kernel: str, scale: float, scheduler: str, commit: str):
    """One simulation cell; returns (stats, seconds)."""
    trace = build_trace(kernel, scale)
    config = base_config(scheduler=scheduler, commit=commit)
    start = time.perf_counter()
    stats = simulate(trace, config)
    return stats, time.perf_counter() - start


def _serial_pass(kernels, scale, scheduler, commit, reps):
    """Per-cell min-of-reps timings plus one-sweep wall-clock.

    Returns ``(per_kernel_rows, stats_by_kernel, sweep_wall)`` where
    ``sweep_wall`` is the wall-clock of one full serial pass over the
    suite (total wall / reps) — the honest baseline the parallel pass
    has to beat.  Traces are pre-built by the caller so neither side's
    wall is dominated by first-touch trace generation.
    """
    results = {}
    stats_by_kernel = {}
    wall_start = time.perf_counter()
    for kernel in kernels:
        best = None
        for _ in range(reps):
            stats, seconds = _run_cell(kernel, scale, scheduler, commit)
            stats_by_kernel[kernel] = stats
            best = seconds if best is None else min(best, seconds)
        cycles = stats_by_kernel[kernel].cycles
        results[kernel] = {
            "cycles": cycles,
            "seconds": round(best, 4),
            "kcps": round(cycles / best / 1e3, 1) if best > 0 else 0.0,
        }
    sweep_wall = (time.perf_counter() - wall_start) / reps
    return results, stats_by_kernel, sweep_wall


def _parallel_pass(traces, scheduler, commit, jobs, chunk,
                   serial_stats, serial_wall):
    """End-to-end executor run over the same cells, vs the serial wall.

    Uses the chunked dispatcher real experiments use (worker spawn,
    batched pipe round-trips, in-worker trace rebuild + LRU), so the
    measured wall is what a user actually waits for ``--jobs N``.
    """
    config = base_config(scheduler=scheduler, commit=commit)
    start = time.perf_counter()
    result = run_config("bench", config, traces, workers=jobs,
                        use_cache=False, chunk=chunk)
    wall = time.perf_counter() - start
    shutdown_pools()
    identical = all(result.stats.get(name) == serial_stats[name]
                    for name in traces)
    total_cycles = sum(stats.cycles for stats in result.stats.values())
    return {
        "jobs": jobs,
        "chunk": chunk if chunk is not None else "auto",
        "wall_seconds": round(wall, 4),
        "serial_wall_seconds": round(serial_wall, 4),
        "speedup": round(serial_wall / wall, 3) if wall > 0 else 0.0,
        "total_cycles": total_cycles,
        "kcps": round(total_cycles / wall / 1e3, 1) if wall > 0 else 0.0,
        "trace_cache_hits": result.trace_cache_hits(),
        "queued_seconds": round(result.queued_seconds(), 4),
        "identical": identical,
        "cpus": os.cpu_count() or 1,
    }


def _lane_pass(traces, scheduler, commit, lanes, serial_stats,
               serial_wall):
    """In-process lane-batched sweep over the same cells.

    Measures the lane-stacked engine (``repro.pipeline.lanes``): up to
    ``lanes`` compatible cells stepped in lockstep over one
    struct-of-arrays stack, single process (workers=1) so the number
    isolates the lane engine from worker parallelism.  Per-cell stats
    are checked field-identical against the serial pass — the identity
    contract matters more than the wall number and is always enforced.
    """
    config = base_config(scheduler=scheduler, commit=commit)
    start = time.perf_counter()
    result = run_config("bench-lanes", config, traces, workers=1,
                        use_cache=False, lanes=lanes)
    wall = time.perf_counter() - start
    identical = all(result.stats.get(name) == serial_stats[name]
                    for name in traces)
    total_cycles = sum(stats.cycles for stats in result.stats.values())
    speedup = serial_wall / wall if wall > 0 else 0.0
    return {
        "lanes": lanes,
        "wall_seconds": round(wall, 4),
        "serial_wall_seconds": round(serial_wall, 4),
        "speedup": round(speedup, 3),
        "total_cycles": total_cycles,
        "kcps": round(total_cycles / wall / 1e3, 1) if wall > 0 else 0.0,
        # simulated cycles summed across lanes / wall: the rate one
        # process delivers in serial-run-equivalents
        "lane_serial_equiv_kcps": round(total_cycles / wall / 1e3, 1)
        if wall > 0 else 0.0,
        "mean_active_lanes": round(result.mean_lane_occupancy(), 3),
        "batches": len(result.lane_batches),
        "trace_cache_hits": result.trace_cache_hits(),
        "identical": identical,
        "target_5x_met": speedup >= 5.0,
        "cpus": os.cpu_count() or 1,
    }


def _saturated_pass(traces, scheduler, commit, lanes, serial,
                    serial_stats):
    """Full-occupancy lane throughput: L copies of each kernel.

    The heterogeneous sweep above under-fills the batch whenever fewer
    than L cells are live (its mean occupancy is the honest end-to-end
    number), so it conflates engine speed with suite shape.  This pass
    keeps all L lanes busy on one kernel at a time and compares the
    batch wall against L serial runs of that kernel (min-of-reps
    seconds from the serial pass).  Per-kernel stats are checked
    field-identical against serial; the speedup geomean across kernels
    is the number ``--lane-gate`` enforces.
    """
    config = base_config(scheduler=scheduler, commit=commit)
    per_kernel = {}
    identical = True
    total_cycles = 0
    total_wall = 0.0
    for kernel, trace in traces.items():
        cells = [LaneCell(i, trace, config) for i in range(lanes)]
        batch = LaneBatch(lanes, config.iq_size, config.rob_size)
        start = time.perf_counter()
        outcome = batch.run(cells)
        wall = time.perf_counter() - start
        reference = serial_stats[kernel]
        cycles = 0
        for out in outcome.outcomes:
            if out.stats is None or out.stats != reference:
                identical = False
            else:
                cycles += out.stats.cycles
        serial_equiv = lanes * serial[kernel]["seconds"]
        speedup = serial_equiv / wall if wall > 0 else 0.0
        per_kernel[kernel] = {
            "wall_seconds": round(wall, 4),
            "serial_equiv_seconds": round(serial_equiv, 4),
            "speedup": round(speedup, 3),
            "lane_serial_equiv_kcps": round(cycles / wall / 1e3, 1)
            if wall > 0 else 0.0,
            "mean_active_lanes": round(outcome.mean_active(), 3),
        }
        total_cycles += cycles
        total_wall += wall
    ratios = [row["speedup"] for row in per_kernel.values()]
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios)) \
        if ratios and all(r > 0 for r in ratios) else 0.0
    return {
        "lanes": lanes,
        "identical": identical,
        "wall_seconds": round(total_wall, 4),
        "lane_serial_equiv_kcps": round(total_cycles / total_wall / 1e3,
                                        1) if total_wall > 0 else 0.0,
        "lanes_vs_serial_geomean": round(geomean, 3),
        "per_kernel": per_kernel,
    }


def _apply_lane_gate(report, gate):
    """Enforce ``--lane-gate``; returns the process exit code.

    Identity divergence — in the heterogeneous sweep or the saturated
    pass — is always fatal (exit 2).  The throughput check gates the
    *saturated* lanes-vs-serial geomean (``speedup >= R``): the
    heterogeneous sweep's wall ratio depends on suite shape (a
    straggler kernel drains the batch to one live lane), so gating it
    would measure the workload mix, not the engine.  On single-CPU
    hosts the check is skipped — and recorded as skipped, with the
    measured geomean — because scheduler noise under CI load makes
    wall ratios there too unstable to fail a build on.
    """
    lane = report["lane"]
    saturated = lane.get("saturated")
    if not lane["identical"] or (saturated is not None
                                 and not saturated["identical"]):
        report["lane_gate"] = {"min_speedup": gate, "passed": False,
                               "reason": "lane stats diverged from serial"}
        print("GATE FAIL: lane-batched stats are not field-identical "
              "to serial", file=sys.stderr)
        return 2
    measured = saturated["lanes_vs_serial_geomean"] if saturated \
        else lane["speedup"]
    if lane["cpus"] <= 1:
        report["lane_gate"] = {
            "min_speedup": gate, "skipped": True,
            "measured": measured,
            "reason": f"single-CPU host (cpus={lane['cpus']}); "
                      f"throughput ratio too noisy to enforce"}
        print(f"lane gate skipped: single-CPU host (saturated geomean "
              f"{measured:.2f}x recorded, not enforced)")
        return 0
    passed = measured >= gate
    report["lane_gate"] = {"min_speedup": gate,
                           "measured": round(measured, 3),
                           "passed": passed}
    if not passed:
        print(f"GATE FAIL: saturated lanes-vs-serial geomean "
              f"{measured:.2f}x is below the {gate:g}x floor",
              file=sys.stderr)
        return 1
    print(f"lane gate ok: saturated lanes-vs-serial geomean "
          f"{measured:.2f}x >= {gate:g}x")
    return 0


def _apply_gate(report, gate):
    """Enforce ``--gate``; returns the process exit code.

    Stats divergence is always fatal (exit 2).  The wall-clock ratio
    check needs real parallelism to be winnable, so on a single-CPU
    host it is skipped — and recorded as skipped, never silently — as
    parallel-beats-serial is physically unattainable there (the CI
    runners enforcing the gate have multiple cores).
    """
    par = report["parallel"]
    if not par["identical"]:
        report["gate"] = {"ratio": gate, "passed": False,
                          "reason": "parallel stats diverged from serial"}
        print("GATE FAIL: parallel stats are not bit-identical to serial",
              file=sys.stderr)
        return 2
    if par["cpus"] <= 1:
        report["gate"] = {"ratio": gate, "skipped": True,
                          "reason": f"single-CPU host (cpus={par['cpus']}); "
                                    f"wall ratio not enforceable"}
        print(f"gate skipped: single-CPU host "
              f"(parallel {par['wall_seconds']:.2f}s vs serial "
              f"{par['serial_wall_seconds']:.2f}s recorded, not enforced)")
        return 0
    ratio = (par["wall_seconds"] / par["serial_wall_seconds"]
             if par["serial_wall_seconds"] > 0 else float("inf"))
    passed = ratio <= gate
    report["gate"] = {"ratio": gate, "measured": round(ratio, 3),
                      "passed": passed}
    if not passed:
        print(f"GATE FAIL: parallel wall {par['wall_seconds']:.2f}s is "
              f"{ratio:.2f}x serial {par['serial_wall_seconds']:.2f}s "
              f"(limit {gate:g}x)", file=sys.stderr)
        return 1
    print(f"gate ok: parallel/serial wall ratio {ratio:.2f} <= {gate:g}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="simulator speed benchmark (kilocycles/sec)")
    parser.add_argument("--quick", action="store_true",
                        help=f"subset of {len(QUICK_KERNELS)} kernels at "
                             "scale 0.25 (CI smoke)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default 1.0, quick 0.25)")
    parser.add_argument("--kernels", nargs="*", default=None,
                        help="restrict to these suite kernels")
    parser.add_argument("--scheduler", default="age")
    parser.add_argument("--commit", default="ioc")
    parser.add_argument("--reps", type=int, default=1,
                        help="serial reps per cell; fastest kept")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="also measure end-to-end wall over N "
                             "executor workers (chunked dispatch)")
    parser.add_argument("--chunk", type=int, default=None, metavar="K",
                        help="cells per dispatch chunk for --jobs "
                             "(default auto-tuned)")
    parser.add_argument("--gate", type=float, default=None, metavar="R",
                        help="fail if parallel wall > R x serial wall "
                             "(requires --jobs; skipped on 1-CPU hosts); "
                             "stat divergence always fails")
    parser.add_argument("--lanes", type=int, default=0, metavar="L",
                        help="also measure the lane-batched engine: the "
                             "same cells in lockstep batches of L over "
                             "struct-of-arrays state (workers=1, so the "
                             "number isolates the lane engine)")
    parser.add_argument("--lane-gate", type=float, default=None,
                        metavar="R",
                        help="fail if the saturated lanes-vs-serial "
                             "speedup geomean < R (requires --lanes; "
                             "throughput check skipped on 1-CPU hosts); "
                             "identity divergence always fails")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help="output JSON path")
    args = parser.parse_args(argv)

    kernels = args.kernels or (list(QUICK_KERNELS) if args.quick
                               else kernel_names())
    scale = args.scale if args.scale is not None else \
        (0.25 if args.quick else 1.0)

    # pre-build every trace so neither pass's wall measures generation
    traces = build_suite(scale, kernels)
    serial, serial_stats, serial_wall = _serial_pass(
        kernels, scale, args.scheduler, args.commit, max(1, args.reps))
    total_cycles = sum(row["cycles"] for row in serial.values())
    total_seconds = sum(row["seconds"] for row in serial.values())
    geomean = math.exp(sum(math.log(row["kcps"])
                           for row in serial.values()) / len(serial))
    report = {
        "schema": "bench-speed/4",
        "scale": scale,
        "reps": max(1, args.reps),
        "scheduler": args.scheduler,
        "commit": args.commit,
        "serial": serial,
        "summary": {
            "total_cycles": total_cycles,
            "total_seconds": round(total_seconds, 4),
            "serial_wall_seconds": round(serial_wall, 4),
            "kcps": round(total_cycles / total_seconds / 1e3, 1)
            if total_seconds > 0 else 0.0,
            "geomean_kcps": round(geomean, 1),
        },
    }
    if args.jobs > 1:
        report["parallel"] = _parallel_pass(
            traces, args.scheduler, args.commit, args.jobs, args.chunk,
            serial_stats, serial_wall)
    if args.lanes > 1:
        report["lane"] = _lane_pass(
            traces, args.scheduler, args.commit, args.lanes,
            serial_stats, serial_wall)
        report["lane"]["saturated"] = _saturated_pass(
            traces, args.scheduler, args.commit, args.lanes,
            serial, serial_stats)

    exit_code = 0
    if args.gate is not None and "parallel" in report:
        exit_code = _apply_gate(report, args.gate)
    if args.lane_gate is not None and "lane" in report:
        exit_code = max(exit_code,
                        _apply_lane_gate(report, args.lane_gate))

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    width = max(len(k) for k in kernels)
    print(f"engine speed ({args.scheduler}/{args.commit}, scale "
          f"{scale:g}, min of {max(1, args.reps)} reps):")
    for kernel, row in serial.items():
        print(f"  {kernel:<{width}}  {row['cycles']:>9} cycles  "
              f"{row['seconds']:>8.3f}s  {row['kcps']:>8.1f} kcps")
    summary = report["summary"]
    print(f"  {'total':<{width}}  {summary['total_cycles']:>9} cycles  "
          f"{summary['total_seconds']:>8.3f}s  {summary['kcps']:>8.1f} "
          f"kcps (geomean {summary['geomean_kcps']:.1f})")
    if "parallel" in report:
        par = report["parallel"]
        print(f"  parallel x{par['jobs']} (chunk {par['chunk']}): "
              f"{par['wall_seconds']:.3f}s wall vs "
              f"{par['serial_wall_seconds']:.3f}s serial "
              f"({par['speedup']:.2f}x, {par['kcps']:.1f} kcps, "
              f"{par['trace_cache_hits']} trace-LRU hits, "
              f"stats {'identical' if par['identical'] else 'DIVERGED'})")
    if "lane" in report:
        lane = report["lane"]
        print(f"  lanes x{lane['lanes']}: {lane['wall_seconds']:.3f}s "
              f"wall vs {lane['serial_wall_seconds']:.3f}s serial "
              f"({lane['speedup']:.2f}x, {lane['kcps']:.1f} kcps, mean "
              f"{lane['mean_active_lanes']:.2f} active lanes over "
              f"{lane['batches']} batches, stats "
              f"{'identical' if lane['identical'] else 'DIVERGED'})")
        sat = lane.get("saturated")
        if sat is not None:
            for kernel, row in sat["per_kernel"].items():
                print(f"  {kernel:<{width}}  saturated x{sat['lanes']}: "
                      f"{row['wall_seconds']:>8.3f}s  "
                      f"{row['speedup']:>5.2f}x  "
                      f"{row['lane_serial_equiv_kcps']:>8.1f} "
                      f"serial-equiv kcps")
            print(f"  saturated x{sat['lanes']}: lanes-vs-serial geomean "
                  f"{sat['lanes_vs_serial_geomean']:.2f}x "
                  f"({sat['lane_serial_equiv_kcps']:.1f} serial-equiv "
                  f"kcps, stats "
                  f"{'identical' if sat['identical'] else 'DIVERGED'})")
    print(f"wrote {out_path}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
