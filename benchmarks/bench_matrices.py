"""§3 microbenchmarks: matrix scheduling is O(1) per cycle.

The paper's complexity argument: linked lists are O(n), timestamp
sorting O(log n), while one matrix operation arbitrates all entries in
parallel.  The software model reflects that as a *constant number of
vectorized matrix operations per cycle*, independent of how many
instructions are ready — measured here as select() calls per grant
batch and as the latency trend of the underlying operation.
"""

import numpy as np
import pytest

from repro.core import AgeMatrix, MergedCommitMatrix


def _fill(age, count, rng):
    entries = rng.choice(age.size, size=count, replace=False)
    for entry in entries:
        age.dispatch(int(entry))
    return entries


@pytest.mark.parametrize("size", [32, 96, 224, 512])
def test_select_oldest_single_operation(benchmark, size):
    """One bit-count selection per cycle regardless of queue size."""
    rng = np.random.default_rng(1)
    age = AgeMatrix(size)
    entries = _fill(age, size // 2, rng)
    request = np.zeros(size, dtype=bool)
    request[entries] = True

    def op():
        return age.select_oldest(request, 8)

    grants = benchmark(op)
    assert grants.sum() == 8


@pytest.mark.parametrize("size", [96, 224, 512])
def test_commit_check_single_operation(benchmark, size):
    rng = np.random.default_rng(2)
    merged = MergedCommitMatrix(size)
    entries = rng.choice(size, size=size // 2, replace=False)
    for i, entry in enumerate(entries):
        merged.dispatch(int(entry), speculative=bool(i % 3 == 0))
    completed = np.zeros(size, dtype=bool)
    completed[entries[: size // 4]] = True

    def op():
        return merged.select_commit(completed, 8)

    grants = benchmark(op)
    assert grants.dtype == bool


def test_grant_count_independent_of_ready_count(benchmark):
    """Selecting 8-of-16 and 8-of-200 both take one matrix operation —
    the hardware O(1) property the paper contrasts against AGE's
    O(issue-width) iteration."""
    age = AgeMatrix(224)
    rng = np.random.default_rng(3)
    entries = _fill(age, 200, rng)
    small = np.zeros(224, dtype=bool)
    small[entries[:16]] = True
    large = np.zeros(224, dtype=bool)
    large[entries] = True

    def both():
        a = age.select_oldest(small, 8)
        b = age.select_oldest(large, 8)
        return a, b

    a, b = benchmark(both)
    assert a.sum() == 8 and b.sum() == 8
