"""Queue-organization ablations (paper §2.1, Figure 1, §6.2 notes).

1. CIRC vs RAND issue queues: the circular queue's gaps cost capacity
   and therefore IPC (Figure 1(b)) — the motivation for free-list
   queues with an age matrix.
2. Commit depth: a limited commit scan loses part of the OoO-commit
   gain; Orinoco's unlimited window (§6.2) recovers it.
"""

from repro.harness import format_table
from repro.pipeline import base_config, simulate
from repro.workloads import build_trace

from conftest import publish, scale


def test_circ_vs_rand_iq(run_once):
    trace = build_trace("xalanc.hash", scale=scale())

    def run():
        return {org: simulate(trace, base_config(iq_org=org))
                for org in ("rand", "circ")}

    stats = run_once(run)
    publish("ablation_iq_org", format_table(
        ["IQ organization", "IPC", "IQ dispatch stalls"],
        [[org, f"{s.ipc:.3f}", s.stall_iq] for org, s in stats.items()],
        title="Ablation: CIRC vs RAND issue queue (Figure 1)"))
    # the circular queue's gap inefficiency must not *help*
    assert stats["rand"].ipc >= stats["circ"].ipc - 1e-9
    # and it manifests as extra IQ-full dispatch stalls
    assert stats["circ"].stall_iq >= stats["rand"].stall_iq


def test_commit_depth_sweep(run_once):
    """Restricting how far commit scans (SPEC-w/o-ROB-style reservation)
    forfeits gains; the unlimited window is strictly best."""
    trace = build_trace("xalanc.hash", scale=scale())

    def run():
        out = {}
        for depth in (8, 32, 64, None):
            config = base_config(commit="orinoco", commit_depth=depth)
            out[depth] = simulate(trace, config).ipc
        out["ioc"] = simulate(trace, base_config(commit="ioc")).ipc
        return out

    ipcs = run_once(run)
    publish("ablation_commit_depth", format_table(
        ["commit depth", "IPC"],
        [[str(d), f"{ipcs[d]:.3f}"] for d in (8, 32, 64, None, "ioc")],
        title="Ablation: commit scan depth (unlimited = Orinoco)"))
    # deeper scans recover more of the gain (tiny non-monotonicities can
    # appear from second-order DRAM timing shifts; the trend must hold)
    assert ipcs[64] >= ipcs[8]
    assert ipcs[None] >= ipcs[32] - 1e-9
    assert ipcs[None] > ipcs["ioc"]
    assert ipcs[8] > ipcs["ioc"] * 0.95
