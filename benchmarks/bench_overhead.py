"""§6.3 overheads: area/power vs the baseline core; design alternatives."""

from repro.circuit import overhead_report

from conftest import publish


def test_overhead(run_once):
    report = run_once(overhead_report)
    publish("overhead", report.format())
    assert 0.002 < report.area_overhead < 0.004       # paper 0.3%
    assert 0.004 < report.power_overhead < 0.008      # paper 0.6%
    assert abs(report.dynamic_logic_area_ratio - 3.75) < 0.01
    assert report.static_logic_max_size == 64
    assert 1.8 < report.collapsible_power_w < 2.4     # paper 2.1 W
    assert report.merging_savings > 0.35              # paper ~40%
