"""Figure 14: IPC improvements of priority scheduling.

Paper: Orinoco +6.5% avg (max +11.8%) over AGE; MULT 3.2% below
Orinoco; CRI w/ Orinoco adds ~2.1% over CRI w/ AGE.  The reproduction
must show the ordering RAND < AGE <= MULT <= Orinoco and
CRI w/ AGE <= CRI w/ Orinoco (see EXPERIMENTS.md for measured values).
"""

from repro.harness import fig14

from conftest import publish, scale


def test_fig14(run_once):
    result = run_once(fig14, scale=scale())
    publish("fig14", result.format())
    summary = result.summary
    # orderings the paper's Figure 14 establishes
    assert summary["Orinoco"] >= summary["MULT"] - 0.002
    assert summary["CRI w/ Orinoco"] >= summary["CRI w/ AGE"] - 0.002
    assert summary["Orinoco"] >= 0.99      # never a real regression
