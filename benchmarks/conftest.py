"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  Results are also
written to ``benchmarks/out/`` so they survive pytest's capture.

``REPRO_SCALE`` (default 1.0) scales workload sizes for quick runs.
``REPRO_JOBS`` (default 1) fans simulation cells out over that many
worker processes, and benchmarks cache results under
``benchmarks/.cache/`` by default (``REPRO_CACHE=0`` disables), so a
rerun of an unchanged figure is near-instant.
"""

import os
import pathlib
import time

import pytest

# benchmarks opt into the result cache unless the environment says no
os.environ.setdefault("REPRO_CACHE", "1")

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: benchmark node name -> elapsed wall-clock seconds (via run_once)
_ELAPSED = {}


def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def jobs() -> int:
    """Parallel simulation workers (``$REPRO_JOBS``, default 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def publish(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/out/."""
    elapsed = _ELAPSED.pop("__last__", None)
    if elapsed is not None:
        text += (f"\n\n[{name}: elapsed {elapsed:.2f}s, "
                 f"jobs={jobs()}, scale={scale()}]")
    # parents=True: out/ may be missing entirely on fresh clones
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


@pytest.fixture
def run_once(benchmark, request):
    """Run the experiment exactly once under pytest-benchmark timing."""
    def runner(func, *args, **kwargs):
        start = time.perf_counter()
        result = benchmark.pedantic(func, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1,
                                    warmup_rounds=0)
        elapsed = time.perf_counter() - start
        _ELAPSED[request.node.name] = elapsed
        _ELAPSED["__last__"] = elapsed
        return result
    return runner
