"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports.  Results are also
written to ``benchmarks/out/`` so they survive pytest's capture.

``REPRO_SCALE`` (default 1.0) scales workload sizes for quick runs.
"""

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def publish(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""
    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)
    return runner
