"""Figure 15: IPC improvements of out-of-order commit.

Paper: Orinoco +13.6% avg (max +34.2%) over IOC; VB w/o ECL and BR w/o
ECL degrade severely (paper: -41% / -53% relative to VB / BR); SPEC is
the upper bound; Orinoco beats the ROB-entries-only configuration.
"""

from repro.harness import fig15

from conftest import publish, scale


def test_fig15(run_once):
    result = run_once(fig15, scale=scale())
    publish("fig15", result.format())
    summary = result.summary
    # who wins
    assert summary["Orinoco"] > 1.01
    assert summary["SPEC"] >= summary["Orinoco"] - 0.005   # upper bound
    # removing ECL craters the FIFO-ROB designs
    assert summary["VB w/o ECL"] < summary["VB"]
    assert summary["BR w/o ECL"] < summary["BR"]
    # unordered ROB reclamation beats reclaiming ROB entries alone
    assert summary["Orinoco"] >= summary["ROB"]
    # the biggest single-workload win should be substantial (paper 34.2%)
    best = max(v["Orinoco"] for v in result.per_workload.values())
    assert best > 1.15
