"""Ablations of the design choices DESIGN.md documents.

1. Wrong-path contention modeling: without it, issue selection policies
   converge (the substitution note for execution-driven fetch).
2. Memory dependence speculation: speculative issue past unresolved
   stores vs conservative waiting (§3.3's motivation).
3. Stream prefetching: the paper's 64-stream prefetcher in Table 1.
"""

import dataclasses

from repro.harness import format_table
from repro.memory import HierarchyConfig
from repro.pipeline import base_config, simulate
from repro.workloads import build_trace

from conftest import publish, scale


def test_wrong_path_ablation(run_once):
    """Without wrong-path contention, RAND ~= Orinoco; with it, the
    Figure 14 gap appears."""
    trace = build_trace("leela.chains", scale=scale())

    def run():
        out = {}
        for modeled in (True, False):
            for sched in ("rand", "orinoco"):
                config = base_config(scheduler=sched,
                                     model_wrong_path=modeled)
                out[(modeled, sched)] = simulate(trace, config).ipc
        return out

    ipcs = run_once(run)
    with_gap = ipcs[(True, "orinoco")] / ipcs[(True, "rand")]
    without_gap = ipcs[(False, "orinoco")] / ipcs[(False, "rand")]
    publish("ablation_wrong_path", format_table(
        ["wrong-path modeled", "RAND IPC", "Orinoco IPC", "ratio"],
        [[m, f"{ipcs[(m, 'rand')]:.3f}", f"{ipcs[(m, 'orinoco')]:.3f}",
          f"{ipcs[(m, 'orinoco')] / ipcs[(m, 'rand')]:.3f}"]
         for m in (True, False)],
        title="Ablation: wrong-path contention"))
    assert with_gap > without_gap - 0.005
    assert with_gap > 1.02


def test_mem_dep_speculation_ablation(run_once):
    """Speculative load issue beats conservative waiting on code with
    unresolved-but-non-aliasing stores."""
    trace = build_trace("sjeng.listupd", scale=scale())

    def run():
        return {policy: simulate(trace,
                                 base_config(mem_dep_policy=policy))
                for policy in ("speculate", "conservative")}

    stats = run_once(run)
    publish("ablation_memdep", format_table(
        ["policy", "IPC", "violations"],
        [[p, f"{s.ipc:.3f}", s.mem_order_violations]
         for p, s in stats.items()],
        title="Ablation: memory dependence speculation"))
    assert stats["speculate"].ipc >= stats["conservative"].ipc * 0.98
    assert stats["conservative"].mem_order_violations == 0


def test_prefetcher_ablation(run_once):
    """The stream prefetcher mostly hides sequential misses."""
    trace = build_trace("lbm.stream", scale=scale())

    def run():
        on = simulate(trace, base_config())
        off_mem = dataclasses.replace(HierarchyConfig(),
                                      prefetch_streams=0)
        off = simulate(trace, base_config(memory=off_mem))
        return on, off

    on, off = run_once(run)
    publish("ablation_prefetch", format_table(
        ["prefetcher", "IPC", "dram requests"],
        [["64 streams", f"{on.ipc:.3f}", on.memory["dram_requests"]],
         ["off", f"{off.ipc:.3f}", off.memory["dram_requests"]]],
        title="Ablation: stream prefetcher"))
    assert on.ipc >= off.ipc


def test_predictor_ablation(run_once):
    """TAGE vs gshare vs bimodal on the branchy kernel."""
    trace = build_trace("perl.branchy", scale=scale())

    def run():
        return {kind: simulate(trace, base_config(predictor=kind))
                for kind in ("tage", "gshare", "bimodal", "oracle")}

    stats = run_once(run)
    publish("ablation_predictor", format_table(
        ["predictor", "IPC", "accuracy"],
        [[k, f"{s.ipc:.3f}", f"{s.predictor_accuracy:.3f}"]
         for k, s in stats.items()],
        title="Ablation: branch predictors"))
    assert stats["oracle"].ipc >= stats["tage"].ipc
    assert stats["tage"].predictor_accuracy >= \
        stats["bimodal"].predictor_accuracy - 0.02
