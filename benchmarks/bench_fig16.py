"""Figure 16: sensitivity of the gains to core size (Base/Pro/Ultra).

Paper: the synergistic configuration gains 14.8% on average, up to
25.6% for large cores; gains persist across sizes.
"""

from repro.harness import fig16

from conftest import publish, scale


def test_fig16(run_once):
    result = run_once(fig16, scale=scale())
    publish("fig16", result.format())
    summary = result.summary
    for preset in ("base", "pro", "ultra"):
        assert summary[f"{preset}: synergy"] > 1.0
        # synergy combines both mechanisms: at least as good as the
        # weaker of the two individual ones
        floor = min(summary[f"{preset}: priority"],
                    summary[f"{preset}: ooo-commit"])
        assert summary[f"{preset}: synergy"] >= floor - 0.01
