"""Table 2: memory parameters of the PIM matrix schedulers."""

from repro.circuit import (PAPER_TABLE2, format_table2, table2,
                           verify_six_sigma, BitlineModel)

from conftest import publish


def test_table2(run_once):
    rows = run_once(table2)
    publish("table2", format_table2(rows))
    by_name = {row.name: row for row in rows}
    for name, paper in PAPER_TABLE2.items():
        row = by_name[name]
        assert abs(row.area_mm2 - paper["area_mm2"]) \
            / paper["area_mm2"] < 0.05
        assert abs(row.latency_ps - paper["latency_ps"]) \
            / paper["latency_ps"] < 0.16
        assert paper["power_w"] / 2 < row.power_w < paper["power_w"] * 2


def test_montecarlo_stability(run_once):
    """Paper §6.1: 'more than six sigma stability'."""
    model = BitlineModel(96)
    stable = run_once(verify_six_sigma, model, 8, 5000)
    publish("table2_montecarlo",
            f"bit count sensing six-sigma stable up to IW=8: {stable}")
    assert stable
