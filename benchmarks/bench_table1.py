"""Table 1: microarchitecture configurations (Base / Pro / Ultra)."""

from repro.harness import table1
from repro.pipeline import make_config, simulate
from repro.workloads import build_trace

from conftest import publish, scale


def test_table1(run_once):
    text = run_once(table1)
    publish("table1", text)
    assert "4/4" in text and "6/6" in text and "8/8" in text
    assert "224" in text and "512" in text


def test_table1_presets_simulate(run_once):
    """Each Table 1 preset runs the same kernel; wider cores are not
    slower."""
    trace = build_trace("gcc.mix", scale=min(scale(), 0.5))
    def run_all():
        return {preset: simulate(trace, make_config(preset)).ipc
                for preset in ("base", "pro", "ultra")}
    ipcs = run_once(run_all)
    publish("table1_ipc", "\n".join(
        f"{preset}: IPC {value:.3f}" for preset, value in ipcs.items()))
    assert ipcs["ultra"] >= ipcs["base"] * 0.95
