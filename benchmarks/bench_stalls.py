"""§2.2 / §6.2 stall statistics.

Paper: completed-but-blocked instructions appear in 72% of commit-stall
cycles (76% during full-window stalls); Orinoco removes ~65% of
full-window stalls, unclogging ROB (67%), LQ (55%) and REG (~all).
"""

from repro.harness import stall_breakdown

from conftest import publish, scale


def test_stall_breakdown(run_once):
    result = run_once(stall_breakdown, scale=scale())
    lines = ["Stall statistics (paper §2.2 / §6.2)"]
    for label in ("IOC", "Orinoco"):
        data = result[label]
        lines.append(
            f"  {label}: commit stalls {data['commit_stalls']}, "
            f"ready-not-head {data['ready_not_head_frac']:.0%} "
            f"(paper 72%), during full-window "
            f"{data['fw_ready_frac']:.0%} (paper 76%), "
            f"full-window stalls {data['full_window']}")
    reduction = result.get("reduction", {})
    if reduction:
        lines.append(
            f"  Orinoco reduces full-window stalls by "
            f"{reduction['full_window_stalls']:.0%} (paper 65%); "
            f"ROB stalls by {reduction['rob_stalls']:.0%} (paper 67%)")
    publish("stalls", "\n".join(lines))

    ioc = result["IOC"]
    # a meaningful fraction of commit stalls have ready work blocked
    # (paper: 72%; we measure ~75%)
    assert ioc["ready_not_head_frac"] > 0.2
    # Orinoco reduces ROB-exhaustion stalls substantially; the
    # *total* full-window reduction is diluted by IQ-bound kernels
    # (see EXPERIMENTS.md) but must still be positive
    assert result["reduction"]["rob_stalls"] > 0.1
    assert result["reduction"]["full_window_stalls"] > 0.02
