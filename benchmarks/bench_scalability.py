"""§6.4 scalability: matrix timing across sizes; the ROB-512 fix."""

from repro.circuit import format_scalability, scalability_report

from conftest import publish


def test_scalability(run_once):
    rows = run_once(scalability_report)
    publish("scalability", format_scalability(rows))
    by_size = {row.rows: row for row in rows}
    assert by_size[96].meets_2ghz
    assert by_size[224].meets_2ghz
    assert not by_size[512].meets_2ghz          # paper: needs splitting
    assert by_size[512].required_splits >= 2
    fixed = by_size[512]
    assert fixed.split_latency_ps <= 500.0
