"""Commit policies: in-order, Orinoco, and prior-work comparisons."""

from .policies import (CherryCommit, CherryNoRobCommit, CommitPolicy,
                       DescCommit, InOrderCommit, NorebaCommit,
                       NorebaNoEclCommit, OrinocoCommit, RobOnlyCommit,
                       ValidationBufferCommit, ValidationBufferNoEclCommit,
                       make_commit_policy)

__all__ = ["CherryCommit", "CherryNoRobCommit", "CommitPolicy", "DescCommit",
           "InOrderCommit", "NorebaCommit", "NorebaNoEclCommit",
           "OrinocoCommit", "RobOnlyCommit", "ValidationBufferCommit",
           "ValidationBufferNoEclCommit", "make_commit_policy"]
