"""Commit policies (paper §2.2, §3.2, Figure 15).

Each policy decides, per cycle, which ROB-resident instructions retire.
They differ in three dimensions: the order of ROB reclamation
(in-order / skip-branches / fully out-of-order), which of the Bell &
Lipasti commit conditions they relax, and when non-ROB resources
(registers, LQ entries) are released.

| name       | models                 | ROB release | relaxations          |
|------------|------------------------|-------------|----------------------|
| ioc        | baseline               | in order    | none                 |
| orinoco    | this paper             | OoO (matrix)| order only (non-spec)|
| vb         | Validation Buffer [49] | in order    | completion (+ECL)    |
| vb_noecl   | VB, loads must perform | in order    | completion           |
| br         | NOREBA [27] bound      | skip branches| branch cond (+ECL)  |
| br_noecl   | NOREBA, loads perform  | skip branches| branch cond         |
| spec       | Cherry [50] bound      | OoO         | all (oracle)         |
| spec_norob | Cherry, ROB reserved   | in order    | all but ROB          |
| ecl        | DeSC [28]              | in order    | load completion      |
| rob        | ROB-entries-only OoO   | OoO (matrix)| order; regs/LQ inorder|

A policy only *selects*; the core's ``retire`` applies the release
semantics using the policy's attribute flags.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from ..pipeline.events import EventType, MatrixEvent

_MATRIX = EventType.MATRIX


class CommitPolicy(abc.ABC):
    """One commit strategy."""

    name = "abstract"
    #: loads may commit once safe, before being performed (ECL)
    ecl = False
    #: non-memory, non-branch instructions may retire before completing
    allow_incomplete = False
    #: registers / LQ entries released as soon as execution completes
    release_at_completion = False
    #: registers / LQ releases deferred to the in-order commit point
    defer_release_inorder = False
    #: branch outcomes treated as oracle-known (never block commit)
    oracle_branches = False

    @abc.abstractmethod
    def commit(self, core, cycle: int) -> int:
        """Retire instructions; return how many committed."""

    # -- shared helpers ---------------------------------------------------

    def _inorder_walk(self, core, cycle: int, committable) -> int:
        committed = 0
        window = core.window
        width = core.config.commit_width
        # retiring the head re-exposes the next instruction as the new
        # head, so the walk peeks the head each iteration instead of
        # snapshotting the (possibly huge) window into a list
        while committed < width:
            op = next(iter(window.values()), None)
            if op is None or not committable(op):
                break
            core.retire(op, cycle, zombie=not op.completed)
            committed += 1
        return committed


def _matrix_commit(core, cycle: int) -> int:
    """Shared Orinoco-style commit: gather completed candidates, check
    them against the merged age/SPEC matrix, grant up to CW oldest via
    the bit count encoding, retire."""
    if not core.commit_candidates:
        return 0
    depth = core.config.commit_depth
    horizon = None
    if depth is not None and len(core.window) > depth:
        # limited commit depth: only the `depth` oldest window entries
        # are scanned (the contrast to Orinoco's unlimited window, §6.2)
        for index, seq in enumerate(core.window):
            if index == depth - 1:
                horizon = seq
                break
    eligible = core.rob_scratch
    eligible[:] = False
    candidates = {}
    for seq in core.commit_candidates:
        if horizon is not None and seq > horizon:
            continue
        op = core.window.get(seq)
        if op is not None and core.locally_committable(op, ecl=False):
            eligible[op.rob_entry] = True
            candidates[op.rob_entry] = op
    if not candidates:
        return 0
    core.stats.rob_check_ops += 1
    core.stats.rob_check_rows += len(candidates)
    bus = core.bus
    if bus.live[_MATRIX]:
        bus.publish(MatrixEvent(cycle, "rob", "check", len(candidates)))
    grants = core.merged.select_commit(eligible, core.config.commit_width)
    committed = 0
    if np.count_nonzero(grants):
        for entry in np.flatnonzero(grants):
            core.retire(candidates[int(entry)], cycle)
            committed += 1
    return committed


class InOrderCommit(CommitPolicy):
    """IOC: the head commits when complete; everything else waits."""

    name = "ioc"

    def commit(self, core, cycle: int) -> int:
        # open-coded _inorder_walk: this is the stock policy the speed
        # benches run, so skip the per-tick closure allocation and call
        # the legality check positionally
        committed = 0
        window = core.window
        width = core.config.commit_width
        committable = core.locally_committable
        retire = core.retire
        while committed < width:
            op = next(iter(window.values()), None)
            if op is None or not committable(op, False):
                break
            retire(op, cycle, zombie=not op.completed)
            committed += 1
        return committed


class OrinocoCommit(CommitPolicy):
    """Unordered commit through the merged age/SPEC matrix (§3.2).

    Completed instructions anywhere in the non-collapsible ROB commit
    once no older instruction can raise misspeculation or an exception;
    the bit count encoding picks up to CW oldest eligible per cycle.
    """

    name = "orinoco"

    def commit(self, core, cycle: int) -> int:
        return _matrix_commit(core, cycle)


class ValidationBufferCommit(CommitPolicy):
    """VB: instructions leave the ROB in order once non-speculative,
    without waiting for completion (post-commit execution)."""

    name = "vb"
    ecl = True
    allow_incomplete = True

    def commit(self, core, cycle: int) -> int:
        return self._inorder_walk(
            core, cycle,
            lambda op: core.vb_committable(op, ecl=self.ecl))


class ValidationBufferNoEclCommit(ValidationBufferCommit):
    """VB under a stronger consistency model: loads must perform."""

    name = "vb_noecl"
    ecl = False


class NorebaCommit(CommitPolicy):
    """BR: upper bound of relaxing the branch condition (NOREBA).

    The in-order scan skips unresolved branches (oracle-correct path),
    so younger completed instructions commit past them; any other
    incomplete instruction still blocks."""

    name = "br"
    ecl = True
    oracle_branches = True

    def commit(self, core, cycle: int) -> int:
        committed = 0
        for op in list(core.window.values()):
            if committed >= core.config.commit_width:
                break
            if op.dyn.is_branch and not op.completed:
                continue           # skip: branch condition is oracle
            if not core.locally_committable(op, ecl=self.ecl):
                break
            core.retire(op, cycle, zombie=not op.completed)
            committed += 1
        return committed


class NorebaNoEclCommit(NorebaCommit):
    """BR without early commit of loads."""

    name = "br_noecl"
    ecl = False


class CherryCommit(CommitPolicy):
    """SPEC: oracle speculative commit without rollback cost — any
    completed instruction may retire, all resources released."""

    name = "spec"
    oracle_branches = True

    def commit(self, core, cycle: int) -> int:
        committed = 0
        for seq in sorted(core.commit_candidates):
            if committed >= core.config.commit_width:
                break
            op = core.window.get(seq)
            if op is None:
                continue
            if core.locally_committable(op, ecl=False, ignore_global=True):
                core.retire(op, cycle)
                committed += 1
        return committed


class CherryNoRobCommit(CommitPolicy):
    """SPEC w/o ROB: Cherry proper — registers and LQ entries recycle at
    completion, but ROB entries are reserved until the in-order point."""

    name = "spec_norob"
    oracle_branches = True
    release_at_completion = True

    def commit(self, core, cycle: int) -> int:
        return self._inorder_walk(
            core, cycle,
            lambda op: core.locally_committable(op, ecl=False,
                                                ignore_global=True))


class DescCommit(CommitPolicy):
    """ECL: DeSC-style early commit of non-performed loads (weak
    consistency only); otherwise in-order."""

    name = "ecl"
    ecl = True

    def commit(self, core, cycle: int) -> int:
        return self._inorder_walk(
            core, cycle,
            lambda op: core.locally_committable(op, ecl=True))


class RobOnlyCommit(CommitPolicy):
    """ROB: entries reclaim out of order like Orinoco, but registers and
    LQ entries release only at the in-order point — isolates the value
    of unordered ROB reclamation."""

    name = "rob"
    defer_release_inorder = True

    def commit(self, core, cycle: int) -> int:
        return _matrix_commit(core, cycle)


_POLICIES = {
    policy.name: policy for policy in (
        InOrderCommit, OrinocoCommit, ValidationBufferCommit,
        ValidationBufferNoEclCommit, NorebaCommit, NorebaNoEclCommit,
        CherryCommit, CherryNoRobCommit, DescCommit, RobOnlyCommit)
}


def make_commit_policy(name: str) -> CommitPolicy:
    try:
        return _POLICIES[name.lower()]()
    except KeyError as exc:
        raise ValueError(f"unknown commit policy {name!r}") from exc
