"""Three-level cache hierarchy with MSHRs, prefetching, and DRAM.

Latency composition follows Table 1: L1 32KB/8-way/4-cycle, L2
256KB/8-way/12-cycle, LLC 1MB/16-way/36-cycle, DDR4 behind it.  The
hierarchy is shared by demand loads (issued at execute), committed
stores (drained from the store buffer), and prefetch fills.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cache import Cache
from .dram import DRAMModel
from .prefetcher import StreamPrefetcher


@dataclass
class HierarchyConfig:
    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_ways: int = 8
    l1_latency: int = 4
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    l2_latency: int = 12
    llc_size: int = 1024 * 1024
    llc_ways: int = 16
    llc_latency: int = 36
    dram_latency: int = 180
    dram_banks: int = 16
    mshrs: int = 32
    prefetch_streams: int = 64
    prefetch_degree: int = 2


class MemoryHierarchy:
    """L1 → L2 → LLC → DRAM with a stream prefetcher at the L1."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.l1 = Cache("L1D", cfg.l1_size, cfg.l1_ways, cfg.l1_latency,
                        cfg.line_size)
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_ways, cfg.l2_latency,
                        cfg.line_size)
        self.llc = Cache("LLC", cfg.llc_size, cfg.llc_ways, cfg.llc_latency,
                         cfg.line_size)
        self.dram = DRAMModel(cfg.dram_latency, cfg.dram_banks, cfg.line_size)
        self.prefetcher = StreamPrefetcher(cfg.prefetch_streams,
                                           cfg.prefetch_degree, cfg.line_size)
        #: line id -> cycle at which an in-flight fill completes
        self._pending: Dict[int, int] = {}
        self.mshr_stalls = 0
        self.demand_accesses = 0
        self.prefetch_hits = 0

    # -- internals --------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr // self.config.line_size

    def _expire_pending(self, cycle: int) -> None:
        done = [line for line, ready in self._pending.items()
                if ready <= cycle]
        for line in done:
            del self._pending[line]

    def _miss_path_latency(self, addr: int, cycle: int) -> int:
        """Latency past a missing L1, filling lines on the way back."""
        cfg = self.config
        if self.l2.lookup(addr):
            latency = cfg.l2_latency
        elif self.llc.lookup(addr):
            latency = cfg.llc_latency
            self.l2.insert(addr)
        else:
            latency = cfg.llc_latency + self.dram.access(addr, cycle)
            self.llc.insert(addr)
            self.l2.insert(addr)
        self.l1.insert(addr)
        return latency

    def _issue_prefetches(self, addr: int, cycle: int) -> None:
        for target in self.prefetcher.on_miss(addr):
            line = self._line(target)
            if line in self._pending or self.l1.contains(target):
                continue
            if len(self._pending) >= self.config.mshrs:
                break
            # prefetch fills bypass demand stats
            latency = self._miss_path_latency(target, cycle)
            self._pending[line] = cycle + latency

    # -- public interface -----------------------------------------------

    def load(self, addr: int, cycle: int) -> Optional[int]:
        """Demand load at ``cycle``; returns total latency, or None when
        no MSHR is free (the load must retry)."""
        cfg = self.config
        self._expire_pending(cycle)
        self.demand_accesses += 1
        line = self._line(addr)
        if line in self._pending:
            # merge with the in-flight fill
            self.prefetch_hits += 1
            return max(cfg.l1_latency, self._pending[line] - cycle)
        if self.l1.lookup(addr):
            return cfg.l1_latency
        if len(self._pending) >= cfg.mshrs:
            self.mshr_stalls += 1
            self.l1.misses -= 1   # retried access; don't double count
            self.l1.accesses -= 1
            return None
        latency = cfg.l1_latency + self._miss_path_latency(addr, cycle)
        self._pending[line] = cycle + latency
        self._issue_prefetches(addr, cycle)
        return latency

    def store(self, addr: int, cycle: int) -> Optional[int]:
        """Committed store drained from the store buffer.

        Write-allocate through the MSHRs: a missing store claims a fill
        buffer and completes into it when the line arrives, so the
        store buffer is not serialized on miss latency.  Returns the
        L1 write latency, or None when no MSHR is free (drain retries).
        """
        cfg = self.config
        self._expire_pending(cycle)
        line = self._line(addr)
        if line in self._pending:
            return cfg.l1_latency            # merge into the fill
        if self.l1.lookup(addr, is_write=True):
            return cfg.l1_latency
        if len(self._pending) >= cfg.mshrs:
            self.mshr_stalls += 1
            self.l1.misses -= 1
            self.l1.accesses -= 1
            return None
        latency = cfg.l1_latency + self._miss_path_latency(addr, cycle)
        self._pending[line] = cycle + latency
        self.l1.lookup(addr, is_write=True)   # mark dirty post-fill
        return cfg.l1_latency

    def stats(self) -> dict:
        return {
            "l1_miss_rate": self.l1.miss_rate(),
            "l2_miss_rate": self.l2.miss_rate(),
            "llc_miss_rate": self.llc.miss_rate(),
            "dram_requests": self.dram.requests,
            "mshr_stalls": self.mshr_stalls,
            "prefetches_issued": self.prefetcher.issued,
        }
