"""Data TLB with page-walk latency and page-fault signalling.

Page faults matter to the commit analysis (§3.2): a memory operation is
speculative until its address translates successfully, which happens at
execute — early in the pipeline — rather than when the access completes.
The workload layer injects faults via ``DynInstr.fault`` to exercise
precise-exception handling; normal translation never faults.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class TranslationResult:
    latency: int
    fault: bool


class TLB:
    """Fully-associative LRU TLB."""

    def __init__(self, entries: int = 64, page_size: int = 4096,
                 walk_latency: int = 30):
        self.entries = entries
        self.page_size = page_size
        self.walk_latency = walk_latency
        self._table: "OrderedDict[int, bool]" = OrderedDict()
        self.accesses = 0
        self.misses = 0
        self.faults = 0

    def translate(self, addr: int, fault: bool = False) -> TranslationResult:
        """Translate ``addr``; ``fault`` forces a page fault (test hook)."""
        self.accesses += 1
        if fault:
            self.faults += 1
            return TranslationResult(latency=self.walk_latency, fault=True)
        page = addr // self.page_size
        if page in self._table:
            self._table.move_to_end(page)
            return TranslationResult(latency=0, fault=False)
        self.misses += 1
        if len(self._table) >= self.entries:
            self._table.popitem(last=False)
        self._table[page] = True
        return TranslationResult(latency=self.walk_latency, fault=False)

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
