"""DRAM latency model (DDR4-2400 behind the LLC).

A bank-aware fixed-service-time model: each of ``banks`` banks serves
one request at a time with ``access_latency`` core cycles of service;
requests to a busy bank queue behind it.  This captures the two DRAM
behaviours the evaluation depends on: long latency (the full-window
stalls that out-of-order commit unclogs) and bandwidth saturation under
MLP (so prefetching and OoO commit cannot create infinite overlap).
"""

from __future__ import annotations


class DRAMModel:
    """Per-bank queued fixed-latency DRAM."""

    def __init__(self, access_latency: int = 180, banks: int = 16,
                 line_size: int = 64):
        self.access_latency = access_latency
        self.banks = banks
        self.line_size = line_size
        self._bank_free_at = [0] * banks
        self.requests = 0
        self.total_latency = 0

    def _bank(self, addr: int) -> int:
        line = addr // self.line_size
        # XOR-fold higher address bits into the bank index so power-of-two
        # strides do not all land on one bank (address interleaving).
        return (line ^ (line >> 4) ^ (line >> 8)) % self.banks

    def access(self, addr: int, cycle: int) -> int:
        """Issue a request at ``cycle``; return its completion latency."""
        bank = self._bank(addr)
        start = max(cycle, self._bank_free_at[bank])
        finish = start + self.access_latency
        self._bank_free_at[bank] = finish
        latency = finish - cycle
        self.requests += 1
        self.total_latency += latency
        return latency

    def average_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0
