"""Memory hierarchy: caches, DRAM, prefetcher, TLB."""

from .cache import Cache
from .dram import DRAMModel
from .hierarchy import HierarchyConfig, MemoryHierarchy
from .prefetcher import StreamPrefetcher
from .tlb import TLB, TranslationResult

__all__ = ["Cache", "DRAMModel", "HierarchyConfig", "MemoryHierarchy",
           "StreamPrefetcher", "TLB", "TranslationResult"]
