"""Set-associative cache with LRU replacement and write-back state."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple


class Cache:
    """One cache level.  Addresses are byte addresses; tags are line ids."""

    def __init__(self, name: str, size_bytes: int, ways: int,
                 hit_latency: int, line_size: int = 64):
        if size_bytes % (ways * line_size):
            raise ValueError(f"{name}: size not divisible by ways*line")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (ways * line_size)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count must be a power of two")
        # per-set OrderedDict: line_id -> dirty flag, LRU order
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.hits = 0
        self.misses = 0

    def line_id(self, addr: int) -> int:
        return addr // self.line_size

    def _set_for(self, line: int) -> OrderedDict:
        return self._sets[line & (self.num_sets - 1)]

    def lookup(self, addr: int, is_write: bool = False) -> bool:
        """Probe; True on hit.  Updates LRU and dirty state."""
        line = self.line_id(addr)
        cache_set = self._set_for(line)
        self.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Probe without statistics or LRU effects (snooping/tests)."""
        line = self.line_id(addr)
        return line in self._set_for(line)

    def insert(self, addr: int, dirty: bool = False
               ) -> Optional[Tuple[int, bool]]:
        """Fill a line; returns (evicted line id, was dirty) if any."""
        line = self.line_id(addr)
        cache_set = self._set_for(line)
        victim = None
        if line in cache_set:
            cache_set.move_to_end(line)
            cache_set[line] = cache_set[line] or dirty
            return None
        if len(cache_set) >= self.ways:
            victim_line, victim_dirty = cache_set.popitem(last=False)
            victim = (victim_line, victim_dirty)
        cache_set[line] = dirty
        return victim

    def invalidate(self, addr: int) -> bool:
        line = self.line_id(addr)
        cache_set = self._set_for(line)
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (f"<Cache {self.name} {self.size_bytes // 1024}KB "
                f"{self.ways}-way miss_rate={self.miss_rate():.3f}>")
