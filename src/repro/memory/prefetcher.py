"""Stream prefetcher (the paper's "64 streams" configuration).

Classic next-line stream prefetcher: on a demand miss it checks whether
the miss extends an existing stream (successive cache lines in one
direction); confirmed streams prefetch ``degree`` lines ahead.  The
hierarchy turns the returned line addresses into in-flight fills.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List


class StreamPrefetcher:
    """Tracks up to ``streams`` independent access streams."""

    def __init__(self, streams: int = 64, degree: int = 2,
                 line_size: int = 64):
        self.max_streams = streams
        self.degree = degree
        self.line_size = line_size
        # stream id (starting line) -> (last line, direction, confidence)
        self._streams: "OrderedDict[int, tuple]" = OrderedDict()
        self.issued = 0

    def on_miss(self, addr: int) -> List[int]:
        """Record a demand miss; return byte addresses to prefetch."""
        line = addr // self.line_size
        prefetches: List[int] = []
        if self.max_streams <= 0:
            return prefetches
        matched = None
        for sid, (last, direction, confidence) in self._streams.items():
            if line == last + direction:
                matched = (sid, line, direction, min(confidence + 1, 4))
                break
        if matched:
            sid, line, direction, confidence = matched
            self._streams[sid] = (line, direction, confidence)
            self._streams.move_to_end(sid)
            if confidence >= 2:
                for ahead in range(1, self.degree + 1):
                    prefetches.append((line + direction * ahead)
                                      * self.line_size)
                self.issued += len(prefetches)
            return prefetches
        # try to pair with a previous lone miss to learn direction
        for sid, (last, direction, confidence) in list(self._streams.items()):
            if confidence == 0 and abs(line - last) == 1:
                self._streams[sid] = (line, line - last, 1)
                self._streams.move_to_end(sid)
                return prefetches
        # new candidate stream
        if len(self._streams) >= self.max_streams:
            self._streams.popitem(last=False)
        self._streams[line] = (line, 1, 0)
        return prefetches
