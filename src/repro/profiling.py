"""Performance profiling of the simulator itself (``repro profile``).

Three views of where engine time goes, all over a single kernel run:

* **Per-stage attribution** — each of the seven pipeline stage ``tick``
  callables is wrapped with a wall-clock accumulator, splitting stepped
  engine time between fetch/dispatch/issue/execute/memory/writeback/
  commit.  Time outside the ticks (driver loop, per-cycle stats,
  quiescent-cycle fast-forward) is reported as a separate residual.
* **Event-bus attribution** (``--events``) — a counting subscriber per
  event type, showing which pipeline activities dominate.  Attaching
  live subscribers disables the quiescent-cycle fast-forward, so this
  view reflects the fully stepped engine.
* **cProfile** (``--cprofile N``) — the standard function-level profile
  of the whole run, top-N rows.

With ``--lanes N > 1`` the per-stage view profiles a lane *batch*
instead (``profile_lanes``): N copies of the kernel step in lockstep
and time splits into scalar stage buckets (summed over lanes) and the
cross-lane vectorized kernel buckets of
:mod:`repro.pipeline.vectorstages`.

The profiled run is a real run: statistics are bit-identical to an
unprofiled simulation (timer wrappers do not alter behaviour).
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import pstats
import time
from typing import Dict, List, Optional

from .pipeline import O3Core, make_config
from .pipeline.events import EventType
from .pipeline.lanes import LaneBatch, LaneCell
from .pipeline.stages import (CommitStage, DispatchStage, ExecuteStage,
                              FetchStage, IssueStage, MemoryStage,
                              WritebackStage)
from .workloads import build_trace


@dataclasses.dataclass
class StageTiming:
    """Wall-clock attribution for one pipeline stage."""
    name: str
    seconds: float
    calls: int


@dataclasses.dataclass
class ProfileReport:
    """Everything ``repro profile`` measured on one kernel run."""
    kernel: str
    scale: float
    preset: str
    scheduler: str
    commit: str
    cycles: int
    instructions: int
    wall_seconds: float
    stepped_cycles: int
    stages: List[StageTiming]
    event_counts: Optional[Dict[str, int]] = None
    cprofile_text: Optional[str] = None

    @property
    def kilocycles_per_second(self) -> float:
        return self.cycles / self.wall_seconds / 1e3 if \
            self.wall_seconds > 0 else 0.0

    def format(self) -> str:
        skipped = self.cycles - self.stepped_cycles
        lines = [
            f"profile: {self.kernel} scale {self.scale:g} "
            f"({self.preset}/{self.scheduler}/{self.commit})",
            f"  {self.cycles} cycles, {self.instructions} instructions, "
            f"wall {self.wall_seconds:.3f}s "
            f"({self.kilocycles_per_second:.1f} kcycles/s)",
            f"  fast-forward: {skipped} of {self.cycles} cycles skipped "
            f"({skipped / self.cycles:.1%})" if self.cycles else
            "  fast-forward: n/a",
        ]
        stage_total = sum(stage.seconds for stage in self.stages)
        if self.stages:
            lines.append("  per-stage time (stepped cycles only):")
            width = max(len(stage.name) for stage in self.stages)
            for stage in sorted(self.stages, key=lambda t: -t.seconds):
                share = stage.seconds / self.wall_seconds \
                    if self.wall_seconds > 0 else 0.0
                lines.append(f"    {stage.name:<{width}}  "
                             f"{stage.seconds:7.3f}s  {share:5.1%}  "
                             f"({stage.calls} ticks)")
            residual = max(0.0, self.wall_seconds - stage_total)
            share = residual / self.wall_seconds \
                if self.wall_seconds > 0 else 0.0
            lines.append(f"    {'driver/ff/stats':<{width}}  "
                         f"{residual:7.3f}s  {share:5.1%}")
        if self.event_counts is not None:
            lines.append("  event counts (instrumented run, "
                         "fast-forward disabled):")
            for name, count in sorted(self.event_counts.items(),
                                      key=lambda kv: -kv[1]):
                if count:
                    lines.append(f"    {name:<16} {count}")
        if self.cprofile_text:
            lines.append("")
            lines.append(self.cprofile_text.rstrip())
        return "\n".join(lines)


@dataclasses.dataclass
class LaneProfileReport:
    """Per-stage attribution for a lane-batched run (``--lanes N``).

    Scalar buckets aggregate each stage's tick time across every lane
    (both the per-lane scalar phases of the vector engine and any
    full-fallback lanes); vectorized buckets (``vec:`` prefix) are the
    cross-lane fused kernels, which execute once per driver iteration
    for all active lanes together.
    """
    kernel: str
    scale: float
    preset: str
    scheduler: str
    commit: str
    lanes: int
    cells: int
    cycles: int
    instructions: int
    wall_seconds: float
    steps: int
    lane_steps: int
    buckets: List[StageTiming]
    cprofile_text: Optional[str] = None

    @property
    def kilocycles_per_second(self) -> float:
        """Serial-equivalent rate: simulated cycles summed across all
        cells divided by wall time."""
        return self.cycles / self.wall_seconds / 1e3 if \
            self.wall_seconds > 0 else 0.0

    @property
    def mean_active_lanes(self) -> float:
        return self.lane_steps / self.steps if self.steps else 0.0

    def format(self) -> str:
        lines = [
            f"profile: {self.kernel} scale {self.scale:g} "
            f"({self.preset}/{self.scheduler}/{self.commit}) "
            f"x{self.cells} cells on {self.lanes} lanes",
            f"  {self.cycles} simulated cycles, "
            f"{self.instructions} instructions, "
            f"wall {self.wall_seconds:.3f}s "
            f"({self.kilocycles_per_second:.1f} serial-equiv kcycles/s)",
            f"  {self.steps} driver iterations, "
            f"mean {self.mean_active_lanes:.2f} active lanes",
        ]
        populated = [b for b in self.buckets if b.calls]
        if populated:
            width = max(len(b.name) for b in populated)
            total = sum(b.seconds for b in populated)
            for title, keep in (
                    ("per-lane scalar stage time (summed over lanes):",
                     lambda b: not b.name.startswith("vec:")),
                    ("cross-lane vectorized kernels:",
                     lambda b: b.name.startswith("vec:"))):
                group = [b for b in populated if keep(b)]
                if not group:
                    continue
                lines.append(f"  {title}")
                for bucket in sorted(group, key=lambda b: -b.seconds):
                    share = bucket.seconds / self.wall_seconds \
                        if self.wall_seconds > 0 else 0.0
                    lines.append(f"    {bucket.name:<{width}}  "
                                 f"{bucket.seconds:7.3f}s  {share:5.1%}  "
                                 f"({bucket.calls} calls)")
            residual = max(0.0, self.wall_seconds - total)
            share = residual / self.wall_seconds \
                if self.wall_seconds > 0 else 0.0
            lines.append(f"    {'driver/refill/stats':<{width}}  "
                         f"{residual:7.3f}s  {share:5.1%}")
        if self.cprofile_text:
            lines.append("")
            lines.append(self.cprofile_text.rstrip())
        return "\n".join(lines)


#: (stage class, method, bucket label) — patched at class level for
#: lane profiling because LaneBatch constructs its cores internally
_LANE_STAGE_TARGETS = (
    (CommitStage, "tick", "commit"),
    (WritebackStage, "tick", "writeback"),
    (MemoryStage, "tick", "memory"),
    (ExecuteStage, "tick", "execute"),
    (IssueStage, "tick", "issue.tick"),
    (IssueStage, "tick_vec", "issue.tick_vec"),
    (DispatchStage, "tick", "dispatch"),
    (FetchStage, "tick", "fetch"),
)

#: (VectorEngine method, bucket label) — the cross-lane fused kernels
_LANE_ENGINE_TARGETS = (
    ("_refresh_commit", "vec:refresh-commit"),
    ("_select_kernel", "vec:select"),
    ("_broadcast_kernel", "vec:broadcast"),
    ("_land_groups", "vec:land-groups"),
)


def _patch_stage_classes():
    """Wrap the stage tick methods at class level with accumulators.

    Returns ``(accumulators, saved)``; the caller must restore the
    ``saved`` (class, attr, original) triples in a ``finally``.  The
    wrappers only measure — behaviour is untouched (cores prebind
    ``stage.tick`` at construction, so patching before ``batch.run``
    covers every lane core it creates).
    """
    accumulators: Dict[str, list] = {}
    saved = []
    for cls, attr, label in _LANE_STAGE_TARGETS:
        cell = accumulators.setdefault(label, [0.0, 0])
        original = getattr(cls, attr)
        saved.append((cls, attr, original))

        def timed(self, *args, _fn=original, _cell=cell):
            start = time.perf_counter()
            _fn(self, *args)
            _cell[0] += time.perf_counter() - start
            _cell[1] += 1

        setattr(cls, attr, timed)
    return accumulators, saved


def _patch_engine(engine):
    """Wrap the vector engine's fused kernels (instance level)."""
    accumulators: Dict[str, list] = {}
    for attr, label in _LANE_ENGINE_TARGETS:
        cell = accumulators.setdefault(label, [0.0, 0])
        original = getattr(engine, attr)

        def timed(*args, _fn=original, _cell=cell, **kwargs):
            start = time.perf_counter()
            result = _fn(*args, **kwargs)
            _cell[0] += time.perf_counter() - start
            _cell[1] += 1
            return result

        setattr(engine, attr, timed)
    return accumulators


def profile_lanes(kernel: str, scale: float = 1.0, preset: str = "base",
                  scheduler: str = "age", commit: str = "ioc",
                  lanes: int = 4, cprofile_top: int = 0,
                  cprofile_sort: str = "tottime",
                  max_cycles: int = 5_000_000) -> LaneProfileReport:
    """Profile ``lanes`` copies of a kernel in one lane batch.

    Per-stage time for the batch splits into scalar buckets (stage
    ticks, summed over lanes) and vectorized kernel buckets, so a slow
    lane run shows *which* phase failed to amortise.  Statistics stay
    bit-identical to unprofiled lanes.
    """
    trace = build_trace(kernel, scale)
    config = make_config(preset, scheduler=scheduler, commit=commit)
    cells = [LaneCell(i, trace, config, max_cycles)
             for i in range(lanes)]
    batch = LaneBatch(lanes, config.iq_size, config.rob_size)

    stage_cells, saved = _patch_stage_classes()
    engine_cells = _patch_engine(batch.engine)
    profiler = cProfile.Profile() if cprofile_top else None
    try:
        start = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        report = batch.run(cells)
        if profiler is not None:
            profiler.disable()
        wall = time.perf_counter() - start
    finally:
        for cls, attr, original in saved:
            setattr(cls, attr, original)

    for outcome in report.outcomes:
        if outcome.error is not None:
            raise RuntimeError(
                f"lane cell {outcome.index} failed:\n"
                f"{outcome.error_tb}") from outcome.error
        if outcome.timed_out:
            raise RuntimeError(f"lane cell {outcome.index} exceeded "
                               f"{max_cycles} cycles")

    cprofile_text = None
    if profiler is not None:
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer) \
            .sort_stats(cprofile_sort).print_stats(cprofile_top)
        cprofile_text = buffer.getvalue()

    buckets = [StageTiming(label, cell[0], cell[1])
               for label, cell in (*stage_cells.items(),
                                   *engine_cells.items())]
    return LaneProfileReport(
        kernel=kernel, scale=scale, preset=preset,
        scheduler=scheduler, commit=commit,
        lanes=lanes, cells=len(cells),
        cycles=sum(o.stats.cycles for o in report.outcomes),
        instructions=sum(o.stats.committed for o in report.outcomes),
        wall_seconds=wall, steps=report.steps,
        lane_steps=report.lane_steps, buckets=buckets,
        cprofile_text=cprofile_text)


def _attach_stage_timers(core: O3Core):
    """Wrap each stage tick with a wall-clock accumulator.

    Returns the per-stage ``[seconds, calls]`` accumulators, ordered
    like ``core.stages``.  The wrappers only measure — behaviour and
    statistics are untouched.
    """
    accumulators = []
    wrapped = []
    for tick in core._ticks:
        cell = [0.0, 0]
        accumulators.append(cell)

        def timed_tick(cycle, _tick=tick, _cell=cell):
            start = time.perf_counter()
            _tick(cycle)
            _cell[0] += time.perf_counter() - start
            _cell[1] += 1

        wrapped.append(timed_tick)
    core._ticks = tuple(wrapped)
    return accumulators


def _count_steps(core: O3Core):
    """Count engine steps (stepped cycles) without altering them."""
    counter = [0]
    original_step = core.step

    def counting_step():
        counter[0] += 1
        original_step()

    core.step = counting_step
    return counter


def profile_run(kernel: str, scale: float = 1.0, preset: str = "base",
                scheduler: str = "age", commit: str = "ioc",
                events: bool = False, cprofile_top: int = 0,
                cprofile_sort: str = "tottime",
                max_cycles: int = 5_000_000) -> ProfileReport:
    """Run one kernel under the profiler and return the report."""
    trace = build_trace(kernel, scale)
    config = make_config(preset, scheduler=scheduler, commit=commit)

    core = O3Core(trace, config)
    event_counts = None
    if events:
        event_counts = {}
        for event_type in EventType:
            cell = event_counts.setdefault(event_type.name, [0])

            def bump(_event, _cell=cell):
                _cell[0] += 1

            core.bus.subscribe(event_type, bump)
    accumulators = _attach_stage_timers(core)
    steps = _count_steps(core)

    profiler = cProfile.Profile() if cprofile_top else None
    start = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    stats = core.run(max_cycles)
    if profiler is not None:
        profiler.disable()
    wall = time.perf_counter() - start

    cprofile_text = None
    if profiler is not None:
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer) \
            .sort_stats(cprofile_sort).print_stats(cprofile_top)
        cprofile_text = buffer.getvalue()

    return ProfileReport(
        kernel=kernel, scale=scale, preset=preset,
        scheduler=scheduler, commit=commit,
        cycles=stats.cycles, instructions=stats.committed,
        wall_seconds=wall, stepped_cycles=steps[0],
        stages=[StageTiming(type(stage).__name__, cell[0], cell[1])
                for stage, cell in zip(core.stages, accumulators)],
        event_counts={name: cell[0]
                      for name, cell in event_counts.items()}
        if event_counts is not None else None,
        cprofile_text=cprofile_text)
