"""Orinoco reproduction: ordered issue and unordered commit with
non-collapsible queues (Chen et al., ISCA 2023).

Public API tour:

* :mod:`repro.core` — the matrix schedulers (the paper's contribution):
  :class:`~repro.core.AgeMatrix` with the bit count encoding,
  :class:`~repro.core.MergedCommitMatrix` (age + SPEC vector),
  :class:`~repro.core.MemoryDisambiguationMatrix`,
  :class:`~repro.core.LockdownMatrix`, :class:`~repro.core.WakeupMatrix`.
* :mod:`repro.pipeline` — the cycle-level OoO core:
  :func:`~repro.pipeline.simulate`, :func:`~repro.pipeline.base_config`
  (plus ``pro``/``ultra`` presets from Table 1).
* :mod:`repro.workloads` — the SPEC-surrogate kernel suite.
* :mod:`repro.harness` — per-figure experiment drivers
  (:func:`~repro.harness.fig14`, ``fig15``, ``fig16``...).
* :mod:`repro.circuit` — the 8T SRAM PIM model
  (:func:`~repro.circuit.table2`, ``overhead_report``...).
"""

from . import (circuit, commit, core, criticality, frontend, harness, isa,
               lsq, memory, pipeline, queues, rename, scheduler, workloads)
from .pipeline import (CoreConfig, O3Core, SimStats, base_config,
                       make_config, pro_config, simulate, ultra_config)

__version__ = "1.0.0"

__all__ = ["circuit", "commit", "core", "criticality", "frontend",
           "harness", "isa", "lsq", "memory", "pipeline", "queues",
           "rename", "scheduler", "workloads", "CoreConfig", "O3Core",
           "SimStats", "base_config", "make_config", "pro_config",
           "simulate", "ultra_config", "__version__"]
