"""Register renaming: RAT, free list, and the Register Status Table."""

from .freelist import PhysRegFreeList
from .rename import RenameRecord, RenameUnit, RSTEntry

__all__ = ["PhysRegFreeList", "RenameRecord", "RenameUnit", "RSTEntry"]
