"""Physical register free list."""

from __future__ import annotations

from typing import List, Optional


class PhysRegFreeList:
    """Pool of physical register tags."""

    def __init__(self, num_regs: int):
        if num_regs <= 0:
            raise ValueError("register file size must be positive")
        self.num_regs = num_regs
        self._free: List[int] = list(range(num_regs - 1, -1, -1))
        self._live = [False] * num_regs

    def allocate(self) -> Optional[int]:
        if not self._free:
            return None
        reg = self._free.pop()
        self._live[reg] = True
        return reg

    def free(self, reg: int) -> None:
        if not self._live[reg]:
            raise ValueError(f"physical register {reg} not live")
        self._live[reg] = False
        self._free.append(reg)

    def available(self) -> int:
        return len(self._free)

    def occupancy(self) -> int:
        return self.num_regs - len(self._free)

    def is_live(self, reg: int) -> bool:
        return self._live[reg]
