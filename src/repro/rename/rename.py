"""Register renaming with two reclamation schemes.

``inorder`` — the conventional scheme: when the instruction that
*overwrites* architectural register r commits, the previous physical
mapping of r is freed.  Safe because in-order commit guarantees every
older reader has committed.

``counter`` — the paper's counter-based scheme (§5, after Validation
Buffer): out-of-order commit can retire the overwriter while older
readers are still in flight, so each physical register carries a
consumer count (incremented at rename, decremented when the consumer
reads its operands) plus producer-completion and overwriter-committed
flags; the register frees only when all three conditions hold.  The
Register Status Table (RST) is exactly this per-physical-register
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import DynInstr, NUM_ARCH_REGS, NUM_INT_REGS, is_fp
from .freelist import PhysRegFreeList


@dataclass
class RSTEntry:
    """Register status for one physical register (the paper's RST)."""

    consumers: int = 0
    producer_done: bool = False
    overwriter_committed: bool = False
    #: still the live architectural mapping (not yet overwritten)
    architectural: bool = True
    #: seq of the producing instruction — producer-side events are
    #: ignored unless they come from the current owner, because an
    #: oracle load replay can write back after its register was
    #: reclaimed (overwriter committed, readers drained) and even
    #: re-allocated to a younger instruction
    producer_seq: int = -1


@dataclass
class RenameRecord:
    """Per-instruction rename outcome, kept for commit/squash undo."""

    seq: int
    arch_dst: Optional[int]
    phys_dst: Optional[int]
    prev_phys: Optional[int]
    srcs_phys: Tuple[int, ...]
    #: sources renamed but not yet read (cleared by operands_read)
    reads_outstanding: bool = True
    #: prev_phys was reclaimed (commit, or Cherry-style early release)
    #: — the rename can no longer be undone
    released: bool = False


class RenameUnit:
    """Architectural → physical mapping plus reclamation policy.

    The register file is split per class, as in the modelled Skylake
    core: ``num_phys_regs`` *integer* physical registers and the same
    number of floating-point ones.  Flat physical ids place the FP file
    at ``num_phys_regs + idx``.
    """

    def __init__(self, num_phys_regs: int, scheme: str = "inorder"):
        if scheme not in ("inorder", "counter"):
            raise ValueError(f"unknown reclamation scheme: {scheme!r}")
        if num_phys_regs <= NUM_INT_REGS:
            raise ValueError(
                f"need more than {NUM_INT_REGS} physical registers per file")
        self.scheme = scheme
        self.num_phys_regs = num_phys_regs
        self.int_freelist = PhysRegFreeList(num_phys_regs)
        self.fp_freelist = PhysRegFreeList(num_phys_regs)
        self.rst: Dict[int, RSTEntry] = {}
        self.rat: List[int] = []
        for arch in range(NUM_ARCH_REGS):
            phys = self._allocate(arch)
            self.rat.append(phys)
            self.rst[phys] = RSTEntry(producer_done=True)
        self.freed = 0

    def _allocate(self, arch_reg: int) -> Optional[int]:
        if is_fp(arch_reg):
            phys = self.fp_freelist.allocate()
            return None if phys is None else self.num_phys_regs + phys
        return self.int_freelist.allocate()

    def _free_phys(self, phys: int) -> None:
        if phys >= self.num_phys_regs:
            self.fp_freelist.free(phys - self.num_phys_regs)
        else:
            self.int_freelist.free(phys)

    # -- rename ---------------------------------------------------------

    def can_rename(self, dst_reg: Optional[int]) -> bool:
        if dst_reg is None:
            return True
        pool = self.fp_freelist if is_fp(dst_reg) else self.int_freelist
        return pool.available() > 0

    def rename(self, instr: DynInstr) -> RenameRecord:
        """Map sources through the RAT and claim a destination register."""
        srcs_phys = tuple(self.rat[src] for src in instr.srcs)
        for phys in srcs_phys:
            self.rst[phys].consumers += 1
        phys_dst = None
        prev_phys = None
        if instr.dst is not None:
            phys_dst = self._allocate(instr.dst)
            if phys_dst is None:
                for phys in srcs_phys:
                    self.rst[phys].consumers -= 1
                raise RuntimeError("rename called without a free register")
            prev_phys = self.rat[instr.dst]
            self.rst[prev_phys].architectural = False
            self.rat[instr.dst] = phys_dst
            self.rst[phys_dst] = RSTEntry(producer_seq=instr.seq)
        return RenameRecord(instr.seq, instr.dst, phys_dst, prev_phys,
                            srcs_phys)

    # -- lifetime events ---------------------------------------------------

    def operands_read(self, record: RenameRecord) -> None:
        """The instruction read its sources (issue) — decrement counts."""
        if not record.reads_outstanding:
            raise RuntimeError(f"operands of #{record.seq} read twice")
        record.reads_outstanding = False
        for phys in record.srcs_phys:
            entry = self.rst[phys]
            entry.consumers -= 1
            if entry.consumers < 0:
                raise RuntimeError(f"consumer underflow on p{phys}")
            self._maybe_free(phys)

    def producer_completed(self, record: RenameRecord) -> None:
        """The producing instruction wrote back its value."""
        if record.phys_dst is None:
            return
        entry = self.rst.get(record.phys_dst)
        if entry is None or entry.producer_seq != record.seq:
            # already reclaimed (oracle replay writing back late)
            return
        entry.producer_done = True
        self._maybe_free(record.phys_dst)

    def producer_replayed(self, record: RenameRecord) -> None:
        """The producer was re-executed in place (oracle load replay):
        its result is in flight again, so the destination must not be
        reclaimed until the replay writes back."""
        if record.phys_dst is None:
            return
        entry = self.rst.get(record.phys_dst)
        if entry is not None and entry.producer_seq == record.seq:
            entry.producer_done = False

    def writer_committed(self, record: RenameRecord) -> None:
        """The instruction committed; reclaim per the active scheme."""
        if record.phys_dst is None:
            return
        if record.prev_phys is None:
            return
        record.released = True
        prev = self.rst[record.prev_phys]
        prev.overwriter_committed = True
        if self.scheme == "inorder":
            # in-order commit: every older reader has committed
            prev.consumers = 0
            prev.producer_done = True
        self._maybe_free(record.prev_phys)

    def _maybe_free(self, phys: int) -> None:
        entry = self.rst.get(phys)
        if entry is None or entry.architectural:
            return
        if (entry.overwriter_committed and entry.producer_done
                and entry.consumers == 0):
            del self.rst[phys]
            self._free_phys(phys)
            self.freed += 1

    # -- squash ----------------------------------------------------------------

    def squash(self, records: List[RenameRecord]) -> None:
        """Undo renames, youngest first (records may be any order)."""
        for record in sorted(records, key=lambda r: r.seq, reverse=True):
            if record.reads_outstanding:
                for phys in record.srcs_phys:
                    if phys in self.rst:
                        self.rst[phys].consumers -= 1
            if record.phys_dst is None:
                continue
            if record.released:
                # Cherry-style early release already reclaimed
                # prev_phys (possibly re-allocated by now): the rename
                # is irreversible.  Keep phys_dst as the architectural
                # mapping so the refetched stream renames against it.
                entry = self.rst.get(record.phys_dst)
                if (entry is not None
                        and self.rat[record.arch_dst] == record.phys_dst):
                    entry.architectural = True
                    entry.overwriter_committed = False
                continue
            self.rat[record.arch_dst] = record.prev_phys
            self.rst[record.prev_phys].architectural = True
            self.rst[record.prev_phys].overwriter_committed = False
            del self.rst[record.phys_dst]
            self._free_phys(record.phys_dst)

    # -- introspection ----------------------------------------------------

    def available(self) -> int:
        return self.int_freelist.available() + self.fp_freelist.available()

    def occupancy(self) -> int:
        return self.int_freelist.occupancy() + self.fp_freelist.occupancy()

    def int_occupancy(self) -> int:
        return self.int_freelist.occupancy()

    def fp_occupancy(self) -> int:
        return self.fp_freelist.occupancy()
