"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation artefacts:

* ``kernels``       — list every registered workload target with its
  kind (synthetic / scenario / trace-file) and provenance
* ``run``           — simulate one target (or a trace-file path) under
  one configuration
* ``trace``         — trace-file tools: ``record`` a target's trace to
  disk, ``convert`` v1 files to the current format, ``validate`` a
  file before importing it; experiment commands accept ``--trace
  PATH`` to pull recorded traces into the sweeps as targets
* ``fig14``/``fig15``/``fig16`` — regenerate the figures
* ``table1``/``table2``         — regenerate the tables
* ``stalls``        — the §2.2/§6.2 stall statistics
* ``overhead``      — the §6.3 overhead report
* ``scalability``   — the §6.4 scaling study
* ``bench``         — executor smoke run: one figure end-to-end with
  wall-clock / cache-hit accounting
* ``profile``       — profile the simulator itself on one kernel
  (per-stage time, event counts, optional cProfile)
* ``replay``        — re-run a crash-diagnostic bundle from
  ``benchmarks/crash/`` and report whether the failure reproduces

Experiment commands accept ``--jobs N`` (parallel simulation workers,
default ``$REPRO_JOBS``), ``--no-cache`` (bypass the on-disk result
cache under ``benchmarks/.cache/``), ``--timeout S`` (per-cell limit
on the worker path, default ``$REPRO_CELL_TIMEOUT``), ``--chunk K``
(cells per worker dispatch batch, default ``$REPRO_CHUNK`` or
auto-tuned) and ``--lanes L`` (lane-batch width: up to L compatible
cells simulated in lockstep per batch, default ``$REPRO_LANES`` or 1;
``repro profile`` requires ``--lanes 1``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .circuit import (format_scalability, format_table2, overhead_report)
from .harness import (default_lanes, default_workers, fig14, fig15, fig16,
                      format_characterization, hbar_chart, stall_breakdown,
                      table1, table2_measured)
from .isa import convert_trace_file, save_trace, validate_trace_file
from .pipeline import (COMMITS, SCHEDULERS, EventRecorder, O3Core,
                       Timeline, make_config, simulate)
from .workloads import (add_trace_target, build_trace, get_target,
                        has_target, iter_targets)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--kernels", nargs="*", default=None,
                        help="restrict to these suite kernels")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel simulation workers "
                             "(default $REPRO_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache under "
                             "benchmarks/.cache/")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-cell timeout in seconds when running "
                             "with workers (default $REPRO_CELL_TIMEOUT; "
                             "timed-out cells are reported, not fatal)")
    parser.add_argument("--chunk", type=int, default=None, metavar="K",
                        help="cells per worker dispatch batch (default "
                             "$REPRO_CHUNK, else auto-tuned from per-cell "
                             "time estimates; 1 disables batching)")
    parser.add_argument("--lanes", type=int, default=None, metavar="L",
                        help="lane-batch width: simulate up to L "
                             "compatible cells in lockstep over shared "
                             "struct-of-arrays state (default "
                             "$REPRO_LANES or 1 = off; results are "
                             "field-identical to serial)")
    _add_trace_import(parser)


def _add_trace_import(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="append", default=None,
                        metavar="PATH", dest="import_traces",
                        help="import a recorded trace file as an extra "
                             "workload target before running (repeatable; "
                             "imported targets join default sweeps)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orinoco (ISCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    kernels_parser = sub.add_parser(
        "kernels", help="list every registered workload target "
                        "(name, kind, provenance)")
    _add_trace_import(kernels_parser)

    run = sub.add_parser("run", help="simulate one kernel")
    run.add_argument("kernel", help="suite kernel name (see `kernels`)")
    run.add_argument("--preset", default="base",
                     choices=("base", "pro", "ultra"))
    run.add_argument("--scheduler", default="age", choices=SCHEDULERS)
    run.add_argument("--commit", default="ioc", choices=COMMITS)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--timeline", type=int, default=0, metavar="N",
                     help="render a pipeline timeline of the first N "
                          "instructions")
    run.add_argument("--events", type=int, default=0, metavar="N",
                     help="dump the first N pipeline events plus a "
                          "per-type histogram")

    _add_common(sub.add_parser(
        "characterize", help="profile the workload suite"))

    save = sub.add_parser("save-trace",
                          help="emulate a kernel and save its trace "
                               "(alias of `trace record`)")
    save.add_argument("kernel")
    save.add_argument("path")
    save.add_argument("--scale", type=float, default=1.0)

    trace = sub.add_parser(
        "trace", help="trace-file tools: record a target's trace, "
                      "convert old files, validate before import")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser(
        "record", help="build a registered target's trace and write it "
                       "in the v2 format with provenance metadata")
    record.add_argument("target", help="workload target name "
                                       "(see `kernels`)")
    record.add_argument("path", help="output trace file (JSONL)")
    record.add_argument("--scale", type=float, default=1.0)
    convert = trace_sub.add_parser(
        "convert", help="rewrite a v1/v2 trace file in the current "
                        "format (validating every record)")
    convert.add_argument("src")
    convert.add_argument("dst")
    validate = trace_sub.add_parser(
        "validate", help="fully parse a trace file and print its "
                         "summary (version, name, count, sha256)")
    validate.add_argument("path")

    for name, help_text in (("fig14", "priority scheduling (Figure 14)"),
                            ("fig15", "out-of-order commit (Figure 15)"),
                            ("fig16", "core-size sensitivity (Figure 16)"),
                            ("stalls", "stall statistics (§2.2/§6.2)")):
        _add_common(sub.add_parser(name, help=help_text))

    sub.add_parser("table1", help="core configurations (Table 1)")
    table2_parser = sub.add_parser(
        "table2", help="matrix scheduler parameters (Table 2)")
    table2_parser.add_argument(
        "--measured", action="store_true",
        help="compute power from simulated pipeline activities")
    _add_common(table2_parser)
    sub.add_parser("overhead", help="area/power overheads (§6.3)")
    sub.add_parser("scalability", help="array scaling study (§6.4)")

    bench = sub.add_parser(
        "bench", help="executor smoke benchmark: one figure end-to-end "
                      "with wall-clock / cache accounting")
    bench.add_argument("figure", nargs="?", default="fig14",
                       choices=("fig14", "fig15", "fig16"))
    _add_common(bench)

    profile = sub.add_parser(
        "profile", help="profile the simulator itself on one kernel")
    profile.add_argument("kernel", help="suite kernel name")
    profile.add_argument("--preset", default="base",
                         choices=("base", "pro", "ultra"))
    profile.add_argument("--scheduler", default="age", choices=SCHEDULERS)
    profile.add_argument("--commit", default="ioc", choices=COMMITS)
    profile.add_argument("--scale", type=float, default=1.0)
    profile.add_argument("--events", action="store_true",
                         help="count pipeline events per type (disables "
                              "the quiescent-cycle fast-forward)")
    profile.add_argument("--cprofile", type=int, default=0, metavar="N",
                         help="also run cProfile and print the top N rows")
    profile.add_argument("--sort", default="tottime",
                         choices=("tottime", "cumulative", "ncalls"),
                         help="cProfile sort order")
    profile.add_argument("--lanes", type=int, default=None, metavar="L",
                         help="must be 1: the profiler instruments one "
                              "core's stages and attaches per-cycle "
                              "subscribers, which lane batching bypasses "
                              "(default $REPRO_LANES or 1)")

    replay = sub.add_parser(
        "replay", help="re-run a crash-diagnostic bundle and report "
                       "whether the failure reproduces")
    replay.add_argument("bundle", help="path to a crash bundle JSON "
                                       "(see benchmarks/crash/)")
    replay.add_argument("--events", type=int, default=12, metavar="N",
                        help="event-tail lines to print (default 12)")

    verify = sub.add_parser(
        "verify", help="differential memory-consistency campaign: "
                       "random + litmus programs through every commit "
                       "policy, checked against an interleaving oracle")
    verify.add_argument("--programs", type=int, default=1000, metavar="N",
                        help="campaign size (default 1000)")
    verify.add_argument("--quick", action="store_true",
                        help="500-program smoke campaign")
    verify.add_argument("--seed", type=int, default=None, metavar="S",
                        help="generator seed (default $REPRO_VERIFY_SEED "
                             "or 0); one seed = byte-identical programs "
                             "and checkpoint across runs")
    verify.add_argument("--jobs", type=int, default=None, metavar="J",
                        help="worker processes (default $REPRO_JOBS or 1)")
    verify.add_argument("--lanes", type=int, default=None, metavar="L",
                        help="lane-batch width (default $REPRO_LANES or 1)")
    verify.add_argument("--timeout", type=float, default=None,
                        metavar="SEC",
                        help="per-program wall cap under --jobs")
    verify.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="progress JSONL (default benchmarks/verify/"
                             "campaign-s<seed>-n<count>.jsonl); an "
                             "interrupted campaign resumes from it")
    verify.add_argument("--fresh", action="store_true",
                        help="discard any existing checkpoint first")
    verify.add_argument("--no-minimise", action="store_true",
                        help="skip delta-debugging violations into "
                             "replayable bundles")
    return parser


def _register_cli_traces(args) -> None:
    """Import every ``--trace PATH`` as a trace-file workload target."""
    import pathlib
    for path in getattr(args, "import_traces", None) or ():
        target = add_trace_target(path)
        print(f"imported {pathlib.Path(path).name} as target "
              f"{target.name!r}", file=sys.stderr)


def _cmd_kernels(args) -> str:
    """Every registered target: name, kind, and where it came from."""
    lines = []
    for target in iter_targets():
        lines.append(f"{target.name:<18} {target.kind:<11} "
                     f"{target.provenance()}")
    return "\n".join(lines)


def _cmd_trace(args) -> str:
    if args.trace_command == "record":
        name = args.target
        trace = build_trace(name, args.scale)
        target = get_target(name)
        meta = {"source": name, "scale": args.scale,
                "provenance": target.provenance(),
                "fingerprint": target.fingerprint(args.scale)}
        save_trace(trace, args.path, meta=meta)
        return (f"recorded {len(trace)} instructions from {name} "
                f"(scale {args.scale}) to {args.path}")
    if args.trace_command == "convert":
        summary = convert_trace_file(args.src, args.dst)
        return (f"converted {args.src} -> {args.dst} "
                f"(v{summary['version']}, {summary['count']} records)")
    summary = validate_trace_file(args.path)
    lines = [f"{summary['path']}: OK",
             f"  format version: {summary['version']}",
             f"  name: {summary['name']}",
             f"  records: {summary['count']}",
             f"  sha256: {summary['sha256']}"]
    if summary["meta"]:
        lines.append(f"  meta: {summary['meta']}")
    return "\n".join(lines)


def _cmd_run(args) -> str:
    import pathlib
    kernel = args.kernel
    if not has_target(kernel) and pathlib.Path(kernel).is_file():
        # a trace-file path: import it on the fly and simulate that
        kernel = add_trace_target(kernel).name
    trace = build_trace(kernel, args.scale)
    config = make_config(args.preset, scheduler=args.scheduler,
                         commit=args.commit)
    core = O3Core(trace, config)
    timeline = Timeline.attach(core) if args.timeline else None
    recorder = None
    if args.events:
        recorder = core.bus.attach(EventRecorder(limit=args.events))
    stats = core.run()
    lines = [stats.summary(),
             f"  occupancy: ROB {stats.occupancy('rob'):.1f} "
             f"IQ {stats.occupancy('iq'):.1f} "
             f"LQ {stats.occupancy('lq'):.1f}",
             f"  memory: " + ", ".join(
                 f"{k}={v:.3g}" for k, v in stats.memory.items())]
    if timeline is not None:
        lines.append(timeline.render(count=args.timeline))
        lines.append(f"  out-of-order commits: "
                     f"{timeline.out_of_order_commits()}")
    if recorder is not None:
        lines.append(recorder.format())
    return "\n".join(lines)


def _exec_opts(args) -> dict:
    """Executor knobs shared by the experiment commands.

    The CLI caches by default (``--no-cache`` opts out), unlike the
    library default which requires ``$REPRO_CACHE=1``.
    """
    return {"workers": args.jobs, "use_cache": not args.no_cache,
            "timeout": args.timeout, "chunk": args.chunk,
            "lanes": args.lanes}


def _cmd_bench(args) -> str:
    """Executor smoke target: one figure end-to-end, with accounting."""
    import time
    figures = {"fig14": fig14, "fig15": fig15, "fig16": fig16}
    start = time.perf_counter()
    result = figures[args.figure](scale=args.scale, names=args.kernels,
                                  **_exec_opts(args))
    wall = time.perf_counter() - start
    workers = args.jobs if args.jobs is not None else default_workers()
    lanes = args.lanes if args.lanes is not None else default_lanes()
    sim = result.sim_seconds()
    lines = [result.format(), "",
             f"executor: {result.cells()} cells, workers={workers}, "
             f"lanes={lanes}, "
             f"cache {'off' if args.no_cache else 'on'} "
             f"({result.cache_hits()} hits)",
             f"trace LRU: {result.trace_cache_hits()} hits, "
             f"{result.trace_cache_misses()} misses",
             f"wall-clock {wall:.2f}s; per-cell simulation time "
             f"{sim:.2f}s" + (f" ({sim / wall:.2f}x overlap)"
                              if wall > 0 else "")]
    occupancy = result.mean_lane_occupancy()
    if occupancy:
        batches = {bid for r in result.results.values()
                   for bid in r.lane_batches}
        lines.append(f"lane batches: {len(batches)}, mean "
                     f"{occupancy:.2f} active lanes/iteration")
    return "\n".join(lines)


def _cmd_stalls(args) -> str:
    data = stall_breakdown(scale=args.scale, names=args.kernels,
                           **_exec_opts(args))
    lines = []
    for label in ("IOC", "Orinoco"):
        entry = data[label]
        lines.append(f"{label}:")
        lines.append(f"  commit-stall cycles: {entry['commit_stalls']}")
        lines.append(f"  ready-but-not-head fraction: "
                     f"{entry['ready_not_head_frac']:.1%} (paper 72%)")
        lines.append(f"  during ROB-full stalls: "
                     f"{entry['fw_ready_frac']:.1%} (paper 76%)")
        lines.append(f"  dispatch stalls: ROB {entry['rob']} "
                     f"IQ {entry['iq']} LQ {entry['lq']} "
                     f"REG {entry['reg']}")
    reduction = data.get("reduction")
    if reduction:
        lines.append(f"Orinoco reduces full-window stalls by "
                     f"{reduction['full_window_stalls']:.1%}, ROB stalls "
                     f"by {reduction['rob_stalls']:.1%}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:          # e.g. `repro kernels | head`
        return 0
    except KeyboardInterrupt as exc:
        # SuiteInterrupted carries which cells finished (and were
        # flushed to the cache); a bare Ctrl-C has nothing to add
        message = str(exc)
        print(f"interrupted{': ' + message if message else ''}",
              file=sys.stderr)
        return 130


def _dispatch(args) -> int:
    command = args.command
    _register_cli_traces(args)
    if command == "kernels":
        print(_cmd_kernels(args))
    elif command == "run":
        print(_cmd_run(args))
    elif command == "trace":
        print(_cmd_trace(args))
    elif command == "characterize":
        print(format_characterization(scale=args.scale,
                                      names=args.kernels,
                                      **_exec_opts(args)))
    elif command == "save-trace":
        trace = build_trace(args.kernel, args.scale)
        target = get_target(args.kernel)
        save_trace(trace, args.path,
                   meta={"source": args.kernel, "scale": args.scale,
                         "provenance": target.provenance()})
        print(f"wrote {len(trace)} instructions to {args.path}")
    elif command == "fig14":
        result = fig14(scale=args.scale, names=args.kernels,
                       **_exec_opts(args))
        print(result.format())
        print()
        print(hbar_chart(result.summary, title="geomean speedup vs AGE"))
    elif command == "fig15":
        result = fig15(scale=args.scale, names=args.kernels,
                       **_exec_opts(args))
        print(result.format())
        print()
        print(hbar_chart(result.summary, title="geomean speedup vs IOC"))
    elif command == "fig16":
        print(fig16(scale=args.scale, names=args.kernels,
                    **_exec_opts(args)).format())
    elif command == "stalls":
        print(_cmd_stalls(args))
    elif command == "table1":
        print(table1())
    elif command == "table2":
        if args.measured:
            rows = table2_measured(scale=args.scale, names=args.kernels,
                                   **_exec_opts(args))
            print(format_table2(rows))
        else:
            print(format_table2())
    elif command == "overhead":
        print(overhead_report().format())
    elif command == "scalability":
        print(format_scalability())
    elif command == "bench":
        print(_cmd_bench(args))
    elif command == "profile":
        lanes = args.lanes if args.lanes is not None else default_lanes()
        if lanes != 1:
            # lane batches get their own attribution: scalar stage
            # buckets summed over lanes plus the cross-lane fused
            # kernel buckets.  Event subscribers attach to a single
            # core's bus, so --events still needs --lanes 1.
            if args.events:
                print("error: --events requires --lanes 1 (event "
                      "subscribers instrument a single core's bus)",
                      file=sys.stderr)
                return 2
            from .profiling import profile_lanes
            report = profile_lanes(
                args.kernel, scale=args.scale, preset=args.preset,
                scheduler=args.scheduler, commit=args.commit,
                lanes=lanes, cprofile_top=args.cprofile,
                cprofile_sort=args.sort)
            print(report.format())
            return 0
        from .profiling import profile_run
        report = profile_run(
            args.kernel, scale=args.scale, preset=args.preset,
            scheduler=args.scheduler, commit=args.commit,
            events=args.events, cprofile_top=args.cprofile,
            cprofile_sort=args.sort)
        print(report.format())
    elif command == "replay":
        # exit codes: 0 = reproduced, 3 = ran but did not reproduce,
        # 2 = bundle unreadable (grep the "verdict:" line for the story)
        from .harness import load_bundle, replay_bundle
        try:
            bundle = load_bundle(args.bundle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load bundle {args.bundle}: {exc}",
                  file=sys.stderr)
            return 2
        if "verify" in bundle:
            from .verify.minimise import replay_violation
            report = replay_violation(bundle)
            print(report.format())
        else:
            report = replay_bundle(bundle)
            print(report.format(events=args.events))
        return 0 if report.reproduced else 3
    elif command == "verify":
        from .verify.campaign import run_campaign
        seed = args.seed
        if seed is None:
            seed = int(os.environ.get("REPRO_VERIFY_SEED", "0"))
        count = 500 if args.quick else args.programs
        jobs = args.jobs if args.jobs is not None else default_workers()
        lanes = args.lanes if args.lanes is not None else default_lanes()
        result = run_campaign(
            seed=seed, count=count, jobs=jobs, lanes=lanes,
            timeout=args.timeout, checkpoint=args.checkpoint,
            fresh=args.fresh, minimise=not args.no_minimise)
        print(result.format())
        return 0 if result.ok else 1
    return 0


if __name__ == "__main__":       # pragma: no cover
    sys.exit(main())
