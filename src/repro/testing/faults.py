"""Deterministic fault injection for the resilient experiment harness.

Large campaigns only earn trust in their degradation paths if those
paths can be exercised on demand.  ``REPRO_FAULT`` injects failures at
*named cells* so every recovery mechanism in
:mod:`repro.harness.resilience` has a regression test:

    REPRO_FAULT=<kind>:<cell-pattern>[:<param>][,<kind>:<pattern>...]

``cell-pattern`` is an ``fnmatch`` glob matched case-sensitively
against the cell id ``"<label>/<workload>"`` (criticality profile
cells are named ``"profile/<workload>"``).  Kinds:

``crash``
    The worker process dies via ``os._exit(CRASH_EXIT_CODE)`` the
    moment it picks up a matching cell — the stand-in for a segfault
    or the OOM killer.  ``param``, when given, is the *last attempt
    number the fault fires on*: ``crash:A/x:1`` kills attempt 1 only
    (a transient fault the retry layer recovers from), while a bare
    ``crash:A/x`` kills every attempt (a hard fault).
``hang``
    The worker sleeps for ``param`` seconds (default 600) before
    simulating, so a per-cell timeout is the only way out.
``explode``
    A subscriber on the cell's event bus raises
    :class:`InjectedFault` after ``param`` commits (default 50) — a
    genuine mid-simulation exception, raised from inside
    ``O3Core.run`` with live pipeline state behind it.
``corrupt``
    Applied by the *parent* right after the cell's result is written
    to the on-disk cache: ``param`` ``"torn"`` keeps the entry valid
    JSON but flips the payload under its checksum, anything else (the
    default) truncates the file mid-token.  Exercises the cache
    quarantine path on the next run.
``lockdown``
    Checker-side sabotage for the differential verification campaign
    (:mod:`repro.verify`): the memory-ordering witness *drops* §3.3
    lockdown records for matching cells (named
    ``"verify/<program>/<model>/<policy>"``), so a TSO load-load
    reordering that the lockdown matrix really did protect looks
    unprotected to the checker and surfaces as a consistency
    violation.  Proves the campaign can detect, minimise and bundle a
    genuinely weak outcome without needing a real pipeline bug.

Faults are sampled from the environment once per ``run_suite`` call in
the parent and travel to workers inside the task payload, so a
persistent worker pool spawned before the variable was set still sees
the faults, and a run is reproducible from its recorded fault string
alone.  ``crash``/``hang``/``explode`` fire only on the worker
dispatch path — the in-process serial path is the reference and is
never sabotaged.
"""

from __future__ import annotations

import fnmatch
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: environment variable holding the fault programme
FAULT_ENV = "REPRO_FAULT"

#: exit code used by the ``crash`` kind (distinctive in diagnostics)
CRASH_EXIT_CODE = 86

KINDS = ("crash", "hang", "explode", "corrupt", "lockdown")

#: default sleep for ``hang`` faults, seconds
DEFAULT_HANG_SECONDS = 600.0

#: default commit count before an ``explode`` fault fires
DEFAULT_EXPLODE_COMMITS = 50


class InjectedFault(RuntimeError):
    """The exception raised by ``explode`` faults (mid-simulation)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind:pattern[:param]`` clause."""

    kind: str
    pattern: str
    param: Optional[str] = None

    def matches(self, cell_id: str) -> bool:
        return fnmatch.fnmatchcase(cell_id, self.pattern)

    def fires(self, attempt: int) -> bool:
        """crash/explode faults can be attempt-limited: ``param`` is
        the last attempt they fire on (None = every attempt)."""
        if self.param is None:
            return True
        try:
            return attempt <= int(self.param)
        except ValueError:
            return True


def parse_fault_specs(text: Optional[str]) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULT`` value; raises ``ValueError`` on bad
    grammar so a typo'd fault programme never silently no-ops."""
    if not text:
        return ()
    specs = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":", 2)
        if len(parts) < 2 or not parts[1]:
            raise ValueError(
                f"bad fault clause {clause!r}: expected "
                f"'<kind>:<cell-pattern>[:<param>]'")
        kind = parts[0].strip().lower()
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r} in {clause!r}; "
                             f"choose from {KINDS}")
        specs.append(FaultSpec(kind, parts[1].strip(),
                               parts[2].strip() if len(parts) == 3 else None))
    return tuple(specs)


def active_fault_specs() -> Tuple[FaultSpec, ...]:
    """The fault programme currently in the environment."""
    return parse_fault_specs(os.environ.get(FAULT_ENV, ""))


def faults_for(specs: Sequence[FaultSpec], kind: str,
               cell_id: str) -> Tuple[FaultSpec, ...]:
    return tuple(s for s in specs if s.kind == kind and s.matches(cell_id))


# -- worker-side injection -------------------------------------------------

def preflight(specs: Sequence[FaultSpec], cell_id: str,
              attempt: int) -> None:
    """Apply crash/hang faults for ``cell_id``; called by the worker
    immediately after picking the cell up."""
    for spec in faults_for(specs, "crash", cell_id):
        if spec.fires(attempt):
            os._exit(CRASH_EXIT_CODE)
    for spec in faults_for(specs, "hang", cell_id):
        if spec.fires(attempt):
            try:
                seconds = float(spec.param) if spec.param else \
                    DEFAULT_HANG_SECONDS
            except ValueError:
                seconds = DEFAULT_HANG_SECONDS
            time.sleep(seconds)


class _Exploder:
    """Event-bus subscriber that raises after N committed instructions."""

    def __init__(self, cell_id: str, after: int):
        self.cell_id = cell_id
        self.remaining = max(1, after)

    def on_commit(self, event) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            raise InjectedFault(
                f"injected mid-simulation fault at {self.cell_id} "
                f"(cycle {event.cycle})")


def explode_subscriber(specs: Sequence[FaultSpec], cell_id: str,
                       attempt: int = 1) -> Optional[_Exploder]:
    """The ``explode`` subscriber for this cell, or ``None``.  Attach
    it to the core's event bus before ``run()``."""
    for spec in faults_for(specs, "explode", cell_id):
        if not spec.fires(attempt):
            continue
        try:
            after = int(spec.param) if spec.param else \
                DEFAULT_EXPLODE_COMMITS
        except ValueError:
            after = DEFAULT_EXPLODE_COMMITS
        return _Exploder(cell_id, after)
    return None


# -- parent-side injection -------------------------------------------------

def corrupt_file(path: os.PathLike, mode: Optional[str] = None) -> bool:
    """Corrupt one on-disk cache entry.  ``mode="torn"`` keeps the
    entry valid JSON but mutates the payload under its checksum
    (a torn write); anything else truncates the file mid-token."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError:
        return False
    if mode == "torn":
        try:
            data = json.loads(text)
        except ValueError:
            return False
        if isinstance(data, dict) and isinstance(data.get("payload"), dict):
            data["payload"]["__torn__"] = 1
        else:
            return False
        path.write_text(json.dumps(data, sort_keys=True))
    else:
        path.write_text(text[:max(1, len(text) // 2)])
    return True


def apply_corrupt_faults(specs: Sequence[FaultSpec], cell_id: str,
                         path: os.PathLike) -> bool:
    """Parent-side hook: corrupt ``path`` if a corrupt fault matches."""
    for spec in faults_for(specs, "corrupt", cell_id):
        return corrupt_file(path, spec.param)
    return False
