"""Test-support machinery shipped with the package (fault injection)."""

from .faults import (FAULT_ENV, CRASH_EXIT_CODE, FaultSpec, InjectedFault,
                     active_fault_specs, corrupt_file, explode_subscriber,
                     parse_fault_specs, preflight)

__all__ = ["FAULT_ENV", "CRASH_EXIT_CODE", "FaultSpec", "InjectedFault",
           "active_fault_specs", "corrupt_file", "explode_subscriber",
           "parse_fault_specs", "preflight"]
