"""Dense bit matrix with the operations the PIM arrays provide.

The paper implements every matrix scheduler as an 8T SRAM array whose
primitive operations are (§4):

* **row write** — a dispatched instruction writes its whole row at once;
* **column clear** — a resolving/issuing instruction clears its column
  (dual-supply-voltage column-wise write; multiple columns per cycle);
* **AND + reduction NOR** — apply a vector to the read word lines and
  sense whether any activated cell in a row holds a one;
* **AND + bit count** — same activation, but the bit line voltage drop
  is compared against a threshold, yielding ``popcount(row & vec) < k``;
* **column read** — one-hot activation of a single column.

:class:`BitMatrix` exposes exactly these primitives (vectorised over all
rows with numpy, mirroring the hardware's all-rows-in-parallel nature)
so the scheduler classes above it read like the paper's figures.

Hot-path contract: every read primitive takes an optional ``out``
buffer, and the AND stage lands in a preallocated scratch plane, so a
steady-state cycle of the simulator performs **zero numpy
allocations** — callers that pass ``out`` (the pipeline does) get the
answer written in place; callers that don't (tests, notebooks) get a
fresh array as before.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


class BitMatrix:
    """A rows × cols matrix of bits supporting PIM-style operations.

    ``storage`` (any object with ``bits``/``and_plane`` array
    attributes of the right shape, e.g. :class:`~repro.core.lanestack.
    BitPlanes`) makes the matrix operate on caller-provided backing —
    the lane-batched engine passes 2-D views into a 3-D lane-stacked
    array.  The ``bits`` state is re-zeroed on adoption (slot reuse);
    the ``and_plane`` scratch carries no state and is left as-is.
    """

    def __init__(self, rows: int, cols: Optional[int] = None,
                 storage=None):
        if cols is None:
            cols = rows
        if rows <= 0 or cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        self.rows = rows
        self.cols = cols
        if storage is None:
            self.bits = np.zeros((rows, cols), dtype=bool)
            # scratch plane for the AND stage of the read primitives;
            # one allocation buys allocation-free reads for the run
            self._and_plane = np.empty((rows, cols), dtype=bool)
        else:
            if storage.bits.shape != (rows, cols):
                raise ValueError(
                    f"storage shape {storage.bits.shape} != "
                    f"({rows}, {cols})")
            self.bits = storage.bits
            self.bits[...] = False
            self._and_plane = storage.and_plane

    # -- row / column writes (dispatch, resolve) -----------------------

    def set_row(self, row: int, mask: Optional[np.ndarray] = None) -> None:
        """Write a full row: all ones, or ``mask`` where given."""
        if mask is None:
            self.bits[row, :] = True
        else:
            self.bits[row, :] = mask

    def clear_row(self, row: int) -> None:
        self.bits[row, :] = False

    def write_rows(self, rows, block: np.ndarray) -> None:
        """Write several full rows in one fancy-indexed store.

        Models a superscalar dispatch group's row writes landing in the
        same cycle; ``block`` is a ``len(rows) × cols`` bit block.
        """
        self.bits[rows, :] = block

    def write_columns(self, cols, block: np.ndarray) -> None:
        """Write several full columns in one fancy-indexed store
        (``block`` is ``rows × len(cols)``)."""
        self.bits[:, cols] = block

    def set_column(self, col: int, mask: Optional[np.ndarray] = None) -> None:
        """Write a full column: all ones, or ``mask`` where given.

        The real array only supports column *clear*; column set with a
        mask models the dispatch-time write of the newcomer's column,
        which the hardware folds into the same row-write cycle (§4.3).
        """
        if mask is None:
            self.bits[:, col] = True
        else:
            self.bits[:, col] = mask

    def clear_column(self, col: int) -> None:
        self.bits[:, col] = False

    def clear_columns(self, cols: Iterable[int]) -> None:
        """Clear several columns in one cycle (§4.2 allows this).

        A single fancy-indexed write, matching the hardware's
        all-columns-at-once dual-supply-voltage clear; ``cols`` may be any
        iterable (list, ndarray, generator) and may be empty.
        """
        cols = cols if isinstance(cols, (list, np.ndarray)) else list(cols)
        n = len(cols)
        if n == 0:
            return
        if n == 1:
            # basic indexing: fancy-index setup costs ~5x the write for
            # the dominant single-column case (issue clears one entry)
            self.bits[:, cols[0]] = False
            return
        self.bits[:, cols] = False

    def set_bit(self, row: int, col: int, value: bool = True) -> None:
        self.bits[row, col] = value

    def get_bit(self, row: int, col: int) -> bool:
        return bool(self.bits[row, col])

    # -- PIM read operations -------------------------------------------

    def row(self, row: int) -> np.ndarray:
        """Copy of one row vector."""
        return self.bits[row].copy()

    def column(self, col: int) -> np.ndarray:
        """Column read: one-hot column select on the RWLs (§4.2)."""
        return self.bits[:, col].copy()

    def and_reduce_nor(self, vec: np.ndarray,
                       out: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-row ``NOR(row & vec)``: True where no activated bit is set.

        This is the grant computation of the classic age matrix and of
        the commit dependency check: precharge the RBLs of every row,
        activate the RWLs selected by ``vec``, and sense.  With ``out``
        the result is written in place (no allocation).
        """
        np.logical_and(self.bits, vec, out=self._and_plane)
        result = out if out is not None else np.empty(self.rows, dtype=bool)
        np.any(self._and_plane, axis=1, out=result)
        np.logical_not(result, out=result)
        return result

    def and_popcount(self, vec: np.ndarray,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-row ``popcount(row & vec)``.

        In hardware the count is not produced digitally — the voltage
        drop on the RBL is proportional to it and a thresholded sense
        amplifier yields the comparison (§4.1).  The model exposes the
        count; callers compare against a threshold exactly once, which
        is the single sensing the hardware performs.
        """
        np.logical_and(self.bits, vec, out=self._and_plane)
        result = out if out is not None else np.empty(self.rows,
                                                      dtype=np.intp)
        np.add.reduce(self._and_plane, axis=1, dtype=np.intp, out=result)
        return result

    def and_popcount_below(self, vec: np.ndarray, threshold: int,
                           out: Optional[np.ndarray] = None,
                           counts: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-row ``popcount(row & vec) < threshold`` — the bit count
        encoding sensed against a reference voltage."""
        counts = self.and_popcount(vec, out=counts)
        result = out if out is not None else np.empty(self.rows, dtype=bool)
        np.less(counts, threshold, out=result)
        return result

    # -- bookkeeping ------------------------------------------------------

    def any_set(self) -> bool:
        return bool(self.bits.any())

    def density(self) -> float:
        """Fraction of set bits (used by the power model)."""
        return float(self.bits.mean())

    def copy(self) -> "BitMatrix":
        clone = BitMatrix(self.rows, self.cols)
        clone.bits = self.bits.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return (self.rows == other.rows and self.cols == other.cols
                and bool(np.array_equal(self.bits, other.bits)))

    def __repr__(self) -> str:
        return f"<BitMatrix {self.rows}x{self.cols} density={self.density():.3f}>"
