"""REPRO_CHECK: self-verification mode for the incremental caches.

The hot-path engine keeps derived scheduler state — the wakeup
matrix's ready vector, the merged commit matrix's commit-eligible
vector — *incrementally*, updating it on dispatch/issue/resolve/
remove/squash events instead of re-deriving it from the bit matrices
every cycle.  ``REPRO_CHECK=1`` turns on a cross-check: every cached
answer is recomputed from first principles (the full matrix reduction)
and compared, raising :class:`CheckError` on the first divergence.

The flag is read once and latched (matrices capture it at
construction), so the steady-state cost of an unchecked run is a single
``bool`` attribute.  Tests use :func:`reset` + :func:`set_enabled` to
flip the mode without re-importing.
"""

from __future__ import annotations

from typing import Optional

_enabled: Optional[bool] = None


class CheckError(AssertionError):
    """An incremental cache diverged from the full recomputation."""


def check_enabled() -> bool:
    """True when ``REPRO_CHECK`` is set truthy (see ``repro.envutil``)."""
    global _enabled
    if _enabled is None:
        from ..envutil import env_flag
        _enabled = env_flag("REPRO_CHECK", default=False)
    return _enabled


def set_enabled(value: bool) -> None:
    """Force the mode (tests); overrides the environment."""
    global _enabled
    _enabled = bool(value)


def reset() -> None:
    """Forget the latched value; next query re-reads ``REPRO_CHECK``."""
    global _enabled
    _enabled = None
