"""Lockdown matrix and lockdown table for TSO load-load ordering
(paper §3.3, Figure 7).

Under TSO, a load that *commits* before an older load has *performed*
reorders the load→load edge.  Following Ros et al., the reordering is
made non-speculative by locking down the committed load's cache line:
invalidation acknowledgements and evictions for that address are
withheld until every older load has performed, at which point the
reordering can no longer be observed by other cores.

With a non-collapsible LQ the closest-older-load hand-off of the
original scheme breaks, so Orinoco tracks each committed load against
*all* of its older non-performed loads in a lockdown matrix: rows are
lockdown table (LDT) entries (committed loads), columns are LQ entries.
A performed load clears its column; a lockdown lifts when its row
reduction-NORs to zero.  Multiple lockdowns may cover one address; the
address is released only when all of them lift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .bitmatrix import BitMatrix


@dataclass
class LockdownEntry:
    """One LDT entry: a committed load still awaiting older loads."""

    address: int
    load_seq: int


class LockdownMatrix:
    """Tracks committed loads against older non-performed LQ loads."""

    def __init__(self, ldt_size: int, lq_size: int):
        self.ldt_size = ldt_size
        self.lq_size = lq_size
        self.matrix = BitMatrix(ldt_size, lq_size)
        self.entries: List[Optional[LockdownEntry]] = [None] * ldt_size
        #: locked address → number of active lockdowns covering it
        self._locks: Dict[int, int] = {}

    def has_free_entry(self) -> bool:
        return any(entry is None for entry in self.entries)

    def lockdown(self, address: int, load_seq: int,
                 older_nonperformed: np.ndarray) -> int:
        """A load commits past older non-performed loads; lock its line.

        Returns the LDT entry index.  Raises if the LDT is full — the
        commit logic must stall early load commit in that case.
        """
        if not np.any(older_nonperformed):
            raise ValueError(
                "lockdown requires at least one older non-performed load; "
                "an ordered load commits without locking")
        for idx, entry in enumerate(self.entries):
            if entry is None:
                self.entries[idx] = LockdownEntry(address, load_seq)
                self.matrix.set_row(idx, older_nonperformed)
                self._locks[address] = self._locks.get(address, 0) + 1
                return idx
        raise RuntimeError("lockdown table full")

    def load_performed(self, lq_entry: int) -> List[int]:
        """An LQ load performed: clear its column; return lifted locks.

        The returned list holds addresses whose *last* lockdown lifted
        this cycle, i.e. whose invalidation acks may now be released.
        """
        self.matrix.clear_column(lq_entry)
        released: List[int] = []
        for idx, entry in enumerate(self.entries):
            if entry is None:
                continue
            if not self.matrix.row(idx).any():
                self.entries[idx] = None
                count = self._locks[entry.address] - 1
                if count:
                    self._locks[entry.address] = count
                else:
                    del self._locks[entry.address]
                    released.append(entry.address)
        return released

    def is_locked(self, address: int) -> bool:
        """Would an invalidation/eviction of ``address`` be withheld?"""
        return address in self._locks

    def active_lockdowns(self) -> int:
        return sum(entry is not None for entry in self.entries)
