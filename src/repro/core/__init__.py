"""Orinoco's contribution: matrix schedulers over non-collapsible queues."""

from .age_matrix import AgeMatrix
from .bitmatrix import BitMatrix
from .commit_matrix import CommitDependencyMatrix, MergedCommitMatrix
from .disambiguation import MemoryDisambiguationMatrix
from .lanestack import LaneSlot, LaneStack
from .lockdown import LockdownEntry, LockdownMatrix
from .wakeup_matrix import WakeupMatrix

__all__ = [
    "AgeMatrix", "BitMatrix", "CommitDependencyMatrix", "MergedCommitMatrix",
    "MemoryDisambiguationMatrix", "LaneSlot", "LaneStack",
    "LockdownEntry", "LockdownMatrix", "WakeupMatrix",
]
