"""Memory disambiguation matrix (paper §3.3, Figure 6).

Rows are load queue entries, columns are store queue entries.  Bit
``(l, s)`` means *load l issued speculatively past store s whose address
was still unresolved*.  When a store resolves its address it reads its
column to find the speculative loads, clears the bits of non-conflicting
loads, and squash-replays conflicting ones.  A load becomes
non-speculative (its SPEC bit in the ROB can clear, enabling early
commit) when its row reduction-NORs to zero and no replay is pending.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .bitmatrix import BitMatrix


class MemoryDisambiguationMatrix:
    """Load/store dependency tracker over non-collapsible LQ/SQ."""

    def __init__(self, lq_size: int, sq_size: int):
        self.lq_size = lq_size
        self.sq_size = sq_size
        self.matrix = BitMatrix(lq_size, sq_size)
        self.load_valid = np.zeros(lq_size, dtype=bool)
        self.store_valid = np.zeros(sq_size, dtype=bool)

    # -- load side -------------------------------------------------------

    def load_issue(self, lq_entry: int, unresolved_stores: np.ndarray) -> None:
        """A load issues; mark the older stores with unresolved addresses.

        ``unresolved_stores`` is a boolean mask over SQ entries computed
        by the LSQ (older than the load, address not yet known).
        """
        self.matrix.set_row(lq_entry, unresolved_stores & self.store_valid)
        self.load_valid[lq_entry] = True

    def load_remove(self, lq_entry: int) -> None:
        """The load leaves the LQ (commit or squash)."""
        self.load_valid[lq_entry] = False
        self.matrix.clear_row(lq_entry)

    def load_is_nonspeculative(self, lq_entry: int) -> bool:
        """True when every older store the load bypassed has resolved."""
        return not self.matrix.row(lq_entry).any()

    def nonspeculative_loads(self) -> np.ndarray:
        """Grant vector over the LQ: rows that reduction-NOR to zero."""
        clear = self.matrix.and_reduce_nor(np.ones(self.sq_size, dtype=bool))
        return clear & self.load_valid

    # -- store side ---------------------------------------------------------

    def store_allocate(self, sq_entry: int) -> None:
        if self.store_valid[sq_entry]:
            raise ValueError(f"SQ entry {sq_entry} already valid")
        self.store_valid[sq_entry] = True
        self.matrix.clear_column(sq_entry)

    def store_dependents(self, sq_entry: int) -> np.ndarray:
        """Column read: speculative loads that bypassed this store."""
        return self.matrix.column(sq_entry) & self.load_valid

    def store_resolve(self, sq_entry: int,
                      conflicting_loads: np.ndarray) -> List[int]:
        """The store's address is now known.

        Clears the column for non-conflicting loads and returns the LQ
        entries of conflicting speculative loads, which the LSQ must
        squash-replay.  The conflict mask comes from the LSQ's address
        comparison.
        """
        dependents = self.store_dependents(sq_entry)
        conflicts = dependents & conflicting_loads
        self.matrix.clear_column(sq_entry)
        return [int(idx) for idx in np.flatnonzero(conflicts)]

    def store_remove(self, sq_entry: int) -> None:
        """The store leaves the SQ; it can no longer block any load."""
        self.store_valid[sq_entry] = False
        self.matrix.clear_column(sq_entry)
