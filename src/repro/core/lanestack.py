"""Lane-stacked struct-of-arrays storage for the matrix schedulers.

The lane-batched engine (:mod:`repro.pipeline.lanes`) steps N
independent (config, workload) cells in lockstep.  Each cell's matrix
state — the IQ age matrix, the wakeup matrix, and the merged ROB
age/SPEC matrix — would normally live in per-core ``np.zeros`` blocks
scattered across the heap.  :class:`LaneStack` instead allocates one
3-D array per plane with a leading **lane axis**::

    iq_age_bits   : (lanes, iq_size, iq_size)   bool
    wakeup_pending: (lanes, iq_size)            intp
    rob_age_bits  : (lanes, rob_size, rob_size) bool
    ...

and hands each lane a :class:`LaneSlot` of 2-D/1-D *views* into those
stacks.  The matrix classes accept the views through their ``storage``
parameter and operate on them exactly as they would on owned arrays —
so per-cell semantics (and therefore ``SimStats``) are identical to
the scalar engine by construction, while cross-lane operations
(occupancy sampling, the batched ``REPRO_CHECK`` re-derivation in
:meth:`LaneStack.verify`) become single vectorised NumPy calls over
the lane axis.

Slot reuse protocol: when a lane retires its cell, the next occupant's
matrix constructors re-zero every *state* plane of the slot (``bits``,
``valid``, ``critical``, ``pending``, ``ready``, ``spec``,
``blockers``, ``safe``, ``rob_scratch``); the ``and_plane`` scratch
planes carry no state and are never cleared (matching the owned
``np.empty`` allocation of the scalar path).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from . import check

__all__ = ["BitPlanes", "AgePlanes", "WakeupPlanes", "MergedPlanes",
           "LaneSlot", "LaneStack"]


class BitPlanes:
    """Views backing one :class:`~repro.core.BitMatrix`."""

    __slots__ = ("bits", "and_plane")

    def __init__(self, bits: np.ndarray, and_plane: np.ndarray):
        self.bits = bits
        self.and_plane = and_plane


class AgePlanes:
    """Views backing one :class:`~repro.core.AgeMatrix`."""

    __slots__ = ("bit", "valid", "critical")

    def __init__(self, bit: BitPlanes, valid: np.ndarray,
                 critical: np.ndarray):
        self.bit = bit
        self.valid = valid
        self.critical = critical


class WakeupPlanes:
    """Views backing one :class:`~repro.core.WakeupMatrix`."""

    __slots__ = ("bit", "valid", "pending", "ready")

    def __init__(self, bit: BitPlanes, valid: np.ndarray,
                 pending: np.ndarray, ready: np.ndarray):
        self.bit = bit
        self.valid = valid
        self.pending = pending
        self.ready = ready


class MergedPlanes:
    """Views backing one :class:`~repro.core.MergedCommitMatrix`."""

    __slots__ = ("age", "spec", "blockers", "safe")

    def __init__(self, age: AgePlanes, spec: np.ndarray,
                 blockers: np.ndarray, safe: np.ndarray):
        self.age = age
        self.spec = spec
        self.blockers = blockers
        self.safe = safe


class LaneSlot:
    """One lane's worth of views into a :class:`LaneStack`."""

    __slots__ = ("lane", "iq_size", "rob_size", "iq_age", "wakeup",
                 "merged", "rob_scratch", "issue_ready", "iq_stamp",
                 "iq_fu")

    def __init__(self, lane: int, iq_size: int, rob_size: int,
                 iq_age: AgePlanes, wakeup: WakeupPlanes,
                 merged: MergedPlanes, rob_scratch: np.ndarray,
                 issue_ready: np.ndarray, iq_stamp: np.ndarray,
                 iq_fu: np.ndarray):
        self.lane = lane
        self.iq_size = iq_size
        self.rob_size = rob_size
        self.iq_age = iq_age
        self.wakeup = wakeup
        self.merged = merged
        self.rob_scratch = rob_scratch
        self.issue_ready = issue_ready
        self.iq_stamp = iq_stamp
        self.iq_fu = iq_fu


class LaneStack:
    """3-D lane-stacked matrix state for up to ``lanes`` cells.

    All cells sharing a stack must agree on ``iq_size`` and
    ``rob_size`` (the harness groups by :func:`~repro.pipeline.lanes.
    lane_key`, which also pins queue organisation and ROB release
    policy so batch-mates exercise the same structures).
    """

    def __init__(self, lanes: int, iq_size: int, rob_size: int):
        if lanes < 1:
            raise ValueError("lane count must be positive")
        if iq_size <= 0 or rob_size <= 0:
            raise ValueError("matrix dimensions must be positive")
        self.lanes = lanes
        self.iq_size = iq_size
        self.rob_size = rob_size
        shape_iq = (lanes, iq_size, iq_size)
        shape_rob = (lanes, rob_size, rob_size)
        # IQ age matrix planes
        self.iq_age_bits = np.zeros(shape_iq, dtype=bool)
        self.iq_age_and = np.empty(shape_iq, dtype=bool)
        self.iq_age_valid = np.zeros((lanes, iq_size), dtype=bool)
        self.iq_age_critical = np.zeros((lanes, iq_size), dtype=bool)
        # wakeup matrix planes
        self.wakeup_bits = np.zeros(shape_iq, dtype=bool)
        self.wakeup_and = np.empty(shape_iq, dtype=bool)
        self.wakeup_valid = np.zeros((lanes, iq_size), dtype=bool)
        self.wakeup_pending = np.zeros((lanes, iq_size), dtype=np.intp)
        self.wakeup_ready = np.zeros((lanes, iq_size), dtype=bool)
        # merged ROB age/SPEC planes
        self.rob_age_bits = np.zeros(shape_rob, dtype=bool)
        self.rob_age_and = np.empty(shape_rob, dtype=bool)
        self.rob_age_valid = np.zeros((lanes, rob_size), dtype=bool)
        self.rob_age_critical = np.zeros((lanes, rob_size), dtype=bool)
        self.spec = np.zeros((lanes, rob_size), dtype=bool)
        self.blockers = np.zeros((lanes, rob_size), dtype=np.intp)
        self.safe = np.zeros((lanes, rob_size), dtype=bool)
        # per-lane ROB-sized bool scratch (PipelineState.rob_scratch)
        self.rob_scratch = np.zeros((lanes, rob_size), dtype=bool)
        # issue-stage struct-of-arrays columns (repro.pipeline.
        # vectorstages): the per-op Python state the vectorized select
        # kernel needs, promoted to lane-axis planes.  ``issue_ready``
        # mirrors each lane's ``PipelineState.ready_set`` bit-for-bit
        # (maintained by the MirroredReadySet wrapper); ``iq_stamp`` /
        # ``iq_fu`` hold the occupant's dispatch stamp and FU code,
        # written at dispatch.  Freed entries keep stale stamps — the
        # kernels mask with ``issue_ready``, which only covers live
        # ready entries, so stale values are never read.
        self.issue_ready = np.zeros((lanes, iq_size), dtype=bool)
        self.iq_stamp = np.zeros((lanes, iq_size), dtype=np.int64)
        self.iq_fu = np.zeros((lanes, iq_size), dtype=np.int8)

    def slot(self, lane: int) -> LaneSlot:
        """Views for one lane, ready to back a ``PipelineState``."""
        if not 0 <= lane < self.lanes:
            raise IndexError(f"lane {lane} out of range 0..{self.lanes - 1}")
        iq_age = AgePlanes(
            BitPlanes(self.iq_age_bits[lane], self.iq_age_and[lane]),
            self.iq_age_valid[lane], self.iq_age_critical[lane])
        wakeup = WakeupPlanes(
            BitPlanes(self.wakeup_bits[lane], self.wakeup_and[lane]),
            self.wakeup_valid[lane], self.wakeup_pending[lane],
            self.wakeup_ready[lane])
        merged = MergedPlanes(
            AgePlanes(
                BitPlanes(self.rob_age_bits[lane], self.rob_age_and[lane]),
                self.rob_age_valid[lane], self.rob_age_critical[lane]),
            self.spec[lane], self.blockers[lane], self.safe[lane])
        return LaneSlot(lane, self.iq_size, self.rob_size, iq_age,
                        wakeup, merged, self.rob_scratch[lane],
                        self.issue_ready[lane], self.iq_stamp[lane],
                        self.iq_fu[lane])

    # -- batched cross-lane operations ---------------------------------

    def iq_occupancy(self) -> np.ndarray:
        """Valid-IQ-entry count per lane: one reduction over the stack."""
        return np.count_nonzero(self.iq_age_valid, axis=1)

    def rob_occupancy(self) -> np.ndarray:
        """Valid-ROB-entry count per lane."""
        return np.count_nonzero(self.rob_age_valid, axis=1)

    def verify(self, lanes: Iterable[int]) -> None:
        """Batched ``REPRO_CHECK`` re-derivation across active lanes.

        Re-derives the wakeup pending counters and the merged blocker
        counters from the stacked bit planes for *all* given lanes in
        a handful of vectorised operations, and compares them against
        the incremental caches — the cross-lane analogue of the
        per-operation ``_verify`` hooks on the scalar matrices.
        Counters of invalid rows are garbage by contract and excluded.
        """
        idx: List[int] = list(lanes)
        if not idx:
            return
        counts = self.wakeup_bits[idx].sum(axis=2)
        bad = self.wakeup_valid[idx] & (counts != self.wakeup_pending[idx])
        if bad.any():
            lane, entry = (int(v[0]) for v in np.nonzero(bad))
            raise check.CheckError(
                f"lane-stack wakeup pending diverged: lane {idx[lane]} "
                f"entry {entry} cached="
                f"{int(self.wakeup_pending[idx[lane], entry])} "
                f"matrix={int(counts[lane, entry])}")
        blockers = (self.rob_age_bits[idx]
                    & self.spec[idx][:, None, :]).sum(axis=2)
        bad = self.rob_age_valid[idx] & (blockers != self.blockers[idx])
        if bad.any():
            lane, entry = (int(v[0]) for v in np.nonzero(bad))
            raise check.CheckError(
                f"lane-stack merged blockers diverged: lane {idx[lane]} "
                f"entry {entry} cached="
                f"{int(self.blockers[idx[lane], entry])} "
                f"matrix={int(blockers[lane, entry])}")

    def __repr__(self) -> str:
        return (f"<LaneStack lanes={self.lanes} iq={self.iq_size} "
                f"rob={self.rob_size}>")
