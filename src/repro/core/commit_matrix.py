"""Commit dependency tracking (paper §3.2).

Two implementations with identical semantics:

* :class:`CommitDependencyMatrix` — the explicit ROB-sized matrix of
  Figure 5: at dispatch an instruction sets its row for every older
  instruction that may still raise misspeculation or an exception; a
  resolving instruction clears its column; a completed instruction may
  commit when its row reduction-NORs to zero.

* :class:`MergedCommitMatrix` — the merged design the paper actually
  builds (Figure 4): the ROB's age matrix plus a **SPEC vector**.  The
  bit for an instruction is set in SPEC at dispatch if it may raise
  misspeculation/exceptions and cleared once it is safe; the commit
  check for a completed instruction is ``NOR(age_row & SPEC)``.  The
  merge exploits that "older speculative instructions" is exactly
  "age_row AND SPEC", cutting the area of a second ROB-sized matrix
  (40% for the paper's configuration — reproduced by the circuit
  model's report).

``tests/test_commit_matrix.py`` proves the two stay bit-identical under
random operation streams (hypothesis).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .age_matrix import AgeMatrix
from .bitmatrix import BitMatrix


class CommitDependencyMatrix:
    """Explicit commit dependency matrix (Figure 5)."""

    def __init__(self, size: int):
        self.size = size
        self.matrix = BitMatrix(size, size)
        self.valid = np.zeros(size, dtype=bool)
        self._speculative = np.zeros(size, dtype=bool)

    def dispatch(self, entry: int, speculative: bool) -> None:
        """Install an instruction; its row marks older speculative ones."""
        if self.valid[entry]:
            raise ValueError(f"entry {entry} already valid")
        self.matrix.set_row(entry, self._speculative & self.valid)
        self.matrix.clear_column(entry)
        self.valid[entry] = True
        self._speculative[entry] = speculative

    def resolve(self, entry: int) -> None:
        """The instruction in ``entry`` is now guaranteed safe."""
        if not self.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        self._speculative[entry] = False
        self.matrix.clear_column(entry)

    def remove(self, entry: int) -> None:
        if not self.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        self.valid[entry] = False
        self._speculative[entry] = False
        self.matrix.clear_column(entry)

    def can_commit(self, completed: np.ndarray) -> np.ndarray:
        """Grant vector: completed instructions whose row is all zero."""
        clear = self.matrix.and_reduce_nor(np.ones(self.size, dtype=bool))
        return clear & completed & self.valid

    def is_speculative(self, entry: int) -> bool:
        return bool(self._speculative[entry])


class MergedCommitMatrix:
    """ROB age matrix merged with the SPEC vector (Figure 4).

    Owns the ROB's age matrix so callers get both temporal ordering
    (squash sets, oldest-exception location, oldest-first commit
    selection) and commit dependency checks from one structure.
    """

    def __init__(self, size: int):
        self.size = size
        self.age = AgeMatrix(size)
        #: SPEC — entries that may still raise misspeculation/exceptions.
        self.spec = np.zeros(size, dtype=bool)

    @property
    def valid(self) -> np.ndarray:
        return self.age.valid

    def dispatch(self, entry: int, speculative: bool) -> None:
        self.age.dispatch(entry)
        self.spec[entry] = speculative

    def dispatch_group(self, entries: List[int],
                       speculative: List[bool]) -> None:
        for entry, flag in zip(entries, speculative):
            self.dispatch(entry, flag)

    def resolve(self, entry: int) -> None:
        """Clear the SPEC bit: the instruction is now non-speculative."""
        if not self.age.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        self.spec[entry] = False

    def remove(self, entry: int) -> None:
        self.age.remove(entry)
        self.spec[entry] = False

    def can_commit(self, completed: np.ndarray) -> np.ndarray:
        """Grant vector: completed entries with no older speculative one.

        One AND + reduction NOR against the SPEC vector (Figure 4).
        """
        safe = self.age.matrix.and_reduce_nor(self.spec & self.valid)
        return safe & completed & self.valid

    def select_commit(self, completed: np.ndarray, width: int) -> np.ndarray:
        """Up to ``width`` oldest commit-eligible entries this cycle."""
        eligible = self.can_commit(completed)
        if not eligible.any():
            return eligible
        return self.age.select_oldest(eligible, width)

    def oldest_blocker(self) -> Optional[int]:
        """Oldest instruction left in the ROB.

        When nothing can commit, this is the instruction that either has
        not resolved its speculation or has raised an exception — the
        precise-exception location of §3.2.
        """
        return self.age.oldest()

    def squash_set(self, entry: int) -> np.ndarray:
        """Entries younger than a delinquent instruction (column read)."""
        return self.age.younger_than(entry)
