"""Commit dependency tracking (paper §3.2).

Two implementations with identical semantics:

* :class:`CommitDependencyMatrix` — the explicit ROB-sized matrix of
  Figure 5: at dispatch an instruction sets its row for every older
  instruction that may still raise misspeculation or an exception; a
  resolving instruction clears its column; a completed instruction may
  commit when its row reduction-NORs to zero.

* :class:`MergedCommitMatrix` — the merged design the paper actually
  builds (Figure 4): the ROB's age matrix plus a **SPEC vector**.  The
  bit for an instruction is set in SPEC at dispatch if it may raise
  misspeculation/exceptions and cleared once it is safe; the commit
  check for a completed instruction is ``NOR(age_row & SPEC)``.  The
  merge exploits that "older speculative instructions" is exactly
  "age_row AND SPEC", cutting the area of a second ROB-sized matrix
  (40% for the paper's configuration — reproduced by the circuit
  model's report).

``tests/test_commit_matrix.py`` proves the two stay bit-identical under
random operation streams (hypothesis).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from . import check
from .age_matrix import AgeMatrix
from .bitmatrix import BitMatrix


class CommitDependencyMatrix:
    """Explicit commit dependency matrix (Figure 5)."""

    def __init__(self, size: int):
        self.size = size
        self.matrix = BitMatrix(size, size)
        self.valid = np.zeros(size, dtype=bool)
        self._speculative = np.zeros(size, dtype=bool)

    def dispatch(self, entry: int, speculative: bool) -> None:
        """Install an instruction; its row marks older speculative ones."""
        if self.valid[entry]:
            raise ValueError(f"entry {entry} already valid")
        self.matrix.set_row(entry, self._speculative & self.valid)
        self.matrix.clear_column(entry)
        self.valid[entry] = True
        self._speculative[entry] = speculative

    def resolve(self, entry: int) -> None:
        """The instruction in ``entry`` is now guaranteed safe."""
        if not self.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        self._speculative[entry] = False
        self.matrix.clear_column(entry)

    def remove(self, entry: int) -> None:
        if not self.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        self.valid[entry] = False
        self._speculative[entry] = False
        self.matrix.clear_column(entry)

    def can_commit(self, completed: np.ndarray) -> np.ndarray:
        """Grant vector: completed instructions whose row is all zero."""
        clear = self.matrix.and_reduce_nor(np.ones(self.size, dtype=bool))
        return clear & completed & self.valid

    def is_speculative(self, entry: int) -> bool:
        return bool(self._speculative[entry])


class MergedCommitMatrix:
    """ROB age matrix merged with the SPEC vector (Figure 4).

    Owns the ROB's age matrix so callers get both temporal ordering
    (squash sets, oldest-exception location, oldest-first commit
    selection) and commit dependency checks from one structure.

    Commit eligibility is tracked *incrementally*: ``_blockers`` holds,
    for every valid entry, ``popcount(age_row & SPEC)`` — the number of
    older still-speculative instructions.  Dispatch seeds it with the
    current speculative population (every speculative entry is older
    than the newcomer); resolving or removing a speculative entry
    subtracts its age column from the counters.  The "safe" vector
    (``_blockers == 0`` among valid entries) is a dirty-flagged cache.
    The counters stay exact against this non-collapsible structure's
    stale bits because SPEC ⊆ valid at all times (freed entries drop
    their SPEC bit before the column can go stale) and dispatch both
    clears the newcomer's age column and reseeds its counter.
    ``REPRO_CHECK=1`` re-derives everything from the matrix and
    compares (see :mod:`repro.core.check`).
    """

    def __init__(self, size: int, storage=None):
        self.size = size
        if storage is None:
            self.age = AgeMatrix(size)
            #: SPEC — entries that may still raise misspeculation.
            self.spec = np.zeros(size, dtype=bool)
            #: per-entry count of older speculative entries (valid rows)
            self._blockers = np.zeros(size, dtype=np.intp)
            #: cached safe-and-valid vector, re-derived when dirty
            self._safe = np.zeros(size, dtype=bool)
        else:
            # lane-stacked backing (repro.core.lanestack.MergedPlanes):
            # adopt the views and re-zero the state for slot reuse
            self.age = AgeMatrix(size, storage=storage.age)
            self.spec = storage.spec
            self.spec[...] = False
            self._blockers = storage.blockers
            self._blockers[...] = 0
            self._safe = storage.safe
            self._safe[...] = False
        self._n_spec = 0
        self._dirty = True
        self._eligible = np.empty(size, dtype=bool)
        self._check = check.check_enabled()

    @property
    def valid(self) -> np.ndarray:
        return self.age.valid

    def dispatch(self, entry: int, speculative: bool) -> None:
        self.age.dispatch(entry)
        self.spec[entry] = speculative
        # the newcomer's age row is exactly the valid vector, so its
        # blocker count is the whole speculative population
        self._blockers[entry] = self._n_spec
        if speculative:
            self._n_spec += 1
        self._dirty = True
        if self._check:
            self._verify(f"dispatch({entry})")

    def dispatch_group(self, entries: List[int],
                       speculative: List[bool]) -> None:
        """Install a dispatch group, oldest first (batched age write)."""
        k = len(entries)
        if k == 0:
            return
        self.age.dispatch_group(entries)
        n = self._n_spec
        for entry, flag in zip(entries, speculative):
            self.spec[entry] = flag
            self._blockers[entry] = n
            if flag:
                n += 1
        self._n_spec = n
        self._dirty = True
        if self._check:
            self._verify(f"dispatch_group({list(entries)})")

    def resolve(self, entry: int) -> None:
        """Clear the SPEC bit: the instruction is now non-speculative."""
        if not self.age.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        if self.spec[entry]:
            self.spec[entry] = False
            self._n_spec -= 1
            np.subtract(self._blockers, self.age.matrix.bits[:, entry],
                        out=self._blockers)
            self._dirty = True
        if self._check:
            self._verify(f"resolve({entry})")

    def remove(self, entry: int) -> None:
        if self.spec[entry]:
            # removed while still speculative (squash, or commit past
            # its own unresolved-but-harmless SPEC bit): younger valid
            # entries stop counting it
            self.spec[entry] = False
            self._n_spec -= 1
            np.subtract(self._blockers, self.age.matrix.bits[:, entry],
                        out=self._blockers)
        self.age.remove(entry)
        self._dirty = True
        if self._check:
            self._verify(f"remove({entry})")

    def _refresh(self) -> None:
        if self._dirty:
            np.equal(self._blockers, 0, out=self._safe)
            np.logical_and(self._safe, self.age.valid, out=self._safe)
            self._dirty = False

    def can_commit(self, completed: np.ndarray,
                   out: Optional[np.ndarray] = None) -> np.ndarray:
        """Grant vector: completed entries with no older speculative one.

        One AND + reduction NOR against the SPEC vector (Figure 4) —
        served from the incremental blocker counters.  Callers must
        not mutate the returned array unless they passed ``out``.
        """
        self._refresh()
        if self._check:
            self._verify("can_commit()")
        result = out if out is not None else np.empty(self.size, dtype=bool)
        np.logical_and(self._safe, completed, out=result)
        return result

    def select_commit(self, completed: np.ndarray, width: int) -> np.ndarray:
        """Up to ``width`` oldest commit-eligible entries this cycle.

        Returns a matrix-owned scratch vector, overwritten by the next
        call — callers consume it within the cycle (the pipeline does).
        """
        eligible = self.can_commit(completed, out=self._eligible)
        if not eligible.any():
            return eligible
        return self.age.select_oldest(eligible, width, out=eligible)

    def oldest_blocker(self) -> Optional[int]:
        """Oldest instruction left in the ROB.

        When nothing can commit, this is the instruction that either has
        not resolved its speculation or has raised an exception — the
        precise-exception location of §3.2.
        """
        return self.age.oldest()

    def squash_set(self, entry: int) -> np.ndarray:
        """Entries younger than a delinquent instruction (column read)."""
        return self.age.younger_than(entry)

    # -- self-verification (REPRO_CHECK=1) ------------------------------

    def _verify(self, where: str) -> None:
        valid = self.age.valid
        n_spec = int(np.count_nonzero(self.spec))
        if n_spec != self._n_spec:
            raise check.CheckError(
                f"merged SPEC population diverged after {where}: "
                f"cached={self._n_spec} actual={n_spec}")
        if np.any(self.spec & ~valid):
            raise check.CheckError(
                f"SPEC bit on invalid entry after {where}")
        counts = (self.age.matrix.bits & self.spec).sum(axis=1)
        bad = np.flatnonzero(valid & (counts != self._blockers))
        if bad.size:
            e = int(bad[0])
            raise check.CheckError(
                f"merged blockers diverged after {where}: entry {e} "
                f"cached={int(self._blockers[e])} matrix={int(counts[e])}")
        if not self._dirty:
            full = (self.age.matrix.and_reduce_nor(self.spec & valid)
                    & valid)
            if not np.array_equal(full, self._safe):
                raise check.CheckError(
                    f"merged safe cache diverged after {where}: "
                    f"cached={np.flatnonzero(self._safe).tolist()} "
                    f"full={np.flatnonzero(full).tolist()}")
