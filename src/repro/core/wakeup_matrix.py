"""Wakeup matrix (paper §3.4, Figure 8).

Replaces the CAM-based wakeup of a conventional IQ: register renaming
already identifies each instruction's producers, so dependencies are
recorded positionally.  Bit ``(i, j)`` means *the instruction in IQ
entry i waits for the producer in IQ entry j*.  Issuing instructions
clear their columns (several per cycle); an instruction is awake when
its row reduction-NORs to zero.

Unlike the original per-operand matrices, one matrix covers all source
operands — what the PIM implementation makes cheap (§3.4).
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .bitmatrix import BitMatrix


class WakeupMatrix:
    """Positional dependence tracker over IQ entries."""

    def __init__(self, size: int):
        self.size = size
        self.matrix = BitMatrix(size, size)
        self.valid = np.zeros(size, dtype=bool)

    def dispatch(self, entry: int, producer_entries: Iterable[int]) -> None:
        """Install an instruction waiting on in-queue producers.

        ``producer_entries`` lists the IQ entries of the not-yet-issued
        producers of its source operands (empty → ready immediately).
        """
        if self.valid[entry]:
            raise ValueError(f"entry {entry} already valid")
        mask = np.zeros(self.size, dtype=bool)
        for producer in producer_entries:
            mask[producer] = True
        self.matrix.set_row(entry, mask)
        self.matrix.clear_column(entry)
        self.valid[entry] = True

    def issue(self, entries: Iterable[int]) -> None:
        """Issued instructions broadcast: clear their columns, free entries."""
        entries = list(entries)
        for entry in entries:
            if not self.valid[entry]:
                raise ValueError(f"entry {entry} not valid")
            self.valid[entry] = False
        self.matrix.clear_columns(entries)

    def squash(self, entries: Iterable[int]) -> None:
        """Remove squashed instructions without waking dependents.

        Dependents of a squashed producer are squashed too (they are
        younger), so clearing the columns is still safe; rows of the
        squashed entries are cleared for hygiene.
        """
        entries = list(entries)
        for entry in entries:
            self.valid[entry] = False
            self.matrix.clear_row(entry)
        self.matrix.clear_columns(entries)

    def ready(self) -> np.ndarray:
        """Grant vector of awake entries (row reduction-NOR)."""
        clear = self.matrix.and_reduce_nor(np.ones(self.size, dtype=bool))
        return clear & self.valid

    def is_ready(self, entry: int) -> bool:
        return bool(self.valid[entry]) and not self.matrix.row(entry).any()

    def waiting_on(self, entry: int) -> List[int]:
        """IQ entries the instruction still waits for (debug aid)."""
        return [int(idx) for idx in np.flatnonzero(self.matrix.row(entry))]
