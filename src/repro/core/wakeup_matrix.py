"""Wakeup matrix (paper §3.4, Figure 8).

Replaces the CAM-based wakeup of a conventional IQ: register renaming
already identifies each instruction's producers, so dependencies are
recorded positionally.  Bit ``(i, j)`` means *the instruction in IQ
entry i waits for the producer in IQ entry j*.  Issuing instructions
clear their columns (several per cycle); an instruction is awake when
its row reduction-NORs to zero.

Unlike the original per-operand matrices, one matrix covers all source
operands — what the PIM implementation makes cheap (§3.4).

Hot-path notes: readiness is tracked *incrementally*.  ``_pending``
holds, for every valid entry, the number of set bits in its row (its
not-yet-issued producers); dispatch seeds it, every cleared column
decrements it, so ``is_ready`` is an O(1) counter test instead of a row
read.  The full ``ready()`` grant vector is a dirty-flagged cache
re-derived from the counters only after a column clear.  The invariant
holds against the stale bits of this non-collapsible structure because
a valid row can only hold bits in currently-valid producer columns
(issue and squash clear columns before freeing them), and the counters
of invalid rows are garbage nobody reads — dispatch reseeds them.
``REPRO_CHECK=1`` re-derives everything from the matrix and compares
(see :mod:`repro.core.check`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from . import check
from .bitmatrix import BitMatrix


class WakeupMatrix:
    """Positional dependence tracker over IQ entries."""

    def __init__(self, size: int, storage=None):
        self.size = size
        if storage is None:
            self.matrix = BitMatrix(size, size)
            self.valid = np.zeros(size, dtype=bool)
            #: per-entry count of set row bits (valid entries only)
            self._pending = np.zeros(size, dtype=np.intp)
            #: cached grant vector, re-derived when dirty
            self._ready = np.zeros(size, dtype=bool)
        else:
            # lane-stacked backing (repro.core.lanestack.WakeupPlanes):
            # adopt the views and re-zero the state for slot reuse
            self.matrix = BitMatrix(size, size, storage=storage.bit)
            self.valid = storage.valid
            self.valid[...] = False
            self._pending = storage.pending
            self._pending[...] = 0
            self._ready = storage.ready
            self._ready[...] = False
        self._dirty = True
        self._mask = np.zeros(size, dtype=bool)
        self._ones = np.ones(size, dtype=bool)
        #: per-group-width row blocks, grown on demand (k is bounded by
        #: the dispatch width, so this holds a handful of buffers)
        self._group: dict = {}
        self._check = check.check_enabled()

    def dispatch(self, entry: int, producer_entries: Iterable[int]) -> None:
        """Install an instruction waiting on in-queue producers.

        ``producer_entries`` lists the IQ entries of the not-yet-issued
        producers of its source operands (empty → ready immediately).
        """
        if self.valid[entry]:
            raise ValueError(f"entry {entry} already valid")
        mask = self._mask
        mask[:] = False
        count = 0
        for producer in producer_entries:
            if not mask[producer]:
                mask[producer] = True
                count += 1
        self.matrix.set_row(entry, mask)
        self.matrix.clear_column(entry)
        self.valid[entry] = True
        self._pending[entry] = count
        # other rows are untouched (nobody holds a bit in a freed
        # column), so the cache stays coherent with a point update
        self._ready[entry] = count == 0
        if self._check:
            self._verify(f"dispatch({entry})")

    def dispatch_group(self, entries: Sequence[int],
                       producers: Sequence[Iterable[int]]) -> None:
        """Install a whole dispatch group in one cycle.

        Columns of the newcomers are cleared first, then all rows are
        written in one fancy-indexed store — so a group member waiting
        on an *earlier* member of the same group keeps its bit, exactly
        as under sequential dispatch.
        """
        k = len(entries)
        if k == 0:
            return
        if k == 1:
            self.dispatch(entries[0], producers[0])
            return
        try:
            rows = self._group[k]
        except KeyError:
            rows = self._group[k] = np.empty((k, self.size), dtype=bool)
        rows[:] = False
        for j, (entry, prods) in enumerate(zip(entries, producers)):
            if self.valid[entry]:
                raise ValueError(f"entry {entry} already valid")
            row = rows[j]
            count = 0
            for producer in prods:
                if not row[producer]:
                    row[producer] = True
                    count += 1
            self._pending[entry] = count
            self._ready[entry] = count == 0
            self.valid[entry] = True
        self.matrix.clear_columns(list(entries))
        # intra-group producer bits survive: every producer inside the
        # group is older (dispatched earlier), and its column clear
        # precedes all the row writes
        self.matrix.write_rows(list(entries), rows)
        if self._check:
            self._verify(f"dispatch_group({list(entries)})")

    def issue(self, entries: Iterable[int]) -> None:
        """Issued instructions broadcast: clear their columns, free entries."""
        entries = list(entries)
        bits = self.matrix.bits
        pending = self._pending
        for entry in entries:
            if not self.valid[entry]:
                raise ValueError(f"entry {entry} not valid")
            self.valid[entry] = False
            np.subtract(pending, bits[:, entry], out=pending)
        self.matrix.clear_columns(entries)
        self._dirty = True
        if self._check:
            self._verify(f"issue({entries})")

    def squash(self, entries: Iterable[int]) -> None:
        """Remove squashed instructions without waking dependents.

        Dependents of a squashed producer are squashed too (they are
        younger), so clearing the columns is still safe; rows of the
        squashed entries are cleared for hygiene.
        """
        entries = list(entries)
        bits = self.matrix.bits
        pending = self._pending
        for entry in entries:
            self.valid[entry] = False
            np.subtract(pending, bits[:, entry], out=pending)
            self.matrix.clear_row(entry)
            pending[entry] = 0
        self.matrix.clear_columns(entries)
        self._dirty = True
        if self._check:
            self._verify(f"squash({entries})")

    def ready(self) -> np.ndarray:
        """Grant vector of awake entries (row reduction-NOR).

        Served from the incremental cache; callers must not mutate the
        returned array.
        """
        if self._dirty:
            np.equal(self._pending, 0, out=self._ready)
            np.logical_and(self._ready, self.valid, out=self._ready)
            self._dirty = False
        if self._check:
            self._verify("ready()")
        return self._ready

    def is_ready(self, entry: int) -> bool:
        if self._check and self.valid[entry]:
            row_clear = not self.matrix.row(entry).any()
            if row_clear != (self._pending[entry] == 0):
                raise check.CheckError(
                    f"wakeup pending[{entry}]={self._pending[entry]} "
                    f"disagrees with matrix row (clear={row_clear})")
        return bool(self.valid[entry]) and self._pending[entry] == 0

    def waiting_on(self, entry: int) -> List[int]:
        """IQ entries the instruction still waits for (debug aid)."""
        return [int(idx) for idx in np.flatnonzero(self.matrix.row(entry))]

    # -- self-verification (REPRO_CHECK=1) ------------------------------

    def _verify(self, where: str) -> None:
        counts = self.matrix.bits.sum(axis=1)
        bad = np.flatnonzero(self.valid & (counts != self._pending))
        if bad.size:
            e = int(bad[0])
            raise check.CheckError(
                f"wakeup pending diverged after {where}: entry {e} "
                f"cached={int(self._pending[e])} matrix={int(counts[e])}")
        if not self._dirty:
            full = self.matrix.and_reduce_nor(self._ones) & self.valid
            if not np.array_equal(full, self._ready):
                raise check.CheckError(
                    f"wakeup ready cache diverged after {where}: "
                    f"cached={np.flatnonzero(self._ready).tolist()} "
                    f"full={np.flatnonzero(full).tolist()}")
