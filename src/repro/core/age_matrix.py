"""Age matrix with the bit count encoding (paper §3.1).

Decouples the temporal ordering of instructions from their positions in
a non-collapsible queue.  ``matrix[i][j] == 1`` means *the instruction
in entry j is older than the instruction in entry i*.

* At dispatch an instruction sets its row to all ones (every valid
  instruction is older) and clears its column (nobody considers the
  newcomer older).  Freed entries need no cleanup: the next occupant's
  dispatch overwrites the stale row and column.
* ``select_oldest(request, width)`` grants up to ``width`` oldest
  requesting entries in a single parallel step: entry *i* is granted iff
  ``popcount(row_i & request) < width`` — the bit count encoding.
* ``oldest(valid)`` locates the single oldest valid entry (used for
  precise exception location), the classic AND + reduction-NOR.
* Criticality (§3.1, Figure 3): a critical instruction dispatches with
  its row set only for *critical* valid entries and its column set for
  the valid *non-critical* entries — making every critical instruction
  appear older than every non-critical one while both groups stay
  age-ordered internally.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .bitmatrix import BitMatrix


class AgeMatrix:
    """Relative-age tracker over the entries of a non-collapsible queue."""

    def __init__(self, size: int):
        self.size = size
        self.matrix = BitMatrix(size, size)
        #: VLD — valid entries.
        self.valid = np.zeros(size, dtype=bool)
        #: CRI — entries currently holding critical-tagged instructions.
        self.critical = np.zeros(size, dtype=bool)

    # -- allocation ----------------------------------------------------

    def dispatch(self, entry: int, critical: bool = False) -> None:
        """Install a newly dispatched instruction into ``entry``."""
        if self.valid[entry]:
            raise ValueError(f"entry {entry} already valid")
        if critical:
            # Older than all valid non-critical, younger than valid critical.
            self.matrix.set_row(entry, self.valid & self.critical)
            self.matrix.set_column(entry, self.valid & ~self.critical)
        else:
            self.matrix.set_row(entry, self.valid.copy())
            self.matrix.clear_column(entry)
        self.valid[entry] = True
        self.critical[entry] = critical

    def dispatch_group(self, entries: List[int],
                       critical: Optional[List[bool]] = None) -> None:
        """Dispatch several instructions in one cycle, oldest first.

        Models superscalar dispatch (§5): the intra-group ordering is
        handled by the dispatch shortcut, equivalent to dispatching the
        group members sequentially.
        """
        flags = critical if critical is not None else [False] * len(entries)
        for entry, flag in zip(entries, flags):
            self.dispatch(entry, flag)

    def remove(self, entry: int) -> None:
        """Free an entry (issue from IQ / commit from ROB)."""
        if not self.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        self.valid[entry] = False
        self.critical[entry] = False

    def remove_group(self, entries: List[int]) -> None:
        for entry in entries:
            self.remove(entry)

    # -- scheduling ------------------------------------------------------

    def select_oldest(self, request: np.ndarray, width: int) -> np.ndarray:
        """Grant up to ``width`` oldest requesting entries (bit count).

        ``request`` is the BID vector of requesting entries.  Returns a
        boolean grant vector.  O(1): one matrix-wide AND plus one
        thresholded sense per row, all rows in parallel.
        """
        request = request & self.valid
        below = self.matrix.and_popcount_below(request, width)
        return below & request

    def select_single_oldest(self, request: np.ndarray) -> np.ndarray:
        """Classic AGE grant: only the single oldest requester wins."""
        request = request & self.valid
        grant = self.matrix.and_reduce_nor(request) & request
        return grant

    def oldest(self, among: Optional[np.ndarray] = None) -> Optional[int]:
        """Index of the oldest entry among ``among`` (default: all valid).

        Used to locate the oldest instruction left in the ROB — the one
        whose exception / unresolved speculation blocks commit (§3.1).
        """
        mask = self.valid if among is None else (among & self.valid)
        if not mask.any():
            return None
        grant = self.matrix.and_reduce_nor(mask) & mask
        indices = np.flatnonzero(grant)
        if len(indices) != 1:
            raise RuntimeError(
                f"age matrix corrupt: {len(indices)} oldest entries")
        return int(indices[0])

    def younger_than(self, entry: int) -> np.ndarray:
        """Valid entries younger than ``entry`` (column read).

        Used to locate the instructions to squash behind a mispredicted
        branch (§3.2, precise exception handling).
        """
        return self.matrix.column(entry) & self.valid

    def older_than(self, entry: int) -> np.ndarray:
        """Valid entries older than ``entry`` (row read)."""
        return self.matrix.row(entry) & self.valid

    def age_order(self, among: Optional[np.ndarray] = None) -> List[int]:
        """All requested entries sorted oldest → youngest.

        Not a hardware operation — a test/debug oracle derived from the
        matrix by repeated single-oldest extraction.
        """
        mask = (self.valid if among is None else (among & self.valid)).copy()
        order: List[int] = []
        while mask.any():
            entry = self.oldest(mask)
            order.append(entry)
            mask[entry] = False
        return order

    def occupancy(self) -> int:
        return int(self.valid.sum())
