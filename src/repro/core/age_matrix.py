"""Age matrix with the bit count encoding (paper §3.1).

Decouples the temporal ordering of instructions from their positions in
a non-collapsible queue.  ``matrix[i][j] == 1`` means *the instruction
in entry j is older than the instruction in entry i*.

* At dispatch an instruction sets its row to all ones (every valid
  instruction is older) and clears its column (nobody considers the
  newcomer older).  Freed entries need no cleanup: the next occupant's
  dispatch overwrites the stale row and column.
* ``select_oldest(request, width)`` grants up to ``width`` oldest
  requesting entries in a single parallel step: entry *i* is granted iff
  ``popcount(row_i & request) < width`` — the bit count encoding.
* ``oldest(valid)`` locates the single oldest valid entry (used for
  precise exception location), the classic AND + reduction-NOR.
* Criticality (§3.1, Figure 3): a critical instruction dispatches with
  its row set only for *critical* valid entries and its column set for
  the valid *non-critical* entries — making every critical instruction
  appear older than every non-critical one while both groups stay
  age-ordered internally.

Hot-path notes: ``dispatch_group`` writes a whole dispatch group with
two fancy-indexed stores (columns, then rows) instead of 2·k scalar
writes — see the method for the proof of sequential equivalence — and
the select primitives take ``out`` buffers plus a requester-count fast
path (≤ ``width`` requesters ⇒ everyone is granted, no matrix op).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .bitmatrix import BitMatrix


class AgeMatrix:
    """Relative-age tracker over the entries of a non-collapsible queue."""

    def __init__(self, size: int, storage=None):
        self.size = size
        if storage is None:
            self.matrix = BitMatrix(size, size)
            #: VLD — valid entries.
            self.valid = np.zeros(size, dtype=bool)
            #: CRI — entries holding critical-tagged instructions.
            self.critical = np.zeros(size, dtype=bool)
        else:
            # lane-stacked backing (repro.core.lanestack.AgePlanes):
            # adopt the views and re-zero the state for slot reuse;
            # scratch buffers below stay instance-owned (small, 1-D)
            self.matrix = BitMatrix(size, size, storage=storage.bit)
            self.valid = storage.valid
            self.valid[...] = False
            self.critical = storage.critical
            self.critical[...] = False
        # select scratch (callers may still pass their own ``out``)
        self._req = np.empty(size, dtype=bool)
        self._counts = np.empty(size, dtype=np.intp)
        # group-dispatch scratch, sized per group width on first use
        self._group: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._gvalid = np.empty(size, dtype=bool)
        self._gcrit = np.empty(size, dtype=bool)
        self._gtmp = np.empty(size, dtype=bool)

    # -- allocation ----------------------------------------------------

    def dispatch(self, entry: int, critical: bool = False) -> None:
        """Install a newly dispatched instruction into ``entry``."""
        if self.valid[entry]:
            raise ValueError(f"entry {entry} already valid")
        if critical:
            # Older than all valid non-critical, younger than valid critical.
            np.logical_and(self.valid, self.critical, out=self._gtmp)
            self.matrix.set_row(entry, self._gtmp)
            np.logical_not(self.critical, out=self._gtmp)
            np.logical_and(self.valid, self._gtmp, out=self._gtmp)
            self.matrix.set_column(entry, self._gtmp)
        else:
            self.matrix.set_row(entry, self.valid)
            self.matrix.clear_column(entry)
        self.valid[entry] = True
        self.critical[entry] = critical

    def _group_scratch(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        try:
            return self._group[k]
        except KeyError:
            pair = (np.empty((k, self.size), dtype=bool),
                    np.empty((self.size, k), dtype=bool))
            self._group[k] = pair
            return pair

    def dispatch_group(self, entries: List[int],
                       critical: Optional[List[bool]] = None) -> None:
        """Dispatch several instructions in one cycle, oldest first.

        Models superscalar dispatch (§5): semantically equivalent to
        dispatching the group members sequentially, but lands in the
        matrix as one batched column write plus one batched row write.

        Equivalence: replaying the sequential interleave
        ``col_0, row_0, col_1, row_1, …`` the last writer of each cell
        is — outside the group block, the column write for group
        columns and the row write for group rows (sequential row masks
        never reach freed non-group columns, so the stale bits a scalar
        ``clear_column`` would leave match the batched column store);
        inside the k×k block, cell ``(e_j, e_i)`` with ``i < j`` takes
        row_j's mask evaluated after ``e_i`` dispatched — which is what
        the snapshotted row block holds — and with ``i > j`` takes
        col_i's value at time *i*: False unless ``e_i`` is critical and
        ``e_j`` is not.  All-non-critical groups (the common case) need
        no block patch at all: both triangles come out right from the
        two stores.
        """
        k = len(entries)
        if k == 0:
            return
        flags = critical if critical is not None else [False] * k
        if k == 1:
            self.dispatch(entries[0], bool(flags[0]))
            return
        if not any(flags):
            # all-non-critical fast path: every row is the valid
            # snapshot plus the older group members, every column is
            # clear — one broadcast, a tiny triangle patch, two stores
            valid = self.valid
            seen = set()
            for entry in entries:
                if valid[entry] or entry in seen:
                    raise ValueError(f"entry {entry} already valid")
                seen.add(entry)
            rows, _ = self._group_scratch(k)
            rows[:] = valid
            for i in range(k - 1):
                rows[i + 1:, entries[i]] = True
            self.matrix.clear_columns(entries)
            self.matrix.write_rows(entries, rows)
            valid[entries] = True
            self.critical[entries] = flags
            return
        rows, cols = self._group_scratch(k)
        v = self._gvalid
        c = self._gcrit
        np.copyto(v, self.valid)
        np.copyto(c, self.critical)
        any_crit = False
        for j, (entry, flag) in enumerate(zip(entries, flags)):
            if v[entry]:
                raise ValueError(f"entry {entry} already valid")
            if flag:
                any_crit = True
                np.logical_and(v, c, out=rows[j])
                np.logical_not(c, out=self._gtmp)
                np.logical_and(v, self._gtmp, out=cols[:, j])
            else:
                np.copyto(rows[j], v)
                cols[:, j] = False
            v[entry] = True
            c[entry] = flag
        self.matrix.write_columns(entries, cols)
        self.matrix.write_rows(entries, rows)
        if any_crit:
            # patch the upper triangle of the group block: the row
            # store put "not yet dispatched" (False) where the later
            # column write of a critical member must win
            bits = self.matrix.bits
            for j, ej in enumerate(entries):
                fj = flags[j]
                for i in range(j + 1, k):
                    if flags[i] and not fj:
                        bits[ej, entries[i]] = True
        self.valid[entries] = True
        self.critical[entries] = flags

    def remove(self, entry: int) -> None:
        """Free an entry (issue from IQ / commit from ROB)."""
        if not self.valid[entry]:
            raise ValueError(f"entry {entry} not valid")
        self.valid[entry] = False
        self.critical[entry] = False

    def remove_group(self, entries: List[int]) -> None:
        valid = self.valid
        critical = self.critical
        for entry in entries:
            if not valid[entry]:
                raise ValueError(f"entry {entry} not valid")
            valid[entry] = False
            critical[entry] = False

    # -- scheduling ------------------------------------------------------

    def select_oldest(self, request: np.ndarray, width: int,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
        """Grant up to ``width`` oldest requesting entries (bit count).

        ``request`` is the BID vector of requesting entries.  Returns a
        boolean grant vector (written into ``out`` when given).  O(1):
        one matrix-wide AND plus one thresholded sense per row, all rows
        in parallel.
        """
        req = np.logical_and(request, self.valid, out=self._req)
        result = out if out is not None else np.empty(self.size, dtype=bool)
        if np.count_nonzero(req) <= width:
            # every requester sees < width older requesters (the age
            # order is strict and the diagonal is zero), so the matrix
            # sense would grant all of them — skip it
            np.copyto(result, req)
            return result
        self.matrix.and_popcount_below(req, width, out=result,
                                       counts=self._counts)
        np.logical_and(result, req, out=result)
        return result

    def select_single_oldest(self, request: np.ndarray,
                             out: Optional[np.ndarray] = None) -> np.ndarray:
        """Classic AGE grant: only the single oldest requester wins."""
        req = np.logical_and(request, self.valid, out=self._req)
        result = out if out is not None else np.empty(self.size, dtype=bool)
        self.matrix.and_reduce_nor(req, out=result)
        np.logical_and(result, req, out=result)
        return result

    def oldest(self, among: Optional[np.ndarray] = None) -> Optional[int]:
        """Index of the oldest entry among ``among`` (default: all valid).

        Used to locate the oldest instruction left in the ROB — the one
        whose exception / unresolved speculation blocks commit (§3.1).
        """
        mask = self.valid if among is None else (among & self.valid)
        if not mask.any():
            return None
        grant = self.matrix.and_reduce_nor(mask) & mask
        indices = np.flatnonzero(grant)
        if len(indices) != 1:
            raise RuntimeError(
                f"age matrix corrupt: {len(indices)} oldest entries")
        return int(indices[0])

    def younger_than(self, entry: int) -> np.ndarray:
        """Valid entries younger than ``entry`` (column read).

        Used to locate the instructions to squash behind a mispredicted
        branch (§3.2, precise exception handling).
        """
        return self.matrix.column(entry) & self.valid

    def older_than(self, entry: int) -> np.ndarray:
        """Valid entries older than ``entry`` (row read)."""
        return self.matrix.row(entry) & self.valid

    def age_order(self, among: Optional[np.ndarray] = None) -> List[int]:
        """All requested entries sorted oldest → youngest.

        Not a hardware operation — a test/debug oracle derived from the
        matrix by repeated single-oldest extraction.
        """
        mask = (self.valid if among is None else (among & self.valid)).copy()
        order: List[int] = []
        while mask.any():
            entry = self.oldest(mask)
            order.append(entry)
            mask[entry] = False
        return order

    def occupancy(self) -> int:
        return int(self.valid.sum())
