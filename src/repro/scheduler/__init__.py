"""Issue selection policies over the IQ age matrix."""

from .policies import (AgeSelect, IdealSelect, MultSelect, OrinocoSelect,
                       RandomSelect, SelectContext, SelectPolicy,
                       make_select_policy)

__all__ = ["AgeSelect", "IdealSelect", "MultSelect", "OrinocoSelect",
           "RandomSelect", "SelectContext", "SelectPolicy",
           "make_select_policy"]
