"""Issue selection policies (paper §2.1, §3.1, Figure 13, Figure 14).

All policies answer the same question each cycle: given the set of
ready IQ entries, the per-type functional unit availability and the
issue width IW, which instructions issue?

* ``RandomSelect`` — RAND: no age information at all.
* ``AgeSelect`` — AGE (state of the art): the single oldest ready
  instruction is prioritized through the age matrix; the remaining
  issue slots are filled without regard to age.
* ``MultSelect`` — MULT: one age matrix per instruction type; the
  single oldest ready instruction *of each type* is prioritized,
  the rest filled randomly.
* ``OrinocoSelect`` — the contribution: the bit count encoding grants
  up to IW oldest ready instructions, arbitrated per execution-unit
  type under the partial ordering of Figure 13.
* ``IdealSelect`` — an oracle that sorts by true age; provably
  equivalent to ``OrinocoSelect`` (property-tested), and the selection
  a collapsible SHIFT queue would make positionally.

CRI (criticality scheduling) is not a separate selector: criticality is
encoded at dispatch into the age matrix (critical instructions inserted
as "older"), after which ``OrinocoSelect`` or ``AgeSelect`` run
unchanged — exactly the paper's design.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core import AgeMatrix
from ..pipeline.resources import FUType


class SelectContext:
    """What a policy may look at when selecting.

    ``entries`` are the ready IQ entry indices.  ``fu_of`` maps an entry
    to its FU type, ``age_of`` to its dispatch order (oracle — only
    IdealSelect uses it), ``age_matrix`` is the IQ's age matrix.
    """

    def __init__(self, entries: Sequence[int], fu_of: Callable[[int], FUType],
                 age_of: Callable[[int], int], age_matrix: AgeMatrix,
                 fu_available, width: int, rng: random.Random):
        self.entries = list(entries)
        self.fu_of = fu_of
        self.age_of = age_of
        self.age_matrix = age_matrix
        # flat per-type list indexed by FUType (what FUPool hands over);
        # a dict (convenient in tests) is normalised here once.  The
        # policies never mutate it — they copy before decrementing — so
        # hold the reference
        if isinstance(fu_available, dict):
            vec = [0] * len(FUType)
            for fu, count in fu_available.items():
                vec[fu] = count
            fu_available = vec
        self.fu_available = fu_available
        self.width = width
        self.rng = rng

    def request_mask(self, entries: Sequence[int],
                     out: np.ndarray = None) -> np.ndarray:
        mask = out if out is not None else np.zeros(self.age_matrix.size,
                                                    dtype=bool)
        mask[:] = False
        for entry in entries:
            mask[entry] = True
        return mask


class SelectPolicy(abc.ABC):
    """One issue-selection strategy."""

    name = "abstract"

    def __init__(self) -> None:
        # per-policy-instance select scratch (one mask + one grant
        # vector, sized to the IQ on first use) so steady-state
        # selection allocates nothing
        self._mask: np.ndarray = None
        self._grant: np.ndarray = None

    def _buffers(self, size: int):
        if self._mask is None or len(self._mask) != size:
            self._mask = np.empty(size, dtype=bool)
            self._grant = np.empty(size, dtype=bool)
        return self._mask, self._grant

    @abc.abstractmethod
    def select(self, ctx: SelectContext) -> List[int]:
        """Return the granted IQ entries (<= width, FU-feasible)."""

    def _fill_greedy(self, ctx: SelectContext, granted: List[int],
                     candidates: Sequence[int]) -> List[int]:
        """Grant candidates in the given order subject to constraints."""
        avail = list(ctx.fu_available)
        for entry in granted:
            avail[ctx.fu_of(entry)] -= 1
        for entry in candidates:
            if len(granted) >= ctx.width:
                break
            if entry in granted:
                continue
            fu = ctx.fu_of(entry)
            if avail[fu] > 0:
                granted.append(entry)
                avail[fu] -= 1
        return granted


class RandomSelect(SelectPolicy):
    """RAND: fill issue slots in arbitrary (shuffled) order."""

    name = "rand"

    def select(self, ctx: SelectContext) -> List[int]:
        candidates = list(ctx.entries)
        ctx.rng.shuffle(candidates)
        return self._fill_greedy(ctx, [], candidates)


class AgeSelect(SelectPolicy):
    """AGE: single oldest prioritized, remainder age-blind."""

    name = "age"

    def select(self, ctx: SelectContext) -> List[int]:
        granted: List[int] = []
        mask, grant = self._buffers(ctx.age_matrix.size)
        request = ctx.request_mask(ctx.entries, out=mask)
        oldest = ctx.age_matrix.select_single_oldest(request, out=grant)
        if oldest.any():
            entry = int(oldest.argmax())     # first (only) set grant bit
            if ctx.fu_available[ctx.fu_of(entry)] > 0:
                granted.append(entry)
        rest = [e for e in ctx.entries if e not in granted]
        ctx.rng.shuffle(rest)
        return self._fill_greedy(ctx, granted, rest)


class MultSelect(SelectPolicy):
    """MULT: single oldest of each instruction type prioritized."""

    name = "mult"

    def select(self, ctx: SelectContext) -> List[int]:
        granted: List[int] = []
        avail = list(ctx.fu_available)
        by_type: Dict[FUType, List[int]] = {}
        for entry in ctx.entries:
            by_type.setdefault(ctx.fu_of(entry), []).append(entry)
        mask, grant = self._buffers(ctx.age_matrix.size)
        for fu, members in sorted(by_type.items(), key=lambda kv: kv[0].value):
            if avail[fu] <= 0 or len(granted) >= ctx.width:
                continue
            request = ctx.request_mask(members, out=mask)
            oldest = ctx.age_matrix.select_single_oldest(request, out=grant)
            if oldest.any():
                entry = int(oldest.argmax())
                granted.append(entry)
                avail[fu] -= 1
        rest = [e for e in ctx.entries if e not in granted]
        ctx.rng.shuffle(rest)
        return self._fill_greedy(ctx, granted, rest)


class OrinocoSelect(SelectPolicy):
    """Orinoco: up to IW oldest ready instructions via bit count encoding.

    Per-type arbitration under the partial ordering (Figure 13): each
    execution-unit type selects its oldest ready instructions up to its
    unit count; a final bit-count pass clips the union to the IW oldest
    overall.
    """

    name = "orinoco"

    def select(self, ctx: SelectContext) -> List[int]:
        union: List[int] = []
        by_type: Dict[FUType, List[int]] = {}
        for entry in ctx.entries:
            by_type.setdefault(ctx.fu_of(entry), []).append(entry)
        mask, grant = self._buffers(ctx.age_matrix.size)
        for fu, members in by_type.items():
            cap = min(ctx.fu_available[fu], ctx.width)
            if cap <= 0:
                continue
            request = ctx.request_mask(members, out=mask)
            grants = ctx.age_matrix.select_oldest(request, cap, out=grant)
            union.extend(int(i) for i in np.flatnonzero(grants))
        if len(union) <= ctx.width:
            return union
        request = ctx.request_mask(union, out=mask)
        grants = ctx.age_matrix.select_oldest(request, ctx.width, out=grant)
        return [int(i) for i in np.flatnonzero(grants)]


class IdealSelect(SelectPolicy):
    """Oracle: grant strictly oldest-first (what SHIFT sees positionally)."""

    name = "ideal"

    def select(self, ctx: SelectContext) -> List[int]:
        ordered = sorted(ctx.entries, key=ctx.age_of)
        return self._fill_greedy(ctx, [], ordered)


_POLICIES = {
    "rand": RandomSelect,
    "age": AgeSelect,
    "mult": MultSelect,
    "orinoco": OrinocoSelect,
    "cri": OrinocoSelect,     # criticality is encoded at dispatch
    "ideal": IdealSelect,
    "shift": IdealSelect,     # a collapsible queue selects positionally
}


def make_select_policy(name: str) -> SelectPolicy:
    try:
        return _POLICIES[name.lower()]()
    except KeyError as exc:
        raise ValueError(f"unknown select policy {name!r}") from exc
