"""Criticality detection: CCT + IST + IBDA (paper §3.1 and §6.2).

The paper identifies critical instructions with a 64-entry critical
count table (CCT) tracking the most frequent cache-missing loads and
mispredicted branches, and marks their backward dependency slices with
iterative backward dependency analysis (IBDA, Carlson et al.) through a
1024-entry instruction slice table (IST).  The marked instructions are
dispatched into the age matrix as critical, making them "older" than
every non-critical instruction.

Here the CCT is fed from a profiling simulation (per-PC L1-miss and
misprediction counts collected by the core), standing in for the
hardware performance counters the paper uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..isa import Trace


class CriticalCountTable:
    """Bounded table of event counts per PC; keeps the hottest PCs."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self.counts: Dict[int, int] = {}

    def record(self, pc: int, count: int = 1) -> None:
        if pc in self.counts:
            self.counts[pc] += count
            return
        if len(self.counts) < self.capacity:
            self.counts[pc] = count
            return
        # replace the smallest-count entry if the newcomer beats it
        victim = min(self.counts, key=self.counts.get)
        if self.counts[victim] < count:
            del self.counts[victim]
            self.counts[pc] = count

    def top(self, k: int = None) -> List[int]:
        pcs = sorted(self.counts, key=self.counts.get, reverse=True)
        return pcs if k is None else pcs[:k]


class InstructionSliceTable:
    """Bounded set of PCs belonging to critical slices."""

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._pcs: Set[int] = set()

    def add(self, pc: int) -> bool:
        if pc in self._pcs:
            return False
        if len(self._pcs) >= self.capacity:
            return False
        self._pcs.add(pc)
        return True

    def __contains__(self, pc: int) -> bool:
        return pc in self._pcs

    def __len__(self) -> int:
        return len(self._pcs)

    def pcs(self) -> Set[int]:
        return set(self._pcs)


def ibda(trace: Trace, source_pcs: Iterable[int],
         ist: InstructionSliceTable, passes: int = 2) -> InstructionSliceTable:
    """Iterative backward dependency analysis.

    Walk the trace; whenever an instruction whose PC is in the IST (or
    is a critical source) appears, insert the PCs of the producers of
    its source operands.  Loops make a small number of passes converge.
    """
    for pc in source_pcs:
        ist.add(pc)
    for _ in range(passes):
        last_writer_pc: Dict[int, int] = {}
        grew = False
        for instr in trace:
            if instr.pc in ist:
                for src in instr.srcs:
                    producer = last_writer_pc.get(src)
                    if producer is not None:
                        grew |= ist.add(producer)
            if instr.dst is not None:
                last_writer_pc[instr.dst] = instr.pc
        if not grew:
            break
    return ist


class CriticalityTagger:
    """End-to-end: profile counts → CCT → IBDA slice → tagged trace."""

    def __init__(self, cct_capacity: int = 64, ist_capacity: int = 1024,
                 sources: int = 16, passes: int = 2):
        self.cct = CriticalCountTable(cct_capacity)
        self.ist_capacity = ist_capacity
        self.sources = sources
        self.passes = passes

    def feed_profile(self, pc_l1_misses: Dict[int, int],
                     pc_mispredicts: Dict[int, int]) -> None:
        for pc, count in pc_l1_misses.items():
            self.cct.record(pc, count)
        for pc, count in pc_mispredicts.items():
            self.cct.record(pc, count)

    def critical_pcs(self, trace: Trace) -> Set[int]:
        ist = InstructionSliceTable(self.ist_capacity)
        return ibda(trace, self.cct.top(self.sources), ist,
                    self.passes).pcs()

    def tag(self, trace: Trace) -> int:
        """Mark critical instructions in-place; returns how many."""
        pcs = self.critical_pcs(trace)
        tagged = 0
        for instr in trace:
            instr.critical = instr.pc in pcs
            tagged += instr.critical
        return tagged


def clear_tags(trace: Trace) -> None:
    """Remove criticality tags (traces are shared between runs)."""
    for instr in trace:
        instr.critical = False
