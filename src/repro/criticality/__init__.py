"""Criticality detection: critical count table, IST, IBDA, tagging."""

from .criticality import (CriticalCountTable, CriticalityTagger,
                          InstructionSliceTable, clear_tags, ibda)

__all__ = ["CriticalCountTable", "CriticalityTagger",
           "InstructionSliceTable", "clear_tags", "ibda"]
