"""Cycle-level out-of-order core.

The timing model replays a dynamic trace through a superscalar OoO
pipeline (fetch → rename → dispatch → issue → execute → writeback →
commit) built around Orinoco's matrix schedulers:

* the IQ is a free-list (non-collapsible) structure with an
  :class:`~repro.core.AgeMatrix`; the configured
  :class:`~repro.scheduler.SelectPolicy` arbitrates issue;
* the ROB is non-collapsible with the merged age/SPEC matrix
  (:class:`~repro.core.MergedCommitMatrix`); the configured
  :class:`~repro.commit.CommitPolicy` retires instructions;
* the LQ/SQ use the memory disambiguation matrix for speculative load
  issue and early (pre-performed-older-stores) load commit.

See DESIGN.md for the substitutions relative to gem5's O3CPU.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..commit import make_commit_policy
from ..core import AgeMatrix, MergedCommitMatrix, WakeupMatrix
from ..frontend import FetchUnit, make_predictor
from ..isa import DynInstr, OpClass, Opcode, Trace
from ..lsq import LSQUnit
from ..memory import MemoryHierarchy, TLB
from ..queues import CircularQueue, RandomQueue
from ..rename import RenameUnit
from ..scheduler import SelectContext, make_select_policy
from .config import CoreConfig
from .resources import FUPool, FUType, fu_type_for
from .stats import SimStats


class InflightOp:
    """Pipeline state of one in-flight dynamic instruction."""

    __slots__ = (
        "dyn", "mispredicted", "rename_rec", "rob_entry", "iq_entry",
        "fu", "producers_remaining", "data_remaining", "dependents",
        "in_iq", "issued_at", "complete_at", "completed", "performed",
        "translated", "addr_resolved", "fault_pending", "mem_nonspec",
        "spec_resolved", "committed", "zombie", "resources_released",
        "prev_writer", "exec_token", "wrong_path", "dispatch_stamp",
        "dispatched_at", "completed_at", "committed_at")

    def __init__(self, dyn: DynInstr, mispredicted: bool):
        self.dyn = dyn
        self.mispredicted = mispredicted
        self.rename_rec = None
        self.rob_entry: Optional[int] = None
        self.iq_entry: Optional[int] = None
        self.fu = fu_type_for(dyn.op_class)
        self.producers_remaining = 0
        self.data_remaining = 0           # stores: value operand
        self.dependents: List[Tuple[int, str]] = []
        self.in_iq = False
        self.issued_at: Optional[int] = None
        self.complete_at: Optional[int] = None
        self.completed = False
        self.performed = False            # loads: data obtained
        self.translated = False           # memory ops: address translated
        self.addr_resolved = False        # stores: address known to LSQ
        self.fault_pending = False
        self.mem_nonspec = False          # loads: disambiguated
        self.spec_resolved = False        # SPEC bit cleared in the ROB
        self.committed = False
        self.zombie = False
        self.resources_released = False
        self.prev_writer: Optional[Tuple[int, Optional[int]]] = None
        self.exec_token = 0               # invalidates stale completions
        self.wrong_path = False
        self.dispatch_stamp = 0           # true dispatch (age) order
        self.dispatched_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.committed_at: Optional[int] = None

    @property
    def seq(self) -> int:
        return self.dyn.seq

    def __repr__(self) -> str:
        return (f"<Op #{self.seq} {self.dyn.opcode.mnemonic} "
                f"{'C' if self.completed else ''}"
                f"{'c' if self.committed else ''}>")


class DeadlockError(RuntimeError):
    """The pipeline made no forward progress for many cycles."""


class O3Core:
    """The simulated core: construct with a trace and a configuration,
    then :meth:`run`."""

    def __init__(self, trace: Trace, config: CoreConfig):
        self.trace = trace
        self.config = config
        self.stats = SimStats(name=f"{trace.name}/{config.name}/"
                                   f"{config.scheduler}+{config.commit}")
        self.rng = random.Random(config.seed)

        self.predictor = make_predictor(config.predictor)
        self.fetch = FetchUnit(trace, self.predictor, config.fetch_width,
                               config.redirect_penalty,
                               model_wrong_path=config.model_wrong_path)
        self.rename = RenameUnit(config.rf_size, config.rename_scheme)
        self.commit_policy = make_commit_policy(config.commit)
        self.select_policy = make_select_policy(config.scheduler)

        # IQ: non-collapsible free list + age matrix + wakeup matrix
        if config.iq_org == "circ":
            self.iq_queue = CircularQueue(config.iq_size)
        else:
            self.iq_queue = RandomQueue(config.iq_size)
        self.iq_age = AgeMatrix(config.iq_size)
        self.wakeup = WakeupMatrix(config.iq_size)
        self.iq_ops: Dict[int, InflightOp] = {}

        # ROB: merged age/SPEC matrix over a non-collapsible (or, for
        # in-order reclamation, circular) entry pool
        if config.ooo_rob_release:
            self.rob_queue = RandomQueue(config.rob_size)
        else:
            self.rob_queue = CircularQueue(config.rob_size)
        self.merged = MergedCommitMatrix(config.rob_size)

        self.lsq = LSQUnit(config.lq_size, config.sq_size,
                           config.store_buffer_size, tso=config.tso,
                           ldt_size=config.ldt_size)
        self.hierarchy = MemoryHierarchy(config.memory)
        self.tlb = TLB()
        self.fupool = FUPool({
            FUType.ALU: config.fu_alu,
            FUType.MULDIV: config.fu_muldiv,
            FUType.FPU: config.fu_fpu,
            FUType.LOAD: config.fu_load,
            FUType.STORE: config.fu_store,
        })

        # program-order window of uncommitted ops (seq -> op)
        self.window: Dict[int, InflightOp] = {}
        # all live ops, including committed-but-incomplete zombies
        self.ops: Dict[int, InflightOp] = {}
        self.zombies: Dict[int, InflightOp] = {}
        self.pending_release: Dict[int, InflightOp] = {}
        # completed, uncommitted ops — the commit stage's working set
        self.commit_candidates: set = set()

        self.frontend_pipe: Deque[Tuple[int, object]] = deque()
        self.dispatch_buffer: Deque[object] = deque()
        self.ready_set: set = set()
        self.completion_heap: List[Tuple[int, int, int]] = []
        self.mem_retry: List[InflightOp] = []
        # loads parked on a forwarding store whose data is not ready yet
        self.load_waiters: Dict[int, List[InflightOp]] = {}
        # loads parked until some older store resolves its address
        self.mem_wait: List[InflightOp] = []
        # simple memory dependence predictor: load PCs that violated
        # before stop speculating past unresolved stores (store sets)
        self.violated_load_pcs: set = set()
        # wrong-path instructions awaiting their synthetic operands
        self.wp_ready: List[Tuple[int, int]] = []

        self.last_writer: Dict[int, int] = {}
        self.active_fence: Optional[int] = None
        self.sb_busy_until = 0

        self.cycle = 0
        self.dispatch_counter = 0
        self.retired_total = 0
        self.skipped_faults = 0
        self._progress_cycle = 0
        # per-PC profile for the criticality tagger
        self.pc_l1_misses: Dict[int, int] = {}
        self.pc_mispredicts: Dict[int, int] = {}
        #: optional per-instruction timeline recorder (see pipeview)
        self.timeline = None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def done(self) -> bool:
        return (self.fetch.exhausted() and not self.frontend_pipe
                and not self.dispatch_buffer and not self.window
                and not self.zombies and not self.pending_release)

    def run(self, max_cycles: int = 5_000_000) -> SimStats:
        while not self.done():
            if self.cycle >= max_cycles:
                raise DeadlockError(
                    f"cycle budget exhausted at {self.cycle}")
            self.step()
        self._finalize_stats()
        return self.stats

    def step(self) -> None:
        cycle = self.cycle
        self.fupool.begin_cycle(cycle)
        self._commit(cycle)
        self._release_inorder()
        self._writeback(cycle)
        self._drain_store_buffer(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._frontend(cycle)
        self._tick_stats()
        self.cycle += 1
        if self.cycle - self._progress_cycle > 50_000:
            raise DeadlockError(
                f"no progress since cycle {self._progress_cycle}: "
                f"window={list(self.window.values())[:8]}")

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        committed = self.commit_policy.commit(self, cycle)
        if committed:
            self._progress_cycle = cycle
            return
        if not self.window:
            return
        self.stats.commit_stall_cycles += 1
        # sample the §2.2 statistic to keep the simulator fast
        if self.stats.commit_stall_cycles % 8 == 0:
            self._account_commit_ready(weight=8)
        head = next(iter(self.window.values()))
        if head.fault_pending:
            self._exception_flush(head, cycle)

    def _account_commit_ready(self, weight: int = 1) -> None:
        """§2.2 statistic: completed+safe instructions stuck behind the
        head during commit-stall cycles (sampled, hence ``weight``)."""
        if not self.commit_candidates:
            return
        completed = np.zeros(self.config.rob_size, dtype=bool)
        head_seq = next(iter(self.window))
        head_entry = self.window[head_seq].rob_entry
        for seq in self.commit_candidates:
            op = self.window.get(seq)
            if op is not None:
                completed[op.rob_entry] = True
        grants = self.merged.can_commit(completed)
        grants[head_entry] = False
        rob_full = self.rob_queue.is_full()
        if rob_full:
            self.stats.rob_full_commit_stall_cycles += weight
        if grants.any():
            self.stats.stalled_commit_ready_cycles += weight
            if rob_full:
                self.stats.full_window_commit_ready_cycles += weight

    def locally_committable(self, op: InflightOp, ecl: bool,
                            ignore_global: bool = False) -> bool:
        """Local commit conditions (completion, replay, store order)."""
        if op.wrong_path:
            return False
        if op.fault_pending and not ignore_global:
            return False
        dyn = op.dyn
        if dyn.is_load:
            if not (op.translated and op.mem_nonspec):
                return False
            return op.completed or ecl
        if dyn.is_store:
            if not op.completed:
                return False
            if self.lsq.oldest_store_seq() != op.seq:
                return False
            return self.lsq.can_commit_store()
        return op.completed

    def vb_committable(self, op: InflightOp, ecl: bool) -> bool:
        """Validation-Buffer retirement: non-speculative, possibly
        incomplete (post-commit execution)."""
        if op.wrong_path or op.fault_pending:
            return False
        dyn = op.dyn
        if dyn.is_branch:
            return op.completed
        if dyn.is_load or dyn.is_store:
            return self.locally_committable(op, ecl)
        return True

    def retire(self, op: InflightOp, cycle: int, zombie: bool = False) -> None:
        """Remove ``op`` from the ROB and release resources per policy."""
        op.committed = True
        op.committed_at = cycle
        if self.timeline is not None:
            self.timeline.record(op)
        del self.window[op.seq]
        self.commit_candidates.discard(op.seq)
        self.rob_queue.free(op.rob_entry)
        self.merged.remove(op.rob_entry)
        self.retired_total += 1
        self.stats.committed += 1
        self._progress_cycle = cycle
        if op.dyn.is_load and not op.performed:
            self.stats.early_committed_loads += 1
        if zombie:
            op.zombie = True
            self.zombies[op.seq] = op
            self.stats.zombie_commits += 1
            return
        if self.commit_policy.defer_release_inorder:
            self.pending_release[op.seq] = op
        elif self.commit_policy.release_at_completion:
            # registers / LQ were released at completion; stores still
            # need their in-order drain into the store buffer
            self._release_resources(op)
        else:
            self._release_resources(op)

    def _release_resources(self, op: InflightOp) -> None:
        if not op.resources_released:
            op.resources_released = True
            self.rename.writer_committed(op.rename_rec)
            if op.dyn.is_load:
                self.lsq.commit_load(op.seq)
            elif op.dyn.is_store:
                self.lsq.commit_store(op.seq)
        self._forget(op)

    def _forget(self, op: InflightOp) -> None:
        if op.completed:
            self.ops.pop(op.seq, None)

    def _release_inorder(self) -> None:
        """Deferred releases for the ROB-entries-only-OoO policy."""
        if not self.pending_release:
            return
        oldest_uncommitted = next(iter(self.window), None)
        for seq in sorted(self.pending_release):
            if oldest_uncommitted is not None and seq > oldest_uncommitted:
                break
            self._release_resources(self.pending_release.pop(seq))

    def _exception_flush(self, op: InflightOp, cycle: int) -> None:
        """Precise exception: every older instruction has committed;
        squash the faulting instruction and everything younger, then
        resume fetch past it (the handler itself is not simulated)."""
        self.stats.exceptions += 1
        self.skipped_faults += 1
        self._squash_from(op.seq, cycle, resume_after=True)
        self._progress_cycle = cycle

    # ------------------------------------------------------------------
    # writeback
    # ------------------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        while self.completion_heap and self.completion_heap[0][0] <= cycle:
            _, seq, token = heapq.heappop(self.completion_heap)
            op = self.ops.get(seq)
            if op is None or op.exec_token != token or op.completed:
                continue
            if op.dyn.is_store and not op.addr_resolved:
                # two-phase store: this event is address generation
                self._finish_store_addr(op, cycle)
                if not op.fault_pending and op.data_remaining == 0:
                    self._complete(op, cycle)
                continue
            self._complete(op, cycle)

    def _complete(self, op: InflightOp, cycle: int) -> None:
        op.completed = True
        op.completed_at = cycle
        self._progress_cycle = cycle
        if op.wrong_path:
            return
        self.rename.producer_completed(op.rename_rec)
        dyn = op.dyn
        if dyn.is_branch:
            self._resolve_spec(op)
            self.fetch.branch_resolved(op.seq, cycle)
            if op.mispredicted:
                self._squash_wrong_path()
        elif dyn.is_load:
            op.performed = True
            self.lsq.load_performed(op.seq)
            self._try_disambiguate(op)
        # wake dependents
        for dep_seq, kind in op.dependents:
            dep = self.ops.get(dep_seq)
            if dep is None:
                continue
            if kind == "data":
                dep.data_remaining -= 1
                if (dep.data_remaining == 0 and dep.addr_resolved
                        and not dep.completed and not dep.fault_pending):
                    self._schedule_completion(dep, cycle + 1)
            else:
                dep.producers_remaining -= 1
                if (dep.producers_remaining == 0 and dep.in_iq
                        and self.wakeup.is_ready(dep.iq_entry)):
                    self.ready_set.add(dep.iq_entry)
        if self.active_fence == op.seq:
            self.active_fence = None
        if dyn.is_store:
            for waiter in self.load_waiters.pop(op.seq, ()):
                if waiter.seq in self.ops:
                    self.mem_retry.append(waiter)
        if not op.committed:
            self.commit_candidates.add(op.seq)
        if self.commit_policy.release_at_completion and not op.committed:
            self._early_release(op)
        if op.zombie:
            self._finish_zombie(op)

    def _early_release(self, op: InflightOp) -> None:
        """Cherry-style recycling of registers and LQ entries at
        completion time, ahead of commit.  Stores are excluded — they
        must drain into the store buffer in order, at commit."""
        if op.resources_released or op.dyn.is_store:
            return
        op.resources_released = True
        self.rename.writer_committed(op.rename_rec)
        if op.dyn.is_load:
            # the checkpoint oracle absorbs any replay risk left
            if not op.mem_nonspec:
                op.mem_nonspec = True
                self._resolve_spec(op)
            self.lsq.commit_load(op.seq)

    def _finish_zombie(self, op: InflightOp) -> None:
        """A committed-incomplete (VB/ECL) instruction finished its
        post-commit execution: release what was withheld."""
        self.zombies.pop(op.seq, None)
        if not op.resources_released:
            op.resources_released = True
            self.rename.writer_committed(op.rename_rec)
            if op.dyn.is_load:
                self.lsq.commit_load(op.seq)
        self.ops.pop(op.seq, None)

    def _resolve_spec(self, op: InflightOp) -> None:
        if not op.spec_resolved:
            op.spec_resolved = True
            if not op.committed and op.rob_entry is not None:
                self.merged.resolve(op.rob_entry)

    def _finish_store_addr(self, op: InflightOp, cycle: int) -> None:
        """Store address generation finished: translate and resolve."""
        dyn = op.dyn
        op.translated = True
        if dyn.fault:
            op.fault_pending = True
            return
        op.addr_resolved = True
        self.stats.mdm_ops += 1
        violated = self.lsq.store_resolve(op.seq, dyn.addr)
        self._resolve_spec(op)
        if self.mem_wait:
            self.mem_retry.extend(w for w in self.mem_wait
                                  if w.seq in self.ops)
            self.mem_wait = []
        if violated:
            self.stats.mem_order_violations += 1
            if self.commit_policy.oracle_branches and \
                    self.commit_policy.name.startswith("spec"):
                # Cherry oracle: no rollback cost; replay only the loads
                for seq in violated:
                    self._replay_load(self.ops[seq], cycle)
                self.stats.load_replays += len(violated)
            else:
                for seq in violated:
                    victim = self.ops.get(seq)
                    if victim is not None:
                        self.violated_load_pcs.add(victim.dyn.pc)
                self._squash_from(min(violated), cycle)
        else:
            self._recheck_loads()

    def _recheck_loads(self) -> None:
        """A store resolved: loads whose MDM row drained become
        non-speculative."""
        for entry in list(self.lsq.lq):
            load = self.lsq.lq.get(entry)
            if load is None:
                continue
            op = self.ops.get(load.seq)
            if op is not None and not op.mem_nonspec:
                self._try_disambiguate(op)

    def _try_disambiguate(self, op: InflightOp) -> None:
        if op.mem_nonspec or op.fault_pending or not op.translated:
            return
        if op.seq not in self.lsq._seq_to_lq:
            return
        if self.lsq.load_is_nonspeculative(op.seq):
            op.mem_nonspec = True
            self._resolve_spec(op)

    def _replay_load(self, op: InflightOp, cycle: int) -> None:
        """Re-execute a violated load in place (oracle policies only)."""
        op.exec_token += 1
        op.completed = False
        op.performed = False
        latency = self.hierarchy.load(op.dyn.addr, cycle)
        if latency is None:
            latency = self.config.memory.l1_latency + 2
        heapq.heappush(self.completion_heap,
                       (cycle + latency, op.seq, op.exec_token))

    # ------------------------------------------------------------------
    # store buffer
    # ------------------------------------------------------------------

    def _drain_store_buffer(self, cycle: int) -> None:
        """One store per cycle leaves the SB through the L1 write port;
        misses ride the MSHRs (write-allocate) instead of serializing."""
        if cycle < self.sb_busy_until or not self.lsq.store_buffer:
            return
        head = self.lsq.store_buffer[0]
        latency = self.hierarchy.store(head.addr, cycle)
        if latency is None:
            return                          # MSHRs full; retry next cycle
        self.lsq.drain_store()
        self.sb_busy_until = cycle + 1

    # ------------------------------------------------------------------
    # issue / execute
    # ------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        self._retry_memory(cycle)
        while self.wp_ready and self.wp_ready[0][0] <= cycle:
            _, seq = heapq.heappop(self.wp_ready)
            op = self.ops.get(seq)
            if op is not None and op.in_iq:
                self.ready_set.add(op.iq_entry)
        if not self.ready_set:
            return
        if len(self.ready_set) > self.config.issue_width:
            self.stats.ready_excess_cycles += 1
        ctx = SelectContext(
            entries=sorted(self.ready_set),
            fu_of=lambda e: self.iq_ops[e].fu,
            age_of=lambda e: self.iq_ops[e].dispatch_stamp,
            age_matrix=self.iq_age,
            fu_available=self.fupool.availability_vector(),
            width=self.config.issue_width,
            rng=self.rng)
        self.stats.iq_select_ops += 1
        granted = self.select_policy.select(ctx)
        for entry in granted:
            op = self.iq_ops[entry]
            latency = self.config.latencies.get(op.dyn.op_class, 1)
            if not self.fupool.acquire(op.dyn.op_class, latency):
                continue        # should not happen; be safe
            self._leave_iq(op)
            if not op.wrong_path:
                self.rename.operands_read(op.rename_rec)
            op.issued_at = cycle
            self.stats.issued += 1
            self._begin_execution(op, cycle)

    def _leave_iq(self, op: InflightOp) -> None:
        entry = op.iq_entry
        # wakeup broadcast: clear this producer's column.  Dependents
        # whose rows drain switch to waiting on the value itself (the
        # completion counter models the latency-delayed broadcast).
        for dep_entry in np.flatnonzero(self.wakeup.matrix.column(entry)):
            dep = self.iq_ops.get(int(dep_entry))
            if dep is None:
                continue
            dep.producers_remaining += 1
            op.dependents.append((dep.seq, "op"))
        self.wakeup.issue([entry])
        self.stats.wakeup_ops += 1
        self.iq_queue.free(entry)
        self.iq_age.remove(entry)
        self.ready_set.discard(entry)
        del self.iq_ops[entry]
        op.in_iq = False
        op.iq_entry = None

    def _begin_execution(self, op: InflightOp, cycle: int) -> None:
        dyn = op.dyn
        cls = dyn.op_class
        if cls is OpClass.LOAD:
            self._execute_load(op, cycle)
            return
        if cls is OpClass.STORE:
            # address generation + translation; resolution effects land
            # at completion in _finish_store
            latency = 1 + self.tlb.translate(dyn.addr, dyn.fault).latency
            self._schedule_completion(op, cycle + latency)
            return
        latency = self.config.latencies.get(cls, 1)
        self._schedule_completion(op, cycle + latency)

    def _execute_load(self, op: InflightOp, cycle: int) -> None:
        dyn = op.dyn
        translation = self.tlb.translate(dyn.addr, dyn.fault)
        base_latency = 1 + translation.latency
        op.translated = True
        if translation.fault:
            op.fault_pending = True
            return                      # never completes; blocks at commit
        outcome, unresolved, match_seq = self.lsq.load_lookup(dyn.seq,
                                                              dyn.addr)
        if unresolved.any() and (
                self.config.mem_dep_policy == "conservative"
                or dyn.pc in self.violated_load_pcs):
            op.translated = False       # wait for older stores to resolve
            self.mem_wait.append(op)
            return
        if outcome == "forward":
            producer = self.ops.get(match_seq)
            if producer is not None and not producer.completed:
                # matching store's data is not ready: park until it is
                # (no port is wasted on doomed retries)
                op.translated = False
                self.load_waiters.setdefault(match_seq, []).append(op)
                return
            self.lsq.load_issue(dyn.seq, dyn.addr, unresolved)
            self.stats.mdm_writes += 1
            self.stats.forwarded_loads += 1
            self._schedule_completion(
                op, cycle + base_latency + self.config.forward_latency)
        else:
            mem_latency = self.hierarchy.load(dyn.addr, cycle + base_latency)
            if mem_latency is None:     # MSHRs full: retry
                op.translated = False
                self.mem_retry.append(op)
                return
            if mem_latency > self.config.memory.l1_latency:
                self.pc_l1_misses[dyn.pc] = \
                    self.pc_l1_misses.get(dyn.pc, 0) + 1
            self.lsq.load_issue(dyn.seq, dyn.addr, unresolved)
            self.stats.mdm_writes += 1
            self._schedule_completion(op, cycle + base_latency + mem_latency)
        self._try_disambiguate(op)

    def _retry_memory(self, cycle: int) -> None:
        if not self.mem_retry:
            return
        retries, self.mem_retry = self.mem_retry, []
        for op in retries:
            if op.seq not in self.ops:
                continue                # squashed meanwhile
            # peek before burning a load port on a doomed attempt
            outcome, unresolved, match = self.lsq.load_lookup(op.seq,
                                                              op.dyn.addr)
            if unresolved.any() and (
                    self.config.mem_dep_policy == "conservative"
                    or op.dyn.pc in self.violated_load_pcs):
                self.mem_wait.append(op)
                continue
            if outcome == "forward":
                producer = self.ops.get(match)
                if producer is not None and not producer.completed:
                    self.load_waiters.setdefault(match, []).append(op)
                    continue
            latency = self.config.latencies.get(op.dyn.op_class, 1)
            if self.fupool.acquire(op.dyn.op_class, latency):
                self._execute_load(op, cycle)
            else:
                self.mem_retry.append(op)

    def _schedule_completion(self, op: InflightOp, when: int) -> None:
        op.exec_token += 1
        op.complete_at = when
        heapq.heappush(self.completion_heap, (when, op.seq, op.exec_token))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        while self.frontend_pipe and self.frontend_pipe[0][0] <= cycle:
            self.dispatch_buffer.append(self.frontend_pipe.popleft()[1])
        dispatched = 0
        while self.dispatch_buffer and dispatched < self.config.dispatch_width:
            fetched = self.dispatch_buffer[0]
            blocker = self._dispatch_blocker(fetched.instr)
            if blocker is not None:
                self._account_dispatch_stall(blocker, dispatched)
                return
            self.dispatch_buffer.popleft()
            if fetched.wrong_path:
                self._dispatch_wrong_path(fetched, cycle)
            else:
                self._do_dispatch(fetched, cycle)
                self.ops[fetched.instr.seq].dispatched_at = cycle
            dispatched += 1
        if dispatched:
            self._progress_cycle = cycle

    def _dispatch_blocker(self, dyn: DynInstr) -> Optional[str]:
        if self.rob_queue.is_full():
            return "rob"
        if self.iq_queue.is_full():
            return "iq"
        if dyn.seq < 0:
            return None                  # wrong path: IQ/ROB only
        if dyn.is_load and not self.lsq.can_allocate_load():
            return "lq"
        if dyn.is_store and not self.lsq.can_allocate_store():
            return "sq"
        if not self.rename.can_rename(dyn.dst):
            return "reg"
        return None

    def _account_dispatch_stall(self, blocker: str, dispatched: int) -> None:
        setattr(self.stats, f"stall_{blocker}",
                getattr(self.stats, f"stall_{blocker}") + 1)
        if dispatched == 0:
            self.stats.full_window_stall_cycles += 1

    def _do_dispatch(self, fetched, cycle: int) -> None:
        dyn = fetched.instr
        op = InflightOp(dyn, fetched.mispredicted)
        self.dispatch_counter += 1
        op.dispatch_stamp = self.dispatch_counter
        op.rob_entry = self.rob_queue.allocate()
        op.iq_entry = self.iq_queue.allocate()
        op.in_iq = True
        if dyn.is_load:
            self.lsq.allocate_load(dyn.seq)
        elif dyn.is_store:
            self.lsq.allocate_store(dyn.seq)
        op.rename_rec = self.rename.rename(dyn)

        # dataflow: wait on in-flight producers of the source registers.
        # Stores split their operands: address (rs1) gates issue/agen,
        # data (rs2) only gates completion — so a store can resolve its
        # address early, the key to precise disambiguation.
        if dyn.is_store:
            addr_srcs = dyn.srcs[:1]
            data_srcs = dyn.srcs[1:]
        else:
            addr_srcs = dyn.srcs
            data_srcs = ()
        producer_entries = []
        for src in set(addr_srcs):
            writer = self._live_writer(src)
            if writer is None:
                continue
            if writer.in_iq:
                # positional dependence: tracked in the wakeup matrix
                # until the producer issues (§3.4)
                producer_entries.append(writer.iq_entry)
            else:
                op.producers_remaining += 1
                writer.dependents.append((dyn.seq, "op"))
        for src in set(data_srcs):
            writer = self._live_writer(src)
            if writer is not None:
                op.data_remaining += 1
                writer.dependents.append((dyn.seq, "data"))
        # fences order memory operations
        if dyn.opcode is Opcode.FENCE:
            for other in self.window.values():
                if other.dyn.is_mem and not other.completed:
                    op.producers_remaining += 1
                    other.dependents.append((dyn.seq, "op"))
            self.active_fence = dyn.seq
        elif dyn.is_mem and self.active_fence is not None:
            fence = self.ops.get(self.active_fence)
            if fence is not None and not fence.completed:
                op.producers_remaining += 1
                fence.dependents.append((dyn.seq, "op"))

        if dyn.dst is not None:
            op.prev_writer = (dyn.dst, self.last_writer.get(dyn.dst))
            self.last_writer[dyn.dst] = dyn.seq

        speculative = self._is_speculative_at_dispatch(dyn)
        self.merged.dispatch(op.rob_entry, speculative)
        op.spec_resolved = not speculative
        critical = self.config.criticality and dyn.critical
        self.iq_age.dispatch(op.iq_entry, critical=critical)
        self.wakeup.dispatch(op.iq_entry, producer_entries)
        self.stats.iq_writes += 1
        self.stats.rob_writes += 1
        self.stats.wakeup_writes += 1

        self.window[dyn.seq] = op
        self.ops[dyn.seq] = op
        self.iq_ops[op.iq_entry] = op
        if op.producers_remaining == 0 and not producer_entries:
            self.ready_set.add(op.iq_entry)
        self.stats.dispatched += 1

    def _dispatch_wrong_path(self, fetched, cycle: int) -> None:
        """Install a synthetic wrong-path instruction: it occupies an
        IQ and a ROB entry and competes for issue, but never renames,
        touches memory, or commits."""
        op = InflightOp(fetched.instr, False)
        op.wrong_path = True
        self.dispatch_counter += 1
        op.dispatch_stamp = self.dispatch_counter
        op.rob_entry = self.rob_queue.allocate()
        op.iq_entry = self.iq_queue.allocate()
        op.in_iq = True
        self.merged.dispatch(op.rob_entry, False)
        self.iq_age.dispatch(op.iq_entry)
        self.wakeup.dispatch(op.iq_entry, [])
        self.window[op.seq] = op
        self.ops[op.seq] = op
        self.iq_ops[op.iq_entry] = op
        # synthetic operand wait: ready 1-3 cycles after dispatch
        heapq.heappush(self.wp_ready,
                       (cycle + 1 + (-op.seq) % 3, op.seq))
        self.stats.wrong_path_dispatched += 1

    def _squash_wrong_path(self) -> None:
        """The stalled branch resolved: every wrong-path instruction in
        the machine is squashed."""
        victims = [op for op in self.ops.values() if op.wrong_path]
        for op in victims:
            op.exec_token += 1
            if op.in_iq:
                self._leave_iq_squash(op)
            self.rob_queue.free(op.rob_entry)
            self.merged.remove(op.rob_entry)
            self.window.pop(op.seq, None)
            self.ops.pop(op.seq, None)
        self.wp_ready = []
        self.dispatch_buffer = deque(
            f for f in self.dispatch_buffer if not f.wrong_path)
        self.frontend_pipe = deque(
            (ready, f) for ready, f in self.frontend_pipe
            if not f.wrong_path)

    def _live_writer(self, src: int) -> Optional[InflightOp]:
        writer_seq = self.last_writer.get(src)
        if writer_seq is None:
            return None
        writer = self.ops.get(writer_seq)
        if writer is None or writer.completed:
            return None
        return writer

    def _is_speculative_at_dispatch(self, dyn: DynInstr) -> bool:
        if dyn.is_mem:
            return True                       # page fault / replay traps
        if dyn.op_class is OpClass.BRANCH:
            return not self.commit_policy.oracle_branches
        if dyn.opcode is Opcode.JALR:
            return not self.commit_policy.oracle_branches
        return False

    # ------------------------------------------------------------------
    # front end
    # ------------------------------------------------------------------

    def _frontend(self, cycle: int) -> None:
        if len(self.dispatch_buffer) >= 2 * self.config.dispatch_width:
            return                       # fetch-queue backpressure
        for fetched in self.fetch.fetch(cycle):
            if fetched.mispredicted:
                self.stats.branch_mispredicts += 1
                self.pc_mispredicts[fetched.instr.pc] = \
                    self.pc_mispredicts.get(fetched.instr.pc, 0) + 1
            self.frontend_pipe.append(
                (cycle + self.config.frontend_depth, fetched))
            self._progress_cycle = cycle

    # ------------------------------------------------------------------
    # squash
    # ------------------------------------------------------------------

    def _squash_from(self, seq: int, cycle: int,
                     resume_after: bool = False) -> None:
        """Squash ``seq`` and everything younger; refetch from ``seq``
        (or from ``seq + 1`` when ``resume_after`` — exception skip)."""
        self._squash_wrong_path()
        victims = [op for op in self.ops.values()
                   if op.seq >= seq and not op.committed]
        victims.sort(key=lambda op: op.seq, reverse=True)
        for op in victims:
            op.exec_token += 1          # cancel in-flight completions
            if op.in_iq:
                self._leave_iq_squash(op)
            if op.rob_entry is not None:
                self.rob_queue.free(op.rob_entry)
                self.merged.remove(op.rob_entry)
            self.window.pop(op.seq, None)
            self.ops.pop(op.seq, None)
            self.commit_candidates.discard(op.seq)
            self.mem_retry = [r for r in self.mem_retry
                              if r.seq != op.seq]
            self.mem_wait = [r for r in self.mem_wait if r.seq != op.seq]
            self.load_waiters.pop(op.seq, None)
            for waiters in self.load_waiters.values():
                waiters[:] = [w for w in waiters if w.seq != op.seq]
            if op.prev_writer is not None:
                arch, prev = op.prev_writer
                if self.last_writer.get(arch) == op.seq:
                    if prev is None:
                        del self.last_writer[arch]
                    else:
                        self.last_writer[arch] = prev
            if self.active_fence == op.seq:
                self.active_fence = None
        self.lsq.squash(seq)
        self.rename.squash([op.rename_rec for op in victims])
        # drop younger not-yet-dispatched instructions
        self.dispatch_buffer = deque(
            f for f in self.dispatch_buffer if f.instr.seq < seq)
        self.frontend_pipe = deque(
            (ready, f) for ready, f in self.frontend_pipe
            if f.instr.seq < seq)
        resume_seq = seq if resume_after else seq - 1
        self.fetch.squash_to(resume_seq, cycle)

    def _leave_iq_squash(self, op: InflightOp) -> None:
        entry = op.iq_entry
        self.wakeup.squash([entry])
        self.iq_queue.free(entry)
        self.iq_age.remove(entry)
        self.ready_set.discard(entry)
        self.iq_ops.pop(entry, None)
        op.in_iq = False
        op.iq_entry = None

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _tick_stats(self) -> None:
        stats = self.stats
        stats.cycles += 1
        stats.rob_occupancy_sum += len(self.window)
        stats.iq_occupancy_sum += self.iq_queue.occupancy()
        stats.lq_occupancy_sum += self.lsq.lq_occupancy()
        stats.rf_occupancy_sum += self.rename.occupancy()

    def _finalize_stats(self) -> None:
        self.stats.memory = self.hierarchy.stats()
        self.stats.predictor_accuracy = self.predictor.accuracy()


def simulate(trace: Trace, config: CoreConfig,
             max_cycles: int = 5_000_000) -> SimStats:
    """Run ``trace`` through a core built from ``config``."""
    return O3Core(trace, config).run(max_cycles)
