"""Cycle-level out-of-order core: the stage driver and its facade.

The timing model replays a dynamic trace through a superscalar OoO
pipeline (fetch → rename → dispatch → issue → execute → writeback →
commit) built around Orinoco's matrix schedulers:

* the IQ is a free-list (non-collapsible) structure with an
  :class:`~repro.core.AgeMatrix`; the configured
  :class:`~repro.scheduler.SelectPolicy` arbitrates issue;
* the ROB is non-collapsible with the merged age/SPEC matrix
  (:class:`~repro.core.MergedCommitMatrix`); the configured
  :class:`~repro.commit.CommitPolicy` retires instructions;
* the LQ/SQ use the memory disambiguation matrix for speculative load
  issue and early (pre-performed-older-stores) load commit.

The stage logic itself lives in :mod:`repro.pipeline.stages` — one
module per pipeline stage, each operating on the shared
:class:`~repro.pipeline.stages.PipelineState` and publishing
stage-boundary events on the core's
:class:`~repro.pipeline.events.EventBus`.  :class:`O3Core` owns only
construction, the per-cycle evaluation order, watchdogs, and a facade
(attribute delegation to the state) that keeps the historical
``core.window`` / ``core.retire(...)`` surface that commit policies
and tests program against.

See DESIGN.md for the substitutions relative to gem5's O3CPU.
"""

from __future__ import annotations

from typing import Optional

from ..isa import Trace
from .config import CoreConfig
from .events import CycleEvent, EventBus, EventType, RunEndEvent
from .fastforward import FastForward, enabled_by_env
from .stages import (CommitStage, DispatchStage, ExecuteStage, FetchStage,
                     InflightOp, IssueStage, MemoryStage, PipelineState,
                     SquashUnit, WritebackStage)
from .stats import SimStats

__all__ = ["ENGINE_VERSION", "DeadlockError", "InflightOp", "O3Core",
           "simulate"]

#: Engine revision token, part of every result-cache key.  Bump it
#: whenever the timing model's *output* could change (new counters,
#: different arbitration, changed latencies) so stale cached SimStats
#: from an older engine can never satisfy a lookup.  Pure-performance
#: work that is proven bit-exact (e.g. the quiescent-cycle
#: fast-forward, the lane-stacked matrix storage) still warrants a
#: bump out of caution.
ENGINE_VERSION = 4

_CYCLE = EventType.CYCLE
_RUN_END = EventType.RUN_END


class DeadlockError(RuntimeError):
    """The pipeline made no forward progress for many cycles."""


class O3Core:
    """The simulated core: construct with a trace and a configuration,
    then :meth:`run`.

    Attribute reads not found here fall through to the shared
    :class:`PipelineState` (``core.window``, ``core.stats``,
    ``core.lsq``, …), so external code keeps its historical view of
    the machine; commit-policy entry points (:meth:`retire`,
    :meth:`locally_committable`, :meth:`vb_committable`) forward to
    the commit stage.
    """

    def __init__(self, trace: Trace, config: CoreConfig,
                 bus: Optional[EventBus] = None, slot=None):
        # ``slot`` (repro.core.lanestack.LaneSlot) backs the matrix
        # state with views into a lane-stacked 3-D arena; semantics
        # are identical to owned storage (lane engine only)
        state = PipelineState(trace, config, bus, slot=slot)
        # bypass __setattr__-visible delegation: plain instance attrs
        self.state = state
        self.bus = state.bus

        squash = SquashUnit(state)
        memory = MemoryStage(state, squash)
        commit = CommitStage(state, squash)
        commit.core = self
        self.stages = (
            commit,
            WritebackStage(state, memory, commit, squash),
            memory,
            ExecuteStage(state, memory),
        )
        execute = self.stages[3]
        self.stages += (
            IssueStage(state, execute),
            DispatchStage(state),
            FetchStage(state),
        )
        self.squash_unit = squash
        self.commit_stage = commit
        #: quiescent-cycle fast-forward (see pipeline.fastforward);
        #: per-instance so tests can force the exact path on one core
        self.fast_forward_enabled = enabled_by_env()
        # prebound tick methods: the driver loop calls these 7 times per
        # cycle, so skip the per-call stage.tick attribute lookup
        self._ticks = tuple(stage.tick for stage in self.stages)

        # hot-path facade: commit policies read these every cycle, so
        # mirror the state's *stable* container references (mutated in
        # place, never rebound) as plain instance attributes — a direct
        # dict lookup instead of the __getattr__ fallback.  Rebound
        # fields (cycle, mem_retry, frontend_pipe, …) must NOT be
        # mirrored; they keep reading through __getattr__.
        for attr in ("trace", "config", "stats", "rng", "predictor",
                     "fetch", "rename", "commit_policy", "select_policy",
                     "iq_queue", "iq_age", "wakeup", "iq_ops",
                     "rob_queue", "merged", "rob_scratch", "lsq",
                     "hierarchy", "tlb",
                     "fupool", "window", "ops", "zombies",
                     "pending_release", "commit_candidates", "ready_set",
                     "completion_heap", "load_waiters",
                     "violated_load_pcs", "last_writer", "pc_l1_misses",
                     "pc_mispredicts"):
            setattr(self, attr, getattr(state, attr))
        # bound stage methods: skip one dispatch layer on the per-
        # candidate commit checks (the hottest calls in the model)
        self.retire = commit.retire
        self.locally_committable = commit.locally_committable
        self.vb_committable = commit.vb_committable

    def __getattr__(self, name):
        # facade: anything not defined on the driver reads through to
        # the shared pipeline state (only called on lookup misses)
        try:
            return getattr(self.__dict__["state"], name)
        except KeyError:
            raise AttributeError(name) from None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def done(self) -> bool:
        s = self.state
        return (s.fetch.exhausted() and not s.frontend_pipe
                and not s.dispatch_buffer and not s.window
                and not s.zombies and not s.pending_release)

    def run(self, max_cycles: int = 5_000_000) -> SimStats:
        ff = FastForward(self) if self.fast_forward_enabled else None
        while not self.done():
            if self.state.cycle >= max_cycles:
                raise DeadlockError(
                    f"cycle budget exhausted at {self.state.cycle}")
            if ff is not None and ff.advance(max_cycles):
                continue
            self.step()
        self._finalize_stats()
        return self.state.stats

    def step(self) -> None:
        s = self.state
        cycle = s.cycle
        s.fupool.begin_cycle(cycle)
        for tick in self._ticks:
            tick(cycle)
        self._tick_stats(cycle)
        s.cycle += 1
        if s.cycle - s.progress_cycle > 50_000:
            raise DeadlockError(
                f"no progress since cycle {s.progress_cycle}: "
                f"window={list(s.window.values())[:8]}")

    # ------------------------------------------------------------------
    # lane-engine phase entry points (repro.pipeline.vectorstages).
    # One lockstep cycle is the scalar step() re-ordered stage-major
    # across lanes; these two methods bundle the per-lane prefix and
    # suffix into single Python calls so the vector engine pays one
    # call per lane per phase instead of one per stage.
    # ------------------------------------------------------------------

    def vec_phase_a(self) -> None:
        """Cycle prefix: FU reset, the commit / writeback / memory /
        execute ticks and the wrong-path ready drain, in scalar
        :meth:`step` order."""
        s = self.state
        cycle = s.cycle
        s.fupool.begin_cycle(cycle)
        ticks = self._ticks
        ticks[0](cycle)
        ticks[1](cycle)
        ticks[2](cycle)
        ticks[3](cycle)
        if s.wp_ready:
            self.stages[4].drain_wp(cycle)

    def vec_phase_d(self) -> None:
        """Cycle suffix: fetch tick, per-cycle stats, cycle advance
        and the no-progress watchdog — the scalar :meth:`step` tail."""
        s = self.state
        cycle = s.cycle
        self._ticks[6](cycle)
        self._tick_stats(cycle)
        s.cycle = cycle + 1
        if s.cycle - s.progress_cycle > 50_000:
            raise DeadlockError(
                f"no progress since cycle {s.progress_cycle}: "
                f"window={list(s.window.values())[:8]}")

    # ------------------------------------------------------------------
    # commit-policy entry points.  retire / locally_committable /
    # vb_committable are bound in __init__ (hot path); the exception
    # flush stays a real method so tests can monkeypatch it per-core.
    # ------------------------------------------------------------------

    def _exception_flush(self, op: InflightOp, cycle: int) -> None:
        self.commit_stage.exception_flush(op, cycle)

    # ------------------------------------------------------------------
    # crash diagnostics
    # ------------------------------------------------------------------

    def snapshot(self, window_ops: int = 8) -> dict:
        """JSON-able picture of the pipeline at the current cycle.

        Captured post-mortem by the crash-diagnostic path (the core
        object survives the exception that aborted :meth:`run`), so a
        crash bundle shows *where the machine was* — window head,
        occupancies, progress watermark — without any instrumentation
        cost on healthy runs.
        """
        s = self.state
        ops = []
        for seq in sorted(s.window)[:window_ops]:
            op = s.window[seq]
            dyn = op.dyn
            ops.append({
                "seq": dyn.seq,
                "pc": dyn.pc,
                "op_class": dyn.op_class.name,
                "issued": op.issued_at is not None,
                "completed": op.completed,
                "committed": op.committed,
            })
        return {
            "cycle": s.cycle,
            "progress_cycle": s.progress_cycle,
            "fetch_exhausted": s.fetch.exhausted(),
            "committed": s.stats.committed,
            "dispatched": s.stats.dispatched,
            "rob_occupancy": len(s.window),
            "iq_occupancy": s.iq_queue.occupancy(),
            "lq_occupancy": s.lsq.lq_occupancy(),
            "zombies": len(s.zombies),
            "frontend_pipe": len(s.frontend_pipe),
            "dispatch_buffer": len(s.dispatch_buffer),
            "window_head": ops,
        }

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _tick_stats(self, cycle: int) -> None:
        s = self.state
        stats = s.stats
        stats.cycles += 1
        rob = len(s.window)
        iq = s.iq_queue.occupancy()
        lq = s.lsq.lq_occupancy()
        rf = s.rename.occupancy()
        stats.rob_occupancy_sum += rob
        stats.iq_occupancy_sum += iq
        stats.lq_occupancy_sum += lq
        stats.rf_occupancy_sum += rf
        if self.bus.live[_CYCLE]:
            self.bus.publish(CycleEvent(cycle, rob, iq, lq, rf))

    def _finalize_stats(self) -> None:
        s = self.state
        s.stats.memory = s.hierarchy.stats()
        s.stats.predictor_accuracy = s.predictor.accuracy()
        if self.bus.live[_RUN_END]:
            self.bus.publish(RunEndEvent(s.cycle, s.stats.name,
                                         s.stats.memory,
                                         s.stats.predictor_accuracy))


def simulate(trace: Trace, config: CoreConfig,
             max_cycles: int = 5_000_000) -> SimStats:
    """Run ``trace`` through a core built from ``config``."""
    return O3Core(trace, config).run(max_cycles)
