"""Simulation statistics: IPC, stall attribution, commit behaviour.

The counters mirror the quantities the paper reports:

* dispatch stall attribution per exhausted resource (ROB / IQ / LQ / SQ
  / REG) — the "full window stall" breakdown of §6.2;
* commit-stall cycles, and within them the cycles where at least one
  instruction was completed-and-safe but not at the ROB head — the 72% /
  76% observation of §2.2;
* branch mispredictions, memory-order violations, exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Counters for one simulation run."""

    name: str = ""
    cycles: int = 0
    committed: int = 0
    dispatched: int = 0
    issued: int = 0

    # dispatch stall attribution (cycles in which dispatch was blocked
    # with the named resource as the first missing one)
    stall_rob: int = 0
    stall_iq: int = 0
    stall_lq: int = 0
    stall_sq: int = 0
    stall_reg: int = 0
    #: cycles where dispatch stalled on a full window (any resource)
    full_window_stall_cycles: int = 0

    # commit behaviour
    commit_stall_cycles: int = 0
    #: commit-stall cycles with >=1 committable instruction not at head
    stalled_commit_ready_cycles: int = 0
    #: full-window-stall cycles with >=1 committable instruction not at head
    full_window_commit_ready_cycles: int = 0
    #: commit-stall cycles during which the ROB itself was full (sampled
    #: on the same schedule as stalled_commit_ready_cycles)
    rob_full_commit_stall_cycles: int = 0

    # events
    branch_mispredicts: int = 0
    wrong_path_dispatched: int = 0
    mem_order_violations: int = 0
    exceptions: int = 0
    load_replays: int = 0
    forwarded_loads: int = 0
    early_committed_loads: int = 0
    zombie_commits: int = 0
    lockdowns: int = 0

    # occupancy integrals (sum over cycles; divide by cycles for average)
    rob_occupancy_sum: int = 0
    iq_occupancy_sum: int = 0
    lq_occupancy_sum: int = 0
    rf_occupancy_sum: int = 0
    ready_excess_cycles: int = 0   # cycles with more ready instrs than IW

    # matrix scheduler activity (operations; feeds the circuit power
    # model the way the paper feeds SPICE from pipeline statistics)
    iq_select_ops: int = 0
    iq_writes: int = 0
    rob_check_ops: int = 0
    rob_check_rows: int = 0
    rob_writes: int = 0
    mdm_ops: int = 0
    mdm_writes: int = 0
    wakeup_ops: int = 0
    wakeup_writes: int = 0

    memory: Dict[str, float] = field(default_factory=dict)
    predictor_accuracy: float = 1.0

    def per_cycle(self, value: float) -> float:
        """``value / cycles``, 0.0 on a zero-cycle run.

        The single zero-cycle convention for every derived rate (IPC,
        occupancy, matrix activity): a run that never advanced a cycle
        has no meaningful rates, so they all read 0.0.
        """
        return value / self.cycles if self.cycles else 0.0

    def matrix_activity(self) -> Dict[str, float]:
        """Per-cycle matrix scheduler activities for the power model."""
        return {
            "iq_ops": self.per_cycle(self.iq_select_ops),
            "iq_writes": self.per_cycle(self.iq_writes),
            "rob_ops": self.per_cycle(self.rob_check_ops),
            "rob_rows": (self.rob_check_rows / self.rob_check_ops
                         if self.rob_check_ops else 0.0),
            "rob_writes": self.per_cycle(self.rob_writes),
            "mdm_ops": self.per_cycle(self.mdm_ops),
            "mdm_writes": self.per_cycle(self.mdm_writes),
            "wakeup_ops": self.per_cycle(self.wakeup_ops),
            "wakeup_writes": self.per_cycle(self.wakeup_writes),
        }

    @property
    def ipc(self) -> float:
        return self.per_cycle(self.committed)

    def occupancy(self, which: str) -> float:
        return self.per_cycle(getattr(self, f"{which}_occupancy_sum"))

    def stall_breakdown(self) -> Dict[str, int]:
        return {
            "ROB": self.stall_rob,
            "IQ": self.stall_iq,
            "LQ": self.stall_lq,
            "SQ": self.stall_sq,
            "REG": self.stall_reg,
        }

    def summary(self) -> str:
        lines = [
            f"{self.name}: {self.committed} instrs / {self.cycles} cycles "
            f"= IPC {self.ipc:.3f}",
            f"  stalls: " + ", ".join(
                f"{k}={v}" for k, v in self.stall_breakdown().items()),
            f"  mispredicts={self.branch_mispredicts} "
            f"violations={self.mem_order_violations} "
            f"exceptions={self.exceptions}",
        ]
        return "\n".join(lines)
