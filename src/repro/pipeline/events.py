"""Instrumentation event bus: typed stage-boundary events.

Every pipeline stage reports what it did through a small set of typed
events — fetch, dispatch, issue, complete, commit, squash, replay,
stall — published on an :class:`EventBus`.  Consumers (the pipeline
timeline viewer, statistics replicas, the CLI event dump) subscribe to
the event types they care about; the stages themselves never know who
is listening.

The hot-loop contract is *pay only for what you watch*: emission sites
are guarded by ``bus.live[TYPE]``, a plain list-of-bools lookup, so a
core with no subscribers never constructs an event object.  The
``published`` counter exists so tests can assert that the
zero-subscriber fast path really publishes nothing.

The taxonomy is complete with respect to :class:`~.stats.SimStats`:
:class:`StatsSubscriber` rebuilds a field-by-field identical stats
record purely from the event stream, which is the regression test that
keeps the events honest as the model grows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, ClassVar, Deque, Dict, List, Optional, Tuple

from .stats import SimStats


class EventType(IntEnum):
    """Stage-boundary event kinds (indices into the bus's tables)."""

    FETCH = 0        # an instruction entered the frontend pipe
    DISPATCH = 1     # claimed ROB/IQ (and LQ/SQ/RF) entries
    ISSUE = 2        # left the IQ for a functional unit
    COMPLETE = 3     # produced its result / finished execution
    COMMIT = 4       # retired (possibly out of order, possibly zombie)
    SQUASH = 5       # a flush killed one or more in-flight instructions
    REPLAY = 6       # a violated load re-executed in place
    STALL = 7        # dispatch or commit made no progress this cycle
    SELECT = 8       # the issue-select logic arbitrated the ready set
    MEM = 9          # memory milestones: forwarding, order violations
    MATRIX = 10      # a matrix scheduler primitive fired (power model)
    CYCLE = 11       # per-cycle occupancy sample
    RUN_END = 12     # simulation finished; final derived statistics


@dataclass(frozen=True)
class FetchEvent:
    type: ClassVar[EventType] = EventType.FETCH
    cycle: int
    seq: int
    pc: int
    mispredicted: bool
    wrong_path: bool


@dataclass(frozen=True)
class DispatchEvent:
    type: ClassVar[EventType] = EventType.DISPATCH
    cycle: int
    op: object                       # the InflightOp; read immediately
    wrong_path: bool


@dataclass(frozen=True)
class IssueEvent:
    type: ClassVar[EventType] = EventType.ISSUE
    cycle: int
    op: object


@dataclass(frozen=True)
class CompleteEvent:
    type: ClassVar[EventType] = EventType.COMPLETE
    cycle: int
    op: object


@dataclass(frozen=True)
class CommitEvent:
    type: ClassVar[EventType] = EventType.COMMIT
    cycle: int
    op: object
    zombie: bool                     # retired before completing (VB/ECL)
    early_load: bool                 # load committed before performing


@dataclass(frozen=True)
class SquashEvent:
    type: ClassVar[EventType] = EventType.SQUASH
    cycle: int
    reason: str                      # "wrong_path" | "mem_order" | "exception"
    ops: Tuple[object, ...]          # victims, youngest first
    resume_seq: Optional[int] = None


@dataclass(frozen=True)
class ReplayEvent:
    type: ClassVar[EventType] = EventType.REPLAY
    cycle: int
    seq: int


@dataclass(frozen=True)
class DispatchStall:
    """Dispatch blocked; the stall is charged to exactly one resource —
    the first exhausted one blocking the oldest not-yet-dispatched
    instruction (``rob``/``iq``/``lq``/``sq``/``reg``)."""

    type: ClassVar[EventType] = EventType.STALL
    cycle: int
    resource: str
    first: bool                      # nothing dispatched this cycle


@dataclass(frozen=True)
class CommitStall:
    """Commit made no progress.  ``weight`` > 0 on the sampled cycles
    where the §2.2 ready-behind-head statistic was evaluated."""

    type: ClassVar[EventType] = EventType.STALL
    cycle: int
    weight: int = 0
    ready_not_head: bool = False
    rob_full: bool = False


@dataclass(frozen=True)
class SelectEvent:
    type: ClassVar[EventType] = EventType.SELECT
    cycle: int
    ready: int                       # size of the ready set
    width: int                       # issue width


@dataclass(frozen=True)
class MemEvent:
    """Memory milestones.  ``kind`` is one of:

    * ``"forward"`` — a load forwarded from an in-flight store
      (``src`` = the forwarding store's seq);
    * ``"violation"`` — a resolving store caught speculative loads;
    * ``"drain"`` — a committed store left the store buffer for the L1;
    * ``"lqfree"`` — a load released its LQ entry (the end of its
      snoop-protection window);
    * ``"lockdown"`` — the released load transferred a §3.3 lockdown to
      the LDT instead (TSO mode, older loads still unperformed).
    """

    type: ClassVar[EventType] = EventType.MEM
    cycle: int
    kind: str
    seq: int
    src: Optional[int] = None


@dataclass(frozen=True)
class MatrixEvent:
    """One matrix-scheduler primitive (feeds the circuit power model)."""

    type: ClassVar[EventType] = EventType.MATRIX
    cycle: int
    matrix: str                      # "mdm" | "rob"
    kind: str                        # "op" | "write" | "check"
    rows: int = 0


@dataclass(frozen=True)
class CycleEvent:
    type: ClassVar[EventType] = EventType.CYCLE
    cycle: int
    rob_occupancy: int
    iq_occupancy: int
    lq_occupancy: int
    rf_occupancy: int


@dataclass(frozen=True)
class RunEndEvent:
    type: ClassVar[EventType] = EventType.RUN_END
    cycle: int
    name: str
    memory: Dict[str, float] = field(default_factory=dict)
    predictor_accuracy: float = 1.0


class EventBus:
    """Per-type subscriber lists with a zero-subscriber fast path.

    Emission sites are written ``if bus.live[TYPE]: bus.publish(...)``;
    ``live`` is a dense list of booleans indexed by :class:`EventType`,
    so an unwatched event type costs one list index and one branch.
    """

    __slots__ = ("_handlers", "live", "published")

    def __init__(self):
        self._handlers: List[List[Callable]] = [[] for _ in EventType]
        #: per-type "anyone listening?" flags (indexed by EventType)
        self.live: List[bool] = [False] * len(EventType)
        #: total events published (0 after a zero-subscriber run)
        self.published = 0

    def subscribe(self, etype: EventType, handler: Callable) -> None:
        """Register ``handler`` for ``etype``; handlers run in
        subscription order."""
        self._handlers[etype].append(handler)
        self.live[etype] = True

    def attach(self, subscriber) -> object:
        """Register an object exposing ``on_<event type>`` methods
        (e.g. ``on_commit``, ``on_squash``) for the matching types.
        Returns the subscriber, for chaining."""
        for etype in EventType:
            handler = getattr(subscriber, f"on_{etype.name.lower()}", None)
            if handler is not None:
                self.subscribe(etype, handler)
        return subscriber

    def wants(self, etype: EventType) -> bool:
        return self.live[etype]

    def publish(self, event) -> None:
        self.published += 1
        for handler in self._handlers[event.type]:
            handler(event)


class StatsSubscriber:
    """Rebuilds :class:`SimStats` purely from the event stream.

    The live core keeps its counters inline (the zero-subscriber fast
    path must stay free), but this subscriber proves the event taxonomy
    is *complete*: attached to a run, it reproduces the core's stats
    field by field.  ``tests/test_events.py`` holds it to that.
    """

    def __init__(self):
        self.stats = SimStats()

    def on_fetch(self, ev: FetchEvent) -> None:
        if ev.mispredicted:
            self.stats.branch_mispredicts += 1

    def on_dispatch(self, ev: DispatchEvent) -> None:
        if ev.wrong_path:
            self.stats.wrong_path_dispatched += 1
            return
        self.stats.dispatched += 1
        self.stats.iq_writes += 1
        self.stats.rob_writes += 1
        self.stats.wakeup_writes += 1

    def on_issue(self, ev: IssueEvent) -> None:
        self.stats.issued += 1
        self.stats.wakeup_ops += 1

    def on_commit(self, ev: CommitEvent) -> None:
        self.stats.committed += 1
        if ev.early_load:
            self.stats.early_committed_loads += 1
        if ev.zombie:
            self.stats.zombie_commits += 1

    def on_squash(self, ev: SquashEvent) -> None:
        if ev.reason == "exception":
            self.stats.exceptions += 1

    def on_replay(self, ev: ReplayEvent) -> None:
        self.stats.load_replays += 1

    def on_stall(self, ev) -> None:
        if isinstance(ev, DispatchStall):
            setattr(self.stats, f"stall_{ev.resource}",
                    getattr(self.stats, f"stall_{ev.resource}") + 1)
            if ev.first:
                self.stats.full_window_stall_cycles += 1
            return
        self.stats.commit_stall_cycles += 1
        if ev.rob_full:
            self.stats.rob_full_commit_stall_cycles += ev.weight
        if ev.ready_not_head:
            self.stats.stalled_commit_ready_cycles += ev.weight
            if ev.rob_full:
                self.stats.full_window_commit_ready_cycles += ev.weight

    def on_select(self, ev: SelectEvent) -> None:
        self.stats.iq_select_ops += 1
        if ev.ready > ev.width:
            self.stats.ready_excess_cycles += 1

    def on_mem(self, ev: MemEvent) -> None:
        if ev.kind == "forward":
            self.stats.forwarded_loads += 1
        elif ev.kind == "violation":
            self.stats.mem_order_violations += 1

    def on_matrix(self, ev: MatrixEvent) -> None:
        if ev.matrix == "mdm":
            if ev.kind == "op":
                self.stats.mdm_ops += 1
            else:
                self.stats.mdm_writes += 1
        elif ev.matrix == "rob" and ev.kind == "check":
            self.stats.rob_check_ops += 1
            self.stats.rob_check_rows += ev.rows

    def on_cycle(self, ev: CycleEvent) -> None:
        self.stats.cycles += 1
        self.stats.rob_occupancy_sum += ev.rob_occupancy
        self.stats.iq_occupancy_sum += ev.iq_occupancy
        self.stats.lq_occupancy_sum += ev.lq_occupancy
        self.stats.rf_occupancy_sum += ev.rf_occupancy

    def on_run_end(self, ev: RunEndEvent) -> None:
        self.stats.name = ev.name
        self.stats.memory = dict(ev.memory)
        self.stats.predictor_accuracy = ev.predictor_accuracy


class EventRecorder:
    """Keeps the first ``limit`` events (formatted) plus per-type
    counts; backs the CLI ``--events`` dump."""

    def __init__(self, limit: int = 200):
        self.limit = limit
        self.lines: List[str] = []
        self.counts: Dict[str, int] = {}
        self.truncated = False

    def _record(self, ev) -> None:
        name = EventType(ev.type).name
        self.counts[name] = self.counts.get(name, 0) + 1
        if ev.type is EventType.CYCLE:
            return                   # counted, but far too hot to print
        if len(self.lines) >= self.limit:
            self.truncated = True
            return
        fields = ", ".join(f"{k}={self._fmt(v)}"
                           for k, v in vars(ev).items() if k != "cycle")
        self.lines.append(f"[{ev.cycle:6d}] {name:8s} {fields}")

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, tuple):
            return f"<{len(value)} ops>"
        return str(value)

    # one handler per type so EventBus.attach picks them all up
    on_fetch = on_dispatch = on_issue = on_complete = _record
    on_commit = on_squash = on_replay = on_stall = _record
    on_select = on_mem = on_matrix = on_cycle = on_run_end = _record

    def format(self) -> str:
        total = sum(self.counts.values())
        header = [f"event dump ({total} events"
                  + (f", first {self.limit} shown" if self.truncated
                     else "") + ")"]
        histogram = ["  " + "  ".join(
            f"{name}={count}" for name, count in sorted(self.counts.items()))]
        return "\n".join(header + histogram + self.lines)


class EventTail:
    """Ring buffer of the *last* ``limit`` events (formatted).

    The crash-diagnostic path attaches one during its instrumented
    re-run of a failing cell, so a crash bundle carries the event
    stream leading *into* the failure — :class:`EventRecorder` keeps
    the first N, which for a crash at cycle 400k is useless.  CYCLE
    events are counted but not kept (far too hot, zero diagnostic
    value).
    """

    def __init__(self, limit: int = 64):
        self.limit = limit
        self.lines: Deque[str] = deque(maxlen=limit)
        self.counts: Dict[str, int] = {}

    def _record(self, ev) -> None:
        name = EventType(ev.type).name
        self.counts[name] = self.counts.get(name, 0) + 1
        if ev.type is EventType.CYCLE:
            return
        fields = ", ".join(f"{k}={EventRecorder._fmt(v)}"
                           for k, v in vars(ev).items() if k != "cycle")
        self.lines.append(f"[{ev.cycle:6d}] {name:8s} {fields}")

    # one handler per type so EventBus.attach picks them all up
    on_fetch = on_dispatch = on_issue = on_complete = _record
    on_commit = on_squash = on_replay = on_stall = _record
    on_select = on_mem = on_matrix = on_cycle = on_run_end = _record

    def tail(self) -> List[str]:
        return list(self.lines)
