"""Lane-batched engine: step N experiment cells in lockstep.

Figure sweeps are thousands of small, homogeneous (config, workload)
cells.  :class:`LaneBatch` simulates up to ``lanes`` of them at once
over one :class:`~repro.core.LaneStack` — a struct-of-arrays arena
holding every cell's matrix state in 3-D lane-stacked NumPy arrays —
with a lockstep driver:

* every driver iteration advances each **active** lane by one unit of
  work (one ``step()``, or one fast-forward span — cells diverge in
  cycle count and fast-forward behaviour, so the active-lane set is
  the divergence mask);
* a lane whose cell finishes (or raises) **retires**: its outcome is
  recorded, its slot returns to the free list, and the next queued
  cell **refills** the slot (the slot's state planes are re-zeroed by
  the new core's matrix constructors);
* a :class:`~repro.pipeline.DeadlockError` (watchdog or cycle-budget)
  in one lane is caught per lane and never perturbs batch-mates —
  their matrix state lives in disjoint planes of the stack.

Because each lane's stages run the *scalar* engine over views into
the stack, per-cell results are field-identical to the serial
reference by construction; cross-lane work (occupancy accounting and
the batched ``REPRO_CHECK`` re-derivation) is vectorised over the
lane axis.  Under ``REPRO_CHECK=1`` the harness additionally calls
:func:`crosscheck` on a sampled cell per batch — a full serial re-run
diffed field-by-field against the lane result.

Lane batching is engine-internal: the harness builds fresh cores per
cell, and the CLI paths that attach live per-cycle subscribers
(``--timeline``, ``--events``, ``repro profile``) refuse or bypass
lane mode.  A caller *may* hand a cell a pre-wired event bus
(``LaneCell.bus`` — the verification campaign's witness subscriber
does); a live SELECT subscriber routes that lane onto the scalar
fallback step, and every other event type publishes identically on
the vectorized path.

Batches are workload-agnostic: a :class:`LaneCell` holds a concrete
trace, so any registered workload target (synthetic kernel, imported
trace file, generated scenario) lane-batches the same way.  The
harness orders batch-mates by target identity — the ``(name, scale)``
key of the shared trace LRU — so consecutive lane refills of the same
target hit the cache instead of rebuilding or re-reading the trace.
"""

from __future__ import annotations

import dataclasses
import traceback
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence

from ..core import LaneStack, check
from .config import CoreConfig
from .core import DeadlockError, O3Core
from .fastforward import FastForward
from .stats import SimStats
from .vectorstages import VectorEngine, lane_vectorizable, select_live

__all__ = ["LaneBatch", "LaneCell", "LaneDivergence", "LaneOutcome",
           "LaneReport", "crosscheck", "lane_key"]

#: lanes between batched REPRO_CHECK re-derivations over the stack
_VERIFY_EVERY = 64


class LaneDivergence(RuntimeError):
    """A lane-batched result differs from its serial re-run."""


def lane_key(config: CoreConfig) -> tuple:
    """Compatibility key: cells sharing a key may share a stack.

    Matrix shapes must match for the slot views to fit; queue
    organisation and ROB release policy are pinned too so batch-mates
    exercise identical structure layouts.
    """
    return (config.iq_size, config.rob_size, config.iq_org,
            config.ooo_rob_release)


@dataclass
class LaneCell:
    """One queued cell: an opaque caller key plus its trace/config.

    ``bus`` optionally supplies a pre-wired
    :class:`~repro.pipeline.events.EventBus` for the cell's core — the
    verification campaign attaches its witness subscriber this way.
    Cells with live SELECT subscribers simply fall back to the scalar
    per-lane step (see ``select_live``); all other event types publish
    identically on the vectorized path.
    """

    index: object
    trace: object
    config: CoreConfig
    max_cycles: int = 5_000_000
    bus: object = None


@dataclass
class LaneOutcome:
    """Terminal state of one cell after its lane retired.

    Exactly one of ``stats`` / ``error`` / ``timed_out`` describes the
    outcome.  ``elapsed`` is the cell's *attributed* time: the sum of
    its own construction and step durations, measured per lane-step —
    summing outcomes recovers the batch's simulation time without the
    lanes-fold overcount a fill-to-retire wall clock would give.
    """

    index: object
    stats: Optional[SimStats] = None
    error: Optional[Exception] = None
    error_tb: str = ""
    timed_out: bool = False
    elapsed: float = 0.0


@dataclass
class LaneReport:
    """Everything a batch run produced, plus occupancy accounting."""

    outcomes: List[LaneOutcome] = field(default_factory=list)
    #: lockstep driver iterations with at least one active lane
    steps: int = 0
    #: total lane-advances (sum of active lanes over iterations)
    lane_steps: int = 0

    def mean_active(self) -> float:
        """Mean active lanes per driver iteration (batch occupancy)."""
        return self.lane_steps / self.steps if self.steps else 0.0


class _Lane:
    """One occupied lane: slot id, cell, core, fast-forward, timing."""

    __slots__ = ("slot_id", "cell", "core", "ff", "elapsed", "vec_ok")

    def __init__(self, slot_id: int, cell: LaneCell, core: O3Core,
                 ff: Optional[FastForward], elapsed: float):
        self.slot_id = slot_id
        self.cell = cell
        self.core = core
        self.ff = ff
        self.elapsed = elapsed
        #: static eligibility for the cross-lane vectorized kernels
        self.vec_ok = lane_vectorizable(core)


class LaneBatch:
    """Lockstep executor for lane-compatible cells over one stack."""

    def __init__(self, lanes: int, iq_size: int, rob_size: int):
        self.lanes = max(1, lanes)
        self.iq_size = iq_size
        self.rob_size = rob_size
        self.stack = LaneStack(self.lanes, iq_size, rob_size)
        self.engine = VectorEngine(self.stack)
        self._check = check.check_enabled()

    def run(self, cells: Sequence[LaneCell],
            on_cell: Optional[Callable[[LaneOutcome], None]] = None,
            timeout: Optional[float] = None) -> LaneReport:
        """Drive every cell to a terminal outcome.

        Cells beyond the lane count queue and refill slots as lanes
        retire (mid-batch retirement).  ``on_cell`` fires as each cell
        retires — the harness flushes results to the cache from it, so
        an interrupt mid-batch keeps completed cells.  ``timeout``
        bounds each cell's *attributed* simulation seconds
        (cooperative: checked between lockstep iterations).
        """
        for cell in cells:
            if (cell.config.iq_size, cell.config.rob_size) != \
                    (self.iq_size, self.rob_size):
                raise ValueError(
                    f"cell {cell.index!r} (iq={cell.config.iq_size}, "
                    f"rob={cell.config.rob_size}) is not compatible "
                    f"with this batch (iq={self.iq_size}, "
                    f"rob={self.rob_size})")
        # longest-trace-first fill order shrinks the end-of-batch tail
        # where one long cell runs with the other lanes drained (the
        # sort is stable, so equal-length cells — typically the same
        # (workload, scale) target — keep their cache-friendly
        # adjacency); per-cell outcomes are order-independent
        queue = deque(sorted(cells, key=lambda c: len(c.trace),
                             reverse=True))
        report = LaneReport()
        active: List[_Lane] = []
        free = list(range(self.lanes - 1, -1, -1))

        def retire(lane: _Lane, outcome: LaneOutcome) -> None:
            lane.core = None                 # marks the lane for reaping
            free.append(lane.slot_id)
            report.outcomes.append(outcome)
            if on_cell is not None:
                on_cell(outcome)

        while queue or active:
            while queue and free:
                slot_id = free.pop()
                cell = queue.popleft()
                start = perf_counter()
                core = O3Core(cell.trace, cell.config, bus=cell.bus,
                              slot=self.stack.slot(slot_id))
                ff = FastForward(core) if core.fast_forward_enabled \
                    else None
                active.append(_Lane(slot_id, cell, core, ff,
                                    perf_counter() - start))
            report.steps += 1
            retired = False
            # pass 1 — per-lane terminal checks and fast-forward; a
            # lane that neither retires nor fast-forwards needs one
            # step, routed to the vectorized or scalar path
            vec: List[_Lane] = []
            scalar: List[_Lane] = []
            for lane in active:
                core = lane.core
                cell = lane.cell
                start = perf_counter()
                try:
                    if core.done():
                        core._finalize_stats()
                        lane.elapsed += perf_counter() - start
                        retire(lane, LaneOutcome(
                            cell.index, stats=core.state.stats,
                            elapsed=lane.elapsed))
                        retired = True
                        continue
                    if core.state.cycle >= cell.max_cycles:
                        raise DeadlockError(
                            f"cycle budget exhausted at "
                            f"{core.state.cycle}")
                    if lane.ff is not None and \
                            lane.ff.advance(cell.max_cycles):
                        lane.elapsed += perf_counter() - start
                        report.lane_steps += 1
                        continue
                except Exception as exc:
                    # a failing lane (deadlock, assertion, anything) is
                    # an annotated outcome; batch-mates are untouched —
                    # their state lives in disjoint planes of the stack
                    lane.elapsed += perf_counter() - start
                    retire(lane, LaneOutcome(
                        cell.index, error=exc,
                        error_tb=traceback.format_exc(),
                        elapsed=lane.elapsed))
                    retired = True
                    continue
                lane.elapsed += perf_counter() - start
                if lane.vec_ok and not select_live(lane.core):
                    vec.append(lane)
                else:
                    scalar.append(lane)
            # pass 2a — scalar fallback lanes step individually (non-
            # vectorizable policy, criticality, live SELECT subscriber)
            for lane in scalar:
                start = perf_counter()
                try:
                    lane.core.step()
                except Exception as exc:
                    lane.elapsed += perf_counter() - start
                    retire(lane, LaneOutcome(
                        lane.cell.index, error=exc,
                        error_tb=traceback.format_exc(),
                        elapsed=lane.elapsed))
                    retired = True
                    continue
                lane.elapsed += perf_counter() - start
                report.lane_steps += 1
            # pass 2b — vectorizable lanes advance together through the
            # cross-lane fused kernels (a solo lane gains nothing from
            # fusing, so it takes the scalar step)
            if len(vec) == 1:
                lane = vec[0]
                start = perf_counter()
                try:
                    lane.core.step()
                except Exception as exc:
                    lane.elapsed += perf_counter() - start
                    retire(lane, LaneOutcome(
                        lane.cell.index, error=exc,
                        error_tb=traceback.format_exc(),
                        elapsed=lane.elapsed))
                    retired = True
                else:
                    lane.elapsed += perf_counter() - start
                    report.lane_steps += 1
            elif vec:
                start = perf_counter()
                failures = self.engine.step(vec)
                share = (perf_counter() - start) / len(vec)
                # attributed time: the fused step's wall split equally
                # across participants (per-lane timing has no meaning
                # inside a cross-lane kernel)
                for lane in vec:
                    lane.elapsed += share
                for lane, exc, tb in failures:
                    retire(lane, LaneOutcome(
                        lane.cell.index, error=exc, error_tb=tb,
                        elapsed=lane.elapsed))
                    retired = True
                report.lane_steps += len(vec) - len(failures)
            if timeout is not None:
                for lane in active:
                    if lane.core is not None and lane.elapsed > timeout:
                        retire(lane, LaneOutcome(
                            lane.cell.index, timed_out=True,
                            elapsed=lane.elapsed))
                        retired = True
            if retired:
                active = [lane for lane in active if lane.core is not None]
            if self._check and active and \
                    report.steps % _VERIFY_EVERY == 0:
                # batched cross-lane re-derivation: one vectorised op
                # over the lane axis checks every active lane at once
                self.stack.verify(lane.slot_id for lane in active)
        return report


def crosscheck(cell: LaneCell, stats: SimStats) -> None:
    """Re-run one cell serially and diff its SimStats field-by-field.

    The ``REPRO_CHECK=1`` sampled-lane cross-check: the harness picks
    one completed cell per batch and pays for a full serial re-run
    (fresh :class:`O3Core`, owned matrix storage) to prove the
    lane-batched result identical.  Raises :class:`LaneDivergence`
    naming the differing fields otherwise.
    """
    reference = O3Core(cell.trace, cell.config).run(cell.max_cycles)
    got = dataclasses.asdict(stats)
    want = dataclasses.asdict(reference)
    if got != want:
        diffs = [f"{name}: lane={got[name]!r} serial={want[name]!r}"
                 for name in want if got.get(name) != want[name]]
        raise LaneDivergence(
            f"lane-batched stats diverged from serial re-run for cell "
            f"{cell.index!r}: " + "; ".join(diffs[:8]))
