"""Quiescent-cycle fast-forward: skip stretches of pure stall time.

Long memory stalls dominate the cycle count of the modelled workloads:
the window is full, nothing is ready, and the machine burns hundreds of
identical cycles waiting for a cache miss to come back.  Each of those
cycles does no *work* — every stage either returns immediately or
increments the same stall/occupancy counters — so the simulator can
account for them in bulk without ticking the stages.

The mechanism is replay-and-verify, not a parallel model of the
pipeline:

1. A cheap :meth:`~FastForward._quiescent` predicate recognises a
   candidate cycle: nothing ready or retrying, the store buffer empty,
   fetch frozen (trace exhausted, backpressured, or waiting out a
   redirect), dispatch blocked, and no timed event (completion,
   frontend pipe, wrong-path wakeup) due at or before this cycle.
2. One normal cycle is stepped to *settle* any one-shot leftovers
   (e.g. a deferred in-order release draining).  If it made forward
   progress the attempt is abandoned — the step was real work.
3. A second normal cycle is stepped and its exact
   :class:`~repro.pipeline.stats.SimStats` delta is *measured*.  If
   any counter outside the known per-stall-cycle set moved, the
   attempt is abandoned.  Execution is therefore never wrong — at
   worst the fast path declines and the simulation proceeds
   cycle by cycle.
4. The measured delta is multiplied onto the remaining skip span
   ``k``, chosen so the skip never crosses the next timed event, the
   deadlock watchdog horizon, or the cycle budget — the cycles being
   skipped are provably identical to the measured one.

The one non-linear per-cycle effect is the sampled §2.2 commit-stall
statistic (every 8th stall cycle evaluates ``_account_commit_ready``
with weight 8).  The skip reproduces it analytically: the machine
state those samples would inspect is frozen, so the number of sample
points crossed in ``k`` cycles is computed in closed form and a single
weighted evaluation stands in for all of them.

Bit-exactness is enforced by ``tests/test_fastforward.py`` (field
identical stats with the feature on and off across policies) and by
the golden end-to-end snapshots.  ``REPRO_NO_FASTFORWARD=1`` disables
the feature; instrumented runs (any subscriber on per-cycle event
types) disable it automatically so event streams stay complete.
"""

from __future__ import annotations

import dataclasses

from .events import EventType
from .stats import SimStats

_CYCLE = EventType.CYCLE
_STALL = EventType.STALL
_MATRIX = EventType.MATRIX

#: counters a quiescent cycle may bump by the same amount every cycle;
#: their measured one-cycle delta is multiplied by the skip span
_SCALED = frozenset((
    "cycles",
    "commit_stall_cycles",
    "rob_check_ops", "rob_check_rows",
    "stall_rob", "stall_iq", "stall_lq", "stall_sq", "stall_reg",
    "full_window_stall_cycles",
    "rob_occupancy_sum", "iq_occupancy_sum",
    "lq_occupancy_sum", "rf_occupancy_sum",
))

#: counters fed only by the every-8th-stall-cycle sample; never scaled,
#: reproduced analytically instead
_SAMPLED = frozenset((
    "rob_full_commit_stall_cycles",
    "stalled_commit_ready_cycles",
    "full_window_commit_ready_cycles",
))

#: every integer counter of SimStats — the delta audit walks all of
#: them, so a counter added later makes the fast path decline (exact
#: stepping) instead of being scaled or dropped silently
_TRACKED = tuple(
    f.name for f in dataclasses.fields(SimStats)
    if f.name not in ("name", "memory", "predictor_accuracy"))


def enabled_by_env() -> bool:
    from ..envutil import env_flag
    return not env_flag("REPRO_NO_FASTFORWARD", default=False)


class FastForward:
    """Per-core fast-forward engine driven from :meth:`O3Core.run`."""

    #: minimum whole-span worth attempting (two replay cycles are spent
    #: on settle+measure, so tiny spans are cheaper to just step)
    MIN_SPAN = 8

    def __init__(self, core):
        self.core = core
        self.s = core.state
        self._dispatch = core.stages[5]
        #: suppress retries for a while after a measured-delta bail so
        #: a misbehaving region cannot thrash settle/measure replays
        self._cooldown = 0

    # -- recognition ----------------------------------------------------

    def _quiescent(self, cycle: int) -> bool:
        s = self.s
        if s.ready_set or s.mem_retry or s.lsq.store_buffer:
            return False
        if s.frontend_pipe and s.frontend_pipe[0][0] <= cycle:
            return False
        if s.wp_ready and s.wp_ready[0][0] <= cycle:
            return False
        if s.completion_heap and s.completion_heap[0][0] <= cycle:
            return False
        fetch = s.fetch
        if not (fetch.exhausted()
                or len(s.dispatch_buffer) >= 2 * s.config.dispatch_width
                or (fetch._stalled_on is None and cycle < fetch._resume_at)
                or (fetch._stalled_on is not None
                    and not fetch.model_wrong_path)):
            return False
        if s.dispatch_buffer and \
                self._dispatch._blocker(s.dispatch_buffer[0].instr) is None:
            return False
        live = s.bus.live
        if live[_CYCLE] or live[_STALL] or live[_MATRIX]:
            return False
        return True

    def _next_wake(self, cycle: int, max_cycles: int) -> int:
        """First cycle at which the frozen state can change (or a
        watchdog / budget boundary the exact path must hit itself)."""
        s = self.s
        wake = min(s.progress_cycle + 50_000, max_cycles)
        if s.completion_heap:
            wake = min(wake, s.completion_heap[0][0])
        if s.frontend_pipe:
            wake = min(wake, s.frontend_pipe[0][0])
        if s.wp_ready:
            wake = min(wake, s.wp_ready[0][0])
        fetch = s.fetch
        if not fetch.exhausted() and fetch._stalled_on is None \
                and fetch._resume_at > cycle:
            wake = min(wake, fetch._resume_at)
        return wake

    # -- the skip -------------------------------------------------------

    def advance(self, max_cycles: int) -> bool:
        """Try to fast-forward from the current cycle.

        Returns True when it stepped the core at least once (the run
        loop just continues); False when the cycle is not quiescent and
        the caller should step normally.  Never steps past anything the
        exact path would have reacted to.
        """
        core = self.core
        s = self.s
        c = s.cycle
        if c < self._cooldown or not self._quiescent(c):
            return False
        wake = self._next_wake(c, max_cycles)
        if wake - c < self.MIN_SPAN:
            # too short to amortise the settle+measure replay — and the
            # state is frozen until ``wake`` anyway, so there is nothing
            # to re-evaluate before then: branchy workloads hit this on
            # nearly every short stall, and without the back-off the
            # predicate + wake scan would run on every one of those
            # cycles for no possible gain
            self._cooldown = wake
            return False

        # settle: flush one-shot leftovers (deferred releases, FU busy
        # expiry) under the exact model
        core.step()
        if s.progress_cycle >= c or core.done() \
                or not self._quiescent(s.cycle):
            return True

        # measure one representative cycle
        snap = {name: getattr(s.stats, name) for name in _TRACKED}
        fetch_stall0 = s.fetch.stall_cycles
        c1 = s.cycle
        core.step()
        if s.progress_cycle >= c1 or core.done() \
                or not self._quiescent(s.cycle):
            return True
        stats = s.stats
        delta = {}
        for name, before in snap.items():
            d = getattr(stats, name) - before
            if d:
                delta[name] = d
        for name in delta:
            if name not in _SCALED and name not in _SAMPLED:
                # something outside the stall-cycle signature moved:
                # decline (and back off) rather than approximate
                self._cooldown = s.cycle + 256
                return True

        k = wake - s.cycle
        if k <= 0:
            return True
        for name, d in delta.items():
            if name in _SCALED:
                setattr(stats, name, getattr(stats, name) + d * k)
        fetch_delta = s.fetch.stall_cycles - fetch_stall0
        if fetch_delta:
            s.fetch.stall_cycles += fetch_delta * k
        if delta.get("commit_stall_cycles"):
            # the sampled §2.2 statistic: cycles whose stall count hits
            # a multiple of 8 evaluate _account_commit_ready(weight=8)
            # on state that is frozen for the whole span — n crossings
            # collapse into one weight-8n evaluation
            base = stats.commit_stall_cycles - k
            crossings = (base + k) // 8 - base // 8
            if crossings:
                core.commit_stage._account_commit_ready(
                    weight=8 * crossings)
        s.cycle += k
        return True
