"""Cross-lane vectorized stage kernels for the lane-batched engine.

The lane engine (:mod:`repro.pipeline.lanes`) steps N compatible cells
in lockstep over one :class:`~repro.core.LaneStack`, but until this
module each lane still executed the whole per-cycle hot path in scalar
Python — N small NumPy calls per stage instead of one batched call, so
lanes ran *slower* than serial.  :class:`VectorEngine` re-orders one
lockstep iteration **stage-major** (every lane's commit tick, then
every lane's writeback tick, …— legal because lane state is disjoint)
and fuses the dominant per-cycle array work into single NumPy
operations over the stack's lane axis:

* **select** — the stock AGE policy's matrix sense.  For a lane
  running :class:`~repro.scheduler.AgeSelect` without criticality,
  dispatch order *is* age order (stamps strictly increase and every
  dispatch writes a full row), so the matrix's single-oldest grant is
  exactly the minimum dispatch stamp over the ready set.  The kernel
  gathers every lane's ready plane and stamp plane, masks non-ready
  entries to ``int64`` max, and one ``argmin`` over the entry axis
  yields every lane's oldest ready entry; the per-lane
  :meth:`IssueStage.tick_vec` then reproduces ``AgeSelect.select``
  bit-exactly (grant order and rng entropy included) from that hint.
* **wakeup broadcast** — issued entries' column clears and pending
  decrements, deferred by the issue stage and landed for all lanes in
  one fancy-indexed clear plus one ``reduceat`` of the gathered
  columns (flushed before dispatch can reuse a freed entry).
* **dispatch-group landing** — the per-lane age/wakeup/merged
  ``dispatch_group`` matrix stores, deferred by the dispatch stage
  (``defer_flush``) and landed for all lanes at once: one batched
  column clear and one batched row store per bit-plane stack, with the
  per-lane valid snapshots gathered before any valid bit is set and
  the intra-group triangles patched exactly as the scalar fast path
  does.  The small per-entry counter updates (wakeup pending, merged
  SPEC/blockers) stay per-lane Python — they are O(dispatch width).
* **commit eligibility** — the merged matrix's lazy
  ``safe = (blockers == 0) & valid`` refresh, computed for every
  dirty lane in one batched pass before the commit ticks.

Lanes that cannot take the vectorized path — a non-``AgeSelect``
policy, criticality scheduling (matrix order diverges from stamp
order), or a live ``SELECT`` event subscriber (the vector path skips
the per-cycle ``SelectEvent``) — are stepped by the driver through the
unchanged scalar ``core.step()``; mixed batches are routine.  A lane
that raises mid-iteration is excluded from the remaining phases (its
state is mid-cycle, exactly as a scalar ``step()`` abort) and returned
to the driver for retirement; batch-mates are untouched.

Under ``REPRO_CHECK=1`` every vectorized kernel is cross-checked per
cycle: the select kernel's grants are compared against a scalar
``AgeSelect.select`` run with a cloned rng (grant list *and* rng state
must match), and the fused broadcast/landing stores are validated by
the stack-wide counter re-derivation (:meth:`LaneStack.verify`) after
every engine step.
"""

from __future__ import annotations

import random
import traceback
from typing import List, Sequence, Tuple

import numpy as np

from ..core import check
from ..scheduler import AgeSelect, SelectContext
from .core import DeadlockError
from .events import EventType

__all__ = ["VectorEngine", "lane_vectorizable"]

_SELECT = EventType.SELECT
_I64_MAX = np.iinfo(np.int64).max

#: stage indices in O3Core.stages / O3Core._ticks
_COMMIT, _WRITEBACK, _MEMORY, _EXECUTE, _ISSUE_S, _DISPATCH_S, _FETCH = \
    range(7)


def lane_vectorizable(core) -> bool:
    """Static per-lane eligibility for the vectorized kernels.

    The select kernel's stamp-order shortcut requires the stock
    :class:`AgeSelect` policy with criticality off (critical dispatch
    breaks the stamp ≡ matrix-age equivalence), and the lane must be
    slot-backed so its issue columns live in the stack.  The dynamic
    part — no live ``SELECT`` subscriber — is checked per iteration by
    the driver.
    """
    s = core.state
    return (type(s.select_policy) is AgeSelect
            and not s.config.criticality
            and s.iq_stamp is not None)


def select_live(core) -> bool:
    """Dynamic fallback: a live SELECT subscriber needs the scalar
    tick (the vector path does not publish ``SelectEvent``)."""
    return core.bus.live[_SELECT]


class VectorEngine:
    """Stage-major lockstep stepper with cross-lane fused kernels.

    One instance per :class:`~repro.pipeline.lanes.LaneBatch`; all
    buffers are preallocated against the stack's shape (index arrays
    grow geometrically on demand, then stay — the steady state
    allocates nothing at the Python level).
    """

    def __init__(self, stack):
        self.stack = stack
        lanes, n, r = stack.lanes, stack.iq_size, stack.rob_size
        # select kernel buffers
        self._sl_slots = np.empty(lanes, dtype=np.intp)
        self._sl_ready = np.empty((lanes, n), dtype=bool)
        self._sl_stamps = np.empty((lanes, n), dtype=np.int64)
        self._sl_not = np.empty((lanes, n), dtype=bool)
        self._sl_oldest = np.empty(lanes, dtype=np.intp)
        self._sl_any = np.empty(lanes, dtype=bool)
        # commit-eligibility refresh buffers
        self._cc_slots = np.empty(lanes, dtype=np.intp)
        self._cc_blk = np.empty((lanes, r), dtype=np.intp)
        self._cc_valid = np.empty((lanes, r), dtype=bool)
        self._cc_safe = np.empty((lanes, r), dtype=bool)
        # fused wakeup broadcast (flat per-issued-entry indices)
        cap = max(8, lanes * 8)
        self._bc_lanes = np.empty(cap, dtype=np.intp)
        self._bc_entries = np.empty(cap, dtype=np.intp)
        self._bc_uslots = np.empty(lanes, dtype=np.intp)
        # fused dispatch landing (flat per-dispatched-op indices, row
        # blocks and counter values; grown if a batch's total group
        # size exceeds cap)
        self._dl_lanes = np.empty(cap, dtype=np.intp)
        self._dl_iq = np.empty(cap, dtype=np.intp)
        self._dl_rob = np.empty(cap, dtype=np.intp)
        self._dl_rows_iq = np.empty((cap, n), dtype=bool)
        self._dl_rows_rob = np.empty((cap, r), dtype=bool)
        self._dl_rows_wk = np.empty((cap, n), dtype=bool)
        self._dl_cnt = np.empty(cap, dtype=np.intp)
        self._dl_rdy = np.empty(cap, dtype=bool)
        self._dl_spec = np.empty(cap, dtype=bool)
        self._dl_blk = np.empty(cap, dtype=np.intp)
        self._check = check.check_enabled()

    def _grow_dl(self, need: int) -> None:
        cap = self._dl_lanes.shape[0]
        while cap < need:
            cap *= 2
        n, r = self.stack.iq_size, self.stack.rob_size
        self._dl_lanes = np.empty(cap, dtype=np.intp)
        self._dl_iq = np.empty(cap, dtype=np.intp)
        self._dl_rob = np.empty(cap, dtype=np.intp)
        self._dl_rows_iq = np.empty((cap, n), dtype=bool)
        self._dl_rows_rob = np.empty((cap, r), dtype=bool)
        self._dl_rows_wk = np.empty((cap, n), dtype=bool)
        self._dl_cnt = np.empty(cap, dtype=np.intp)
        self._dl_rdy = np.empty(cap, dtype=bool)
        self._dl_spec = np.empty(cap, dtype=bool)
        self._dl_blk = np.empty(cap, dtype=np.intp)

    def _grow_bc(self, need: int) -> None:
        cap = self._bc_lanes.shape[0]
        while cap < need:
            cap *= 2
        self._bc_lanes = np.empty(cap, dtype=np.intp)
        self._bc_entries = np.empty(cap, dtype=np.intp)

    # ------------------------------------------------------------------
    # one lockstep iteration
    # ------------------------------------------------------------------

    def step(self, lanes: Sequence) -> List[Tuple[object, Exception, str]]:
        """Advance every lane one cycle; return the failed ones.

        ``lanes`` are driver lane records exposing ``.core`` and
        ``.slot_id``.  Surviving lanes end the call exactly one cycle
        ahead with state field-identical to a scalar ``core.step()``;
        a failed lane is excluded from the phases after its exception
        (mid-cycle state, same as a scalar abort) and reported as
        ``(lane, exception, traceback_text)``.
        """
        alive = list(lanes)
        failures: List[Tuple[object, Exception, str]] = []
        dead = False

        # commit-eligibility refresh (fused _refresh for dirty lanes);
        # runs before any tick, so it sees exactly the state the first
        # can_commit() of the cycle would
        self._refresh_commit(alive)

        # phase A per lane: FU reset + commit/writeback/memory/execute
        # ticks + wrong-path drain, bundled into one Python call
        for i, lane in enumerate(alive):
            try:
                lane.core.vec_phase_a()
            except Exception as exc:    # noqa: BLE001 — lane isolation
                failures.append((lane, exc, traceback.format_exc()))
                alive[i] = None
                dead = True
        if dead:
            alive = [lane for lane in alive if lane is not None]
            dead = False
        if not alive:
            return failures

        # cross-lane select kernel, then per-lane grant/issue with
        # deferred wakeup broadcast; lanes with an empty ready set are
        # skipped outright (their scalar tick would early-return)
        oldest, anyready = self._select_kernel(alive)
        checking = self._check
        for i, lane in enumerate(alive):
            if not anyready[i]:
                continue
            core = lane.core
            stage = core.stages[_ISSUE_S]
            try:
                if checking:
                    self._check_select(core, int(oldest[i]))
                stage.defer_broadcast = True
                try:
                    stage.tick_vec(core.state.cycle, int(oldest[i]))
                finally:
                    stage.defer_broadcast = False
            except Exception as exc:    # noqa: BLE001 — lane isolation
                failures.append((lane, exc, traceback.format_exc()))
                alive[i] = None
                dead = True
        self._broadcast_kernel(alive)
        if dead:
            alive = [lane for lane in alive if lane is not None]
            dead = False
        if not alive:
            return failures

        # dispatch: per-lane tick with deferred matrix landing, then
        # the fused cross-lane landing (which validity-checks each
        # group and excludes a failing lane before any store)
        for i, lane in enumerate(alive):
            stage = lane.core.stages[_DISPATCH_S]
            stage.defer_flush = True
            try:
                stage.tick(lane.core.state.cycle)
            except Exception as exc:    # noqa: BLE001 — lane isolation
                failures.append((lane, exc, traceback.format_exc()))
                alive[i] = None
                dead = True
            finally:
                stage.defer_flush = False
        dead = self._land_groups(alive, failures) or dead
        if dead:
            alive = [lane for lane in alive if lane is not None]
            dead = False

        # phase D per lane: fetch tick + stats + cycle advance +
        # watchdog, bundled into one Python call
        for i, lane in enumerate(alive):
            try:
                lane.core.vec_phase_d()
            except Exception as exc:    # noqa: BLE001 — lane isolation
                failures.append((lane, exc, traceback.format_exc()))
                alive[i] = None
                dead = True
        if checking:
            if dead:
                alive = [lane for lane in alive if lane is not None]
            if alive:
                self.stack.verify(lane.slot_id for lane in alive)
        return failures

    # ------------------------------------------------------------------
    # fused kernels
    # ------------------------------------------------------------------

    def _refresh_commit(self, alive: List) -> None:
        """Batched ``MergedCommitMatrix._refresh`` for dirty lanes."""
        k = 0
        slots = self._cc_slots
        merged = []
        for lane in alive:
            m = lane.core.state.merged
            if m._dirty:
                slots[k] = lane.slot_id
                merged.append(m)
                k += 1
        if not k:
            return
        stack = self.stack
        idx = slots[:k]
        blk = self._cc_blk[:k]
        np.take(stack.blockers, idx, axis=0, out=blk)
        safe = self._cc_safe[:k]
        np.equal(blk, 0, out=safe)
        valid = self._cc_valid[:k]
        np.take(stack.rob_age_valid, idx, axis=0, out=valid)
        np.logical_and(safe, valid, out=safe)
        stack.safe[idx] = safe
        for m in merged:
            m._dirty = False

    def _select_kernel(self, alive: List) -> Tuple[np.ndarray, np.ndarray]:
        """Every lane's oldest ready entry in one ``argmin``.

        Gathers the ready and stamp planes of the given lanes, masks
        non-ready entries to ``int64`` max, and argmins over the entry
        axis.  Returns ``(oldest, anyready)``; a lane with an empty
        ready set has ``anyready`` False (and a meaningless oldest) —
        the engine skips its issue call entirely.
        """
        k = len(alive)
        stack = self.stack
        slots = self._sl_slots[:k]
        for i, lane in enumerate(alive):
            slots[i] = lane.slot_id
        ready = self._sl_ready[:k]
        np.take(stack.issue_ready, slots, axis=0, out=ready)
        anyready = self._sl_any[:k]
        np.any(ready, axis=1, out=anyready)
        stamps = self._sl_stamps[:k]
        np.take(stack.iq_stamp, slots, axis=0, out=stamps)
        notready = self._sl_not[:k]
        np.logical_not(ready, out=notready)
        np.copyto(stamps, _I64_MAX, where=notready)
        oldest = self._sl_oldest[:k]
        np.argmin(stamps, axis=1, out=oldest)
        return oldest, anyready

    def _broadcast_kernel(self, alive: List) -> None:
        """Fused wakeup broadcast of every lane's issued entries.

        Scalar equivalent (per lane): ``WakeupMatrix.issue(entries)``
        — valid off, pending minus the issued columns, columns
        cleared — plus the issued entries' ``AgeMatrix.remove`` valid
        clears (their column/row bits stay stale, as in the scalar
        non-collapsible structure).  The column block is gathered
        *before* the clear, and per-lane segment sums reproduce the
        per-entry subtractions.  Runs before the dispatch phase, so a
        freed entry reused by this cycle's dispatch group lands on
        clean planes exactly as under the scalar interleave.
        """
        m = 0
        groups = []                 # (state, slot, start)
        for lane in alive:
            if lane is None:
                continue
            stage = lane.core.stages[_ISSUE_S]
            deferred = stage.deferred
            if not deferred:
                continue
            if m + len(deferred) > self._bc_lanes.shape[0]:
                self._grow_bc(m + len(deferred))
            start = m
            slot = lane.slot_id
            for entry in deferred:
                self._bc_lanes[m] = slot
                self._bc_entries[m] = entry
                m += 1
            groups.append((lane.core.state, slot, start))
            deferred.clear()
        if not m:
            return
        stack = self.stack
        lr = self._bc_lanes[:m]
        ef = self._bc_entries[:m]
        bits3 = stack.wakeup_bits
        cols = bits3[lr, :, ef]                      # (m, n) gather
        starts = [start for _, _, start in groups]
        seg = np.add.reduceat(cols, starts, axis=0, dtype=np.intp)
        uslots = self._bc_uslots[:len(groups)]
        for i, (_, slot, _) in enumerate(groups):
            uslots[i] = slot
        # slot ids are unique per lane, so the in-place fancy
        # subtraction is a well-defined gather-subtract-scatter
        stack.wakeup_pending[uslots] -= seg
        stack.wakeup_valid[lr, ef] = False
        bits3[lr, :, ef] = False
        # the deferred AgeMatrix.remove of every issued entry (the
        # critical plane stays all-False on vectorizable lanes)
        stack.iq_age_valid[lr, ef] = False
        for state, _, _ in groups:
            state.wakeup._dirty = True

    def _land_groups(self, alive: List, failures: List) -> bool:
        """Fused landing of every lane's deferred dispatch group.

        Scalar equivalent (per lane, in ``DispatchStage._flush_group``
        order): ``merged.dispatch_group``, ``iq_age.dispatch_group``,
        ``wakeup.dispatch_group`` — all with the all-non-critical fast
        path (vectorizable lanes never dispatch critical entries).
        The valid-plane snapshots for the age rows are gathered before
        any valid bit is set; all column clears precede all row
        writes, so intra-group triangles and intra-group wakeup
        producer bits come out exactly as under the scalar stores.
        Scalar ``dispatch_group``'s already-valid guard is preserved
        as one batched check over the gathered entries; an offending
        lane is failed (appended to ``failures``, ``None``-ed out of
        ``alive``) before any store lands.  Returns whether any lane
        was failed.
        """
        m = 0
        groups = []                 # (stage, state, slot, start, k)
        dead = False
        for li, lane in enumerate(alive):
            if lane is None:
                continue
            stage = lane.core.stages[_DISPATCH_S]
            g_iq = stage._g_iq
            k = len(g_iq)
            if not k:
                continue
            if k > 1 and (len(set(g_iq)) < k
                          or len(set(stage._g_rob)) < k):
                failures.append(
                    (lane, ValueError("duplicate entry in dispatch "
                                      "group"),
                     "duplicate entry in dispatch group"))
                alive[li] = None
                dead = True
                continue
            if m + k > self._dl_lanes.shape[0]:
                self._grow_dl(m + k)
            slot = lane.slot_id
            for j in range(k):
                self._dl_lanes[m + j] = slot
                self._dl_iq[m + j] = g_iq[j]
                self._dl_rob[m + j] = stage._g_rob[j]
            groups.append((stage, lane, li, m, k))
            m += k
        if not m:
            return dead
        stack = self.stack
        lr = self._dl_lanes[:m]
        iq_e = self._dl_iq[:m]
        rob_e = self._dl_rob[:m]
        # scalar dispatch_group raises before touching anything when a
        # group member's entry is still valid; one batched gather
        # checks every lane's group at once (the per-lane attribution
        # below only runs on the exceptional path)
        if (stack.iq_age_valid[lr, iq_e].any()
                or stack.rob_age_valid[lr, rob_e].any()):
            bad_iq = stack.iq_age_valid[lr, iq_e]
            bad_rob = stack.rob_age_valid[lr, rob_e]
            still = []
            for stage, lane, li, start, k in groups:
                if bad_iq[start:start + k].any() \
                        or bad_rob[start:start + k].any():
                    failures.append(
                        (lane, ValueError("dispatch group entry "
                                          "already valid"),
                         "dispatch group entry already valid"))
                    alive[li] = None
                    dead = True
                else:
                    still.append((stage, lane, li, start, k))
            if not still:
                return dead
            # re-collect the surviving groups and land them
            self._land_groups(alive, failures)
            return dead
        rows_iq = self._dl_rows_iq[:m]
        rows_rob = self._dl_rows_rob[:m]
        rows_wk = self._dl_rows_wk[:m]
        cnt = self._dl_cnt[:m]
        rdy = self._dl_rdy[:m]
        spec = self._dl_spec[:m]
        blk = self._dl_blk[:m]
        # valid snapshots (before any valid bit is set)
        np.take(stack.iq_age_valid, lr, axis=0, out=rows_iq)
        np.take(stack.rob_age_valid, lr, axis=0, out=rows_rob)
        rows_wk[:] = False
        # per-lane small work: triangles, wakeup rows, counter values
        # into the flat buffers — all O(group width) Python; the
        # per-entry counter planes land in fused scatters below
        for stage, lane, li, start, k in groups:
            g_iq = stage._g_iq
            g_rob = stage._g_rob
            for i in range(k - 1):
                rows_iq[start + i + 1:start + k, g_iq[i]] = True
                rows_rob[start + i + 1:start + k, g_rob[i]] = True
            for j, prods in enumerate(stage._g_prods):
                row = rows_wk[start + j]
                count = 0
                for producer in prods:
                    if not row[producer]:
                        row[producer] = True
                        count += 1
                cnt[start + j] = count
            mg = lane.core.state.merged
            n_spec = mg._n_spec
            for j, flag in enumerate(stage._g_spec):
                spec[start + j] = flag
                blk[start + j] = n_spec
                if flag:
                    n_spec += 1
            mg._n_spec = n_spec
            mg._dirty = True
            stage._g_rob.clear()
            stage._g_spec.clear()
            stage._g_iq.clear()
            stage._g_crit.clear()
            stage._g_prods.clear()
        # fused stores: all column clears, then all row writes, then
        # the point planes (valid flags and the per-entry counters)
        stack.iq_age_bits[lr, :, iq_e] = False
        stack.wakeup_bits[lr, :, iq_e] = False
        stack.rob_age_bits[lr, :, rob_e] = False
        stack.iq_age_bits[lr, iq_e, :] = rows_iq
        stack.wakeup_bits[lr, iq_e, :] = rows_wk
        stack.rob_age_bits[lr, rob_e, :] = rows_rob
        stack.iq_age_valid[lr, iq_e] = True
        stack.iq_age_critical[lr, iq_e] = False
        stack.wakeup_valid[lr, iq_e] = True
        stack.rob_age_valid[lr, rob_e] = True
        stack.rob_age_critical[lr, rob_e] = False
        np.equal(cnt, 0, out=rdy)
        stack.wakeup_pending[lr, iq_e] = cnt
        stack.wakeup_ready[lr, iq_e] = rdy
        stack.spec[lr, rob_e] = spec
        stack.blockers[lr, rob_e] = blk
        return dead

    # ------------------------------------------------------------------
    # REPRO_CHECK cross-checks
    # ------------------------------------------------------------------

    def _check_select(self, core, oldest: int) -> None:
        """Cross-check the select kernel against the scalar policy.

        Runs ``AgeSelect.select`` with a cloned rng and the stamp-based
        ``_grant_age`` with another clone: the grant lists *and* the
        resulting rng states must match, proving the stamp-order
        shortcut and its entropy consumption identical to the matrix
        path for this cycle.
        """
        s = core.state
        stage = core.stages[_ISSUE_S]
        clone_a = random.Random()
        clone_a.setstate(s.rng.getstate())
        clone_b = random.Random()
        clone_b.setstate(s.rng.getstate())
        avail = s.fupool.availability_vector()
        ctx = SelectContext(
            entries=sorted(s.ready_set),
            fu_of=stage._fu_of,
            age_of=stage._age_of,
            age_matrix=s.iq_age,
            fu_available=list(avail),
            width=s.config.issue_width,
            rng=clone_a)
        want = s.select_policy.select(ctx)
        got = stage._grant_age(oldest, avail, rng=clone_b)
        if got != want or clone_a.getstate() != clone_b.getstate():
            raise check.CheckError(
                f"vectorized select diverged at cycle {s.cycle}: "
                f"kernel granted {got}, scalar policy granted {want} "
                f"(ready={sorted(s.ready_set)}, oldest hint={oldest})")
