"""Core configurations (paper Table 1) and policy selection.

Three sizing presets model Skylake-class ("Base"), widened ("Pro") and
ultra-wide ("Ultra") cores.  ``scheduler`` selects the Figure 14 issue
policies, ``commit`` the Figure 15 commit policies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict

from ..isa import OpClass
from ..memory import HierarchyConfig

#: Figure 14 scheduler policies.
SCHEDULERS = ("rand", "age", "mult", "orinoco", "cri", "ideal", "shift")

#: Figure 15 commit policies.
COMMITS = ("ioc", "orinoco", "vb", "vb_noecl", "br", "br_noecl",
           "spec", "spec_norob", "ecl", "rob")

#: Commit policies that reclaim ROB entries out of order.
OOO_ROB_COMMITS = frozenset({"orinoco", "br", "br_noecl", "spec", "rob"})

#: Commit policies that require counter-based register reclamation.
OOO_COMMITS = frozenset(COMMITS) - {"ioc"}


@dataclass
class CoreConfig:
    """One simulated core configuration."""

    name: str = "base"
    # widths
    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4          # IW
    commit_width: int = 4         # CW
    # structure sizes (Table 1)
    rob_size: int = 224
    iq_size: int = 97
    lq_size: int = 72
    sq_size: int = 56
    rf_size: int = 180
    store_buffer_size: int = 36
    ldt_size: int = 16
    # functional units (sums to the Table 1 FU count)
    fu_alu: int = 3
    fu_muldiv: int = 1
    fu_fpu: int = 2
    fu_load: int = 1
    fu_store: int = 1
    # front end
    frontend_depth: int = 5
    redirect_penalty: int = 10
    predictor: str = "tage"
    # policies
    scheduler: str = "age"
    commit: str = "ioc"
    #: IQ entry organization: "rand" (free list, the non-collapsible
    #: default) or "circ" (circular — Figure 1(b)'s capacity loss)
    iq_org: str = "rand"
    #: how far (in age order) commit may scan for eligible instructions;
    #: None = the unlimited commit window of Orinoco (§6.2)
    commit_depth: int = None
    #: honour DynInstr.critical tags at dispatch (CRI configurations);
    #: implied by scheduler == "cri"
    criticality: bool = False
    mem_dep_policy: str = "speculate"   # or "conservative"
    #: model wrong-path fetch/issue contention behind mispredicted
    #: branches (DESIGN.md: the substitution for execution-driven fetch)
    model_wrong_path: bool = True
    tso: bool = False
    # execution latencies per op class
    latencies: Dict[OpClass, int] = field(default_factory=lambda: {
        OpClass.INT_ALU: 1,
        OpClass.INT_MUL: 3,
        OpClass.INT_DIV: 12,
        OpClass.FP_ADD: 3,
        OpClass.FP_MUL: 4,
        OpClass.FP_DIV: 12,
        OpClass.BRANCH: 1,
        OpClass.JUMP: 1,
        OpClass.SYS: 1,
    })
    forward_latency: int = 1
    memory: HierarchyConfig = field(default_factory=HierarchyConfig)
    seed: int = 1

    def __post_init__(self):
        if self.scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}; "
                             f"choose from {SCHEDULERS}")
        if self.commit not in COMMITS:
            raise ValueError(f"unknown commit policy {self.commit!r}; "
                             f"choose from {COMMITS}")
        if self.mem_dep_policy not in ("speculate", "conservative"):
            raise ValueError(
                f"unknown mem_dep_policy {self.mem_dep_policy!r}")
        if self.iq_org not in ("rand", "circ"):
            raise ValueError(f"unknown iq_org {self.iq_org!r}")
        if self.scheduler == "cri":
            self.criticality = True

    @property
    def fu_total(self) -> int:
        return (self.fu_alu + self.fu_muldiv + self.fu_fpu + self.fu_load
                + self.fu_store)

    @property
    def rename_scheme(self) -> str:
        """Counter-based RST reclamation whenever commit is out of order."""
        return "counter" if self.commit in OOO_COMMITS else "inorder"

    @property
    def ooo_rob_release(self) -> bool:
        return self.commit in OOO_ROB_COMMITS

    def with_policies(self, scheduler: str = None, commit: str = None,
                      **overrides) -> "CoreConfig":
        """Clone with different scheduling/commit policies."""
        changes = dict(overrides)
        if scheduler is not None:
            changes["scheduler"] = scheduler
        if commit is not None:
            changes["commit"] = commit
        return dataclasses.replace(self, **changes)


def base_config(**overrides) -> CoreConfig:
    """Table 1 "Base": Skylake-class, IW/CW 4/4, ROB 224, IQ 97."""
    return dataclasses.replace(CoreConfig(name="base"), **overrides)


def pro_config(**overrides) -> CoreConfig:
    """Table 1 "Pro": IW/CW 6/6, ROB 256, IQ 160, LQ/SQ 128/72, RF 280."""
    config = CoreConfig(
        name="pro", fetch_width=6, dispatch_width=6, issue_width=6,
        commit_width=6, rob_size=256, iq_size=160, lq_size=128, sq_size=72,
        rf_size=280, fu_alu=3, fu_muldiv=1, fu_fpu=2, fu_load=1, fu_store=1)
    return dataclasses.replace(config, **overrides)


def ultra_config(**overrides) -> CoreConfig:
    """Table 1 "Ultra": IW/CW 8/8, ROB 512, IQ 224, RF 380, 11 FUs."""
    config = CoreConfig(
        name="ultra", fetch_width=8, dispatch_width=8, issue_width=8,
        commit_width=8, rob_size=512, iq_size=224, lq_size=128, sq_size=72,
        rf_size=380, fu_alu=4, fu_muldiv=1, fu_fpu=3, fu_load=2, fu_store=1,
        store_buffer_size=56)
    return dataclasses.replace(config, **overrides)


CONFIG_PRESETS = {
    "base": base_config,
    "pro": pro_config,
    "ultra": ultra_config,
}


def make_config(preset: str = "base", **overrides) -> CoreConfig:
    try:
        factory = CONFIG_PRESETS[preset]
    except KeyError as exc:
        raise ValueError(f"unknown preset {preset!r}") from exc
    return factory(**overrides)
