"""Cycle-level out-of-order core: configs, resources, stats, the core."""

from .config import (COMMITS, CONFIG_PRESETS, SCHEDULERS, CoreConfig,
                     base_config, make_config, pro_config, ultra_config)
from .core import (ENGINE_VERSION, DeadlockError, InflightOp, O3Core,
                   simulate)
from .events import (EventBus, EventRecorder, EventTail, EventType,
                     StatsSubscriber)
from .lanes import (LaneBatch, LaneCell, LaneDivergence, LaneOutcome,
                    LaneReport, lane_key)
from .pipeview import Timeline, TimelineEntry
from .resources import FUPool, FUType, fu_type_for
from .stages import PipelineState
from .stats import SimStats

__all__ = ["COMMITS", "CONFIG_PRESETS", "SCHEDULERS", "CoreConfig",
           "base_config", "make_config", "pro_config", "ultra_config",
           "Timeline", "TimelineEntry",
           "EventBus", "EventRecorder", "EventTail", "EventType",
           "StatsSubscriber",
           "LaneBatch", "LaneCell", "LaneDivergence", "LaneOutcome",
           "LaneReport", "lane_key",
           "PipelineState",
           "ENGINE_VERSION",
           "DeadlockError", "InflightOp", "O3Core", "simulate", "FUPool",
           "FUType", "fu_type_for", "SimStats"]
