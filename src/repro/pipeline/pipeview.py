"""Per-instruction pipeline timeline viewer (gem5-O3-pipeview style).

Attach a :class:`Timeline` to a core before running, then render an
ASCII timeline of each instruction's journey through the pipeline —
dispatch (``D``), issue (``I``), completion (``C``), commit (``R``).
Out-of-order commit is immediately visible as ``R`` marks out of the
staircase pattern; squashed (wrong-path or flushed) instructions are
rendered dimmed, with lowercase marks and an ``x`` at the squash.

The timeline is an ordinary :class:`~repro.pipeline.events.EventBus`
subscriber — it listens for commit and squash events, and the core
pays nothing for it when it is not attached.

    core = O3Core(trace, config)
    timeline = Timeline.attach(core)
    core.run()
    print(timeline.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class TimelineEntry:
    seq: int
    text: str
    dispatched: Optional[int]
    issued: Optional[int]
    completed: Optional[int]
    committed: Optional[int]
    squashed: bool = False
    squashed_at: Optional[int] = None


class Timeline:
    """Records committed (and squashed) instructions' stage timestamps."""

    def __init__(self, max_entries: int = 10_000):
        self.max_entries = max_entries
        self.entries: List[TimelineEntry] = []
        self.truncated = False

    @classmethod
    def attach(cls, core, max_entries: int = 10_000) -> "Timeline":
        """Subscribe a fresh timeline to ``core``'s event bus."""
        timeline = cls(max_entries)
        core.bus.attach(timeline)
        return timeline

    # -- event handlers (EventBus.attach wires these) -------------------

    def on_commit(self, ev) -> None:
        self.record(ev.op)

    def on_squash(self, ev) -> None:
        for op in ev.ops:
            self.record(op, squashed=True, cycle=ev.cycle)

    def record(self, op, squashed: bool = False,
               cycle: Optional[int] = None) -> None:
        if len(self.entries) >= self.max_entries:
            self.truncated = True
            return
        self.entries.append(TimelineEntry(
            seq=op.seq, text=str(op.dyn.opcode.mnemonic),
            dispatched=op.dispatched_at, issued=op.issued_at,
            completed=op.completed_at, committed=op.committed_at,
            squashed=squashed, squashed_at=cycle))

    # -- analysis -------------------------------------------------------

    def out_of_order_commits(self) -> int:
        """Instructions that committed before an older one did."""
        count = 0
        ordered = sorted((e for e in self.entries if not e.squashed),
                         key=lambda e: e.seq)
        for i, entry in enumerate(ordered):
            if entry.committed is None:
                continue
            for older in ordered[:i]:
                if older.committed is not None \
                        and older.committed > entry.committed:
                    count += 1
                    break
        return count

    def commit_latency(self, seq: int) -> Optional[int]:
        for entry in self.entries:
            if entry.seq == seq and entry.committed is not None \
                    and entry.dispatched is not None:
                return entry.committed - entry.dispatched
        return None

    def squashed_entries(self) -> List[TimelineEntry]:
        return [e for e in self.entries if e.squashed]

    # -- rendering ---------------------------------------------------------

    def render(self, first: Optional[int] = None, count: int = 40,
               width: int = 72) -> str:
        """ASCII timeline of ``count`` instructions starting at ``first``.

        With no ``first``, everything is eligible — including squashed
        wrong-path instructions, whose synthetic seqs are negative.
        """
        selected = sorted(self.entries, key=lambda e: e.seq)
        if first is not None:
            selected = [e for e in selected if e.seq >= first][:count]
        if not selected:
            return "(empty timeline)"
        cycles = [c for e in selected
                  for c in (e.dispatched, e.issued, e.completed,
                            e.committed, e.squashed_at)
                  if c is not None]
        if not cycles:
            return "(empty timeline)"
        start, end = min(cycles), max(cycles)
        span = max(1, end - start + 1)
        step = max(1, (span + width - 1) // width)

        def column(cycle: Optional[int]) -> Optional[int]:
            if cycle is None:
                return None
            return min(width - 1, max(0, (cycle - start) // step))

        lines = [f"cycles {start}..{end} ({step} cycles/char)  "
                 f"D=dispatch I=issue C=complete R=commit "
                 f"(dimmed lowercase + x = squashed)"]
        for entry in selected:
            row = [" "] * width
            if entry.squashed:
                marks = ((entry.dispatched, "d"), (entry.issued, "i"),
                         (entry.completed, "c"), (entry.squashed_at, "x"))
            else:
                marks = ((entry.dispatched, "D"), (entry.issued, "I"),
                         (entry.completed, "C"), (entry.committed, "R"))
            for cycle, mark in marks:
                col = column(cycle)
                if col is not None:
                    row[col] = mark
            tag = "~" if entry.squashed else " "
            lines.append(f"#{entry.seq:5d}{tag}{entry.text:6s} "
                         f"|{''.join(row)}|")
        if self.truncated:
            lines.append(f"... truncated at {self.max_entries} entries")
        return "\n".join(lines)
