"""Per-instruction pipeline timeline viewer (gem5-O3-pipeview style).

Attach a :class:`Timeline` to a core before running, then render an
ASCII timeline of each instruction's journey through the pipeline —
dispatch (``D``), issue (``I``), completion (``C``), commit (``R``).
Out-of-order commit is immediately visible as ``R`` marks out of the
staircase pattern.

    core = O3Core(trace, config)
    timeline = Timeline.attach(core)
    core.run()
    print(timeline.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class TimelineEntry:
    seq: int
    text: str
    dispatched: Optional[int]
    issued: Optional[int]
    completed: Optional[int]
    committed: Optional[int]


class Timeline:
    """Records committed instructions' stage timestamps."""

    def __init__(self, max_entries: int = 10_000):
        self.max_entries = max_entries
        self.entries: List[TimelineEntry] = []
        self.truncated = False

    @classmethod
    def attach(cls, core, max_entries: int = 10_000) -> "Timeline":
        timeline = cls(max_entries)
        core.timeline = timeline
        return timeline

    def record(self, op) -> None:
        if len(self.entries) >= self.max_entries:
            self.truncated = True
            return
        self.entries.append(TimelineEntry(
            seq=op.seq, text=str(op.dyn.opcode.mnemonic),
            dispatched=op.dispatched_at, issued=op.issued_at,
            completed=op.completed_at, committed=op.committed_at))

    # -- analysis -------------------------------------------------------

    def out_of_order_commits(self) -> int:
        """Instructions that committed before an older one did."""
        count = 0
        latest = {}
        ordered = sorted(self.entries, key=lambda e: e.seq)
        for i, entry in enumerate(ordered):
            if entry.committed is None:
                continue
            for older in ordered[:i]:
                if older.committed is not None \
                        and older.committed > entry.committed:
                    count += 1
                    break
        return count

    def commit_latency(self, seq: int) -> Optional[int]:
        for entry in self.entries:
            if entry.seq == seq and entry.committed is not None \
                    and entry.dispatched is not None:
                return entry.committed - entry.dispatched
        return None

    # -- rendering ---------------------------------------------------------

    def render(self, first: int = 0, count: int = 40,
               width: int = 72) -> str:
        """ASCII timeline of ``count`` instructions starting at ``first``."""
        selected = sorted(self.entries, key=lambda e: e.seq)
        selected = [e for e in selected if e.seq >= first][:count]
        if not selected:
            return "(empty timeline)"
        start = min(e.dispatched for e in selected
                    if e.dispatched is not None)
        end = max(e.committed for e in selected if e.committed is not None)
        span = max(1, end - start + 1)
        step = max(1, (span + width - 1) // width)

        def column(cycle: Optional[int]) -> Optional[int]:
            if cycle is None:
                return None
            return min(width - 1, (cycle - start) // step)

        lines = [f"cycles {start}..{end} ({step} cycles/char)  "
                 f"D=dispatch I=issue C=complete R=commit"]
        for entry in selected:
            row = [" "] * width
            for cycle, mark in ((entry.dispatched, "D"),
                                (entry.issued, "I"),
                                (entry.completed, "C"),
                                (entry.committed, "R")):
                col = column(cycle)
                if col is not None:
                    row[col] = mark
            lines.append(f"#{entry.seq:5d} {entry.text:6s} "
                         f"|{''.join(row)}|")
        if self.truncated:
            lines.append(f"... truncated at {self.max_entries} entries")
        return "\n".join(lines)
