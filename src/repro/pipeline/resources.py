"""Functional unit pools.

All units are fully pipelined (accept one new operation per cycle)
except dividers, which are occupied for the whole operation.

Hot-path notes: :class:`FUType` is an ``IntEnum`` (values in the
historical sort order of the old string values) so the pool and the
issue policies can keep per-type state in flat lists indexed by the
member itself — no enum hashing on the per-cycle availability and
acquire paths.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from ..isa import OpClass


class FUType(enum.IntEnum):
    # values preserve the alphabetical order of the historical string
    # values ("alu" < "fpu" < "load" < "muldiv" < "store"): MultSelect
    # sorts its per-type arbitration by .value, and the arbitration
    # order is behaviour (it decides rng consumption order)
    ALU = 0
    FPU = 1
    LOAD = 2
    MULDIV = 3
    STORE = 4


_CLASS_TO_FU = {
    OpClass.INT_ALU: FUType.ALU,
    OpClass.BRANCH: FUType.ALU,
    OpClass.JUMP: FUType.ALU,
    OpClass.SYS: FUType.ALU,
    OpClass.INT_MUL: FUType.MULDIV,
    OpClass.INT_DIV: FUType.MULDIV,
    OpClass.FP_ADD: FUType.FPU,
    OpClass.FP_MUL: FUType.FPU,
    OpClass.FP_DIV: FUType.FPU,
    OpClass.LOAD: FUType.LOAD,
    OpClass.STORE: FUType.STORE,
}

#: Op classes whose unit stays busy for the whole operation.
_UNPIPELINED = {OpClass.INT_DIV, OpClass.FP_DIV}


def fu_type_for(op_class: OpClass) -> FUType:
    return _CLASS_TO_FU[op_class]


def is_unpipelined(op_class: OpClass) -> bool:
    return op_class in _UNPIPELINED


class FUPool:
    """Per-type unit availability within a cycle and across cycles."""

    def __init__(self, counts: Dict[FUType, int]):
        self.counts = dict(counts)
        self._counts: List[int] = [0] * len(FUType)
        for fu, n in counts.items():
            self._counts[fu] = n
        # busy-until cycles for unpipelined units, per type
        self._busy_until: List[List[int]] = [[] for _ in FUType]
        self._issued_this_cycle: List[int] = [0] * len(FUType)
        self._cycle = -1
        # all-free fast path: most availability_vector() calls happen
        # before anything issued this cycle and with no divide in
        # flight, where the answer is just the configured counts.
        # Callers never mutate the returned vector (the policies copy
        # before decrementing), so one shared list serves them all.
        self._full: List[int] = list(self._counts)
        self._issued_total = 0
        self._n_busy = 0

    def begin_cycle(self, cycle: int) -> None:
        self._cycle = cycle
        issued = self._issued_this_cycle
        for fu in range(len(issued)):
            issued[fu] = 0
        self._issued_total = 0
        if self._n_busy:
            n = 0
            for busy in self._busy_until:
                # almost always empty (only in-flight divides park here)
                if busy:
                    busy[:] = [until for until in busy if until > cycle]
                    n += len(busy)
            self._n_busy = n

    def available(self, fu: FUType) -> int:
        """Units of this type that can accept an operation this cycle."""
        blocked = len(self._busy_until[fu]) + self._issued_this_cycle[fu]
        return max(0, self._counts[fu] - blocked)

    def acquire_fu(self, fu: FUType, latency: int,
                   unpipelined: bool) -> bool:
        """Claim a pre-resolved unit type; False when none free."""
        if self.available(fu) <= 0:
            return False
        self._issued_this_cycle[fu] += 1
        self._issued_total += 1
        if unpipelined:
            self._busy_until[fu].append(self._cycle + latency)
            self._n_busy += 1
        return True

    def acquire(self, op_class: OpClass, latency: int) -> bool:
        """Claim a unit for an op of ``op_class``; False when none free."""
        return self.acquire_fu(fu_type_for(op_class), latency,
                               op_class in _UNPIPELINED)

    def all_free(self) -> bool:
        """Nothing issued this cycle and no unpipelined op in flight —
        every unit of every type can accept an operation."""
        return not self._issued_total and not self._n_busy

    def availability_vector(self) -> List[int]:
        """Per-type free-unit counts, indexed by :class:`FUType`.

        Callers must not mutate the result: the all-free fast path
        returns a shared vector (the select policies copy before
        decrementing, per their contract).
        """
        if not self._issued_total and not self._n_busy:
            return self._full
        return [self.available(fu) for fu in FUType]
