"""Functional unit pools.

All units are fully pipelined (accept one new operation per cycle)
except dividers, which are occupied for the whole operation.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from ..isa import OpClass


class FUType(enum.Enum):
    ALU = "alu"
    MULDIV = "muldiv"
    FPU = "fpu"
    LOAD = "load"
    STORE = "store"


_CLASS_TO_FU = {
    OpClass.INT_ALU: FUType.ALU,
    OpClass.BRANCH: FUType.ALU,
    OpClass.JUMP: FUType.ALU,
    OpClass.SYS: FUType.ALU,
    OpClass.INT_MUL: FUType.MULDIV,
    OpClass.INT_DIV: FUType.MULDIV,
    OpClass.FP_ADD: FUType.FPU,
    OpClass.FP_MUL: FUType.FPU,
    OpClass.FP_DIV: FUType.FPU,
    OpClass.LOAD: FUType.LOAD,
    OpClass.STORE: FUType.STORE,
}

#: Op classes whose unit stays busy for the whole operation.
_UNPIPELINED = {OpClass.INT_DIV, OpClass.FP_DIV}


def fu_type_for(op_class: OpClass) -> FUType:
    return _CLASS_TO_FU[op_class]


class FUPool:
    """Per-type unit availability within a cycle and across cycles."""

    def __init__(self, counts: Dict[FUType, int]):
        self.counts = dict(counts)
        # busy-until cycles for unpipelined units, per type
        self._busy_until: Dict[FUType, List[int]] = {
            fu: [] for fu in self.counts}
        self._issued_this_cycle: Dict[FUType, int] = {}
        self._cycle = -1

    def begin_cycle(self, cycle: int) -> None:
        self._cycle = cycle
        self._issued_this_cycle = {fu: 0 for fu in self.counts}
        for fu, busy in self._busy_until.items():
            self._busy_until[fu] = [until for until in busy if until > cycle]

    def available(self, fu: FUType) -> int:
        """Units of this type that can accept an operation this cycle."""
        total = self.counts.get(fu, 0)
        blocked = len(self._busy_until[fu]) + self._issued_this_cycle[fu]
        return max(0, total - blocked)

    def acquire(self, op_class: OpClass, latency: int) -> bool:
        """Claim a unit for an op of ``op_class``; False when none free."""
        fu = fu_type_for(op_class)
        if self.available(fu) <= 0:
            return False
        self._issued_this_cycle[fu] += 1
        if op_class in _UNPIPELINED:
            self._busy_until[fu].append(self._cycle + latency)
        return True

    def availability_vector(self) -> Dict[FUType, int]:
        return {fu: self.available(fu) for fu in self.counts}
