"""Memory-order unit: store resolution, disambiguation, the SB drain.

Owns the interactions between the LSQ's memory disambiguation matrix
and the rest of the pipeline: store address resolution (and the
violation/replay/squash fallout), load disambiguation, oracle load
replays, and the one-per-cycle store-buffer drain through the L1 write
port.
"""

from __future__ import annotations

import heapq

from ..events import EventType, MatrixEvent, MemEvent, ReplayEvent
from .squash import SquashUnit
from .state import InflightOp, PipelineState

_MEM = EventType.MEM
_MATRIX = EventType.MATRIX
_REPLAY = EventType.REPLAY


class MemoryStage:
    """Store-buffer drain tick plus memory-ordering services."""

    def __init__(self, state: PipelineState, squash: SquashUnit):
        self.s = state
        self.squash = squash

    def tick(self, cycle: int) -> None:
        """One store per cycle leaves the SB through the L1 write port;
        misses ride the MSHRs (write-allocate) instead of serializing."""
        s = self.s
        if cycle < s.sb_busy_until or not s.lsq.store_buffer:
            return
        head = s.lsq.store_buffer[0]
        latency = s.hierarchy.store(head.addr, cycle)
        if latency is None:
            return                          # MSHRs full; retry next cycle
        s.lsq.drain_store()
        s.sb_busy_until = cycle + 1
        if s.bus.live[_MEM]:
            s.bus.publish(MemEvent(cycle, "drain", head.seq))

    # -- store resolution ----------------------------------------------

    def finish_store_addr(self, op: InflightOp, cycle: int) -> None:
        """Store address generation finished: translate and resolve."""
        s = self.s
        dyn = op.dyn
        op.translated = True
        if dyn.fault:
            op.fault_pending = True
            return
        op.addr_resolved = True
        s.stats.mdm_ops += 1
        bus = s.bus
        if bus.live[_MATRIX]:
            bus.publish(MatrixEvent(cycle, "mdm", "op"))
        violated = s.lsq.store_resolve(op.seq, dyn.addr)
        s.resolve_spec(op)
        if s.mem_wait:
            s.mem_retry.extend(w for w in s.mem_wait if w.seq in s.ops)
            s.mem_wait = []
        if violated:
            s.stats.mem_order_violations += 1
            if bus.live[_MEM]:
                bus.publish(MemEvent(cycle, "violation", op.seq))
            if s.commit_policy.oracle_branches and \
                    s.commit_policy.name.startswith("spec"):
                # Cherry oracle: no rollback cost; replay only the loads
                for seq in violated:
                    self.replay_load(s.ops[seq], cycle)
                s.stats.load_replays += len(violated)
            else:
                for seq in violated:
                    victim = s.ops.get(seq)
                    if victim is not None:
                        s.violated_load_pcs.add(victim.dyn.pc)
                self.squash.squash_from(min(violated), cycle,
                                        reason="mem_order")
        else:
            self.recheck_loads()

    def recheck_loads(self) -> None:
        """A store resolved: loads whose MDM row drained become
        non-speculative."""
        s = self.s
        for entry in list(s.lsq.lq):
            load = s.lsq.lq.get(entry)
            if load is None:
                continue
            op = s.ops.get(load.seq)
            if op is not None and not op.mem_nonspec:
                self.try_disambiguate(op)

    def try_disambiguate(self, op: InflightOp) -> None:
        s = self.s
        if op.mem_nonspec or op.fault_pending or not op.translated:
            return
        if not s.lsq.has_load(op.seq):
            return
        if s.lsq.load_is_nonspeculative(op.seq):
            op.mem_nonspec = True
            s.resolve_spec(op)

    def replay_load(self, op: InflightOp, cycle: int) -> None:
        """Re-execute a violated load in place (oracle policies only)."""
        s = self.s
        op.exec_token += 1
        op.completed = False
        op.performed = False
        s.rename.producer_replayed(op.rename_rec)
        latency = s.hierarchy.load(op.dyn.addr, cycle)
        if latency is None:
            latency = s.config.memory.l1_latency + 2
        heapq.heappush(s.completion_heap,
                       (cycle + latency, op.seq, op.exec_token))
        if s.bus.live[_REPLAY]:
            s.bus.publish(ReplayEvent(cycle, op.seq))
