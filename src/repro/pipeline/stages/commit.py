"""Commit stage: retirement, resource release, precise exceptions.

The configured :class:`~repro.commit.CommitPolicy` decides *which*
completed instructions retire each cycle (in order, merged-matrix out
of order, validation-buffer, …); this stage supplies the mechanisms the
policies compose: local commit legality, retirement bookkeeping,
in-order / at-completion / deferred resource release, zombie tracking
and the precise-exception flush.

Commit policies receive the :class:`~repro.pipeline.core.O3Core`
facade (``self.core``), which forwards ``retire`` and the legality
checks back here — so existing policies and tests keep working
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..events import CommitEvent, CommitStall, EventType, MemEvent
from .squash import SquashUnit
from .state import InflightOp, PipelineState

_COMMIT = EventType.COMMIT
_MEM = EventType.MEM
_STALL = EventType.STALL


class CommitStage:
    """Retires instructions and releases their resources."""

    def __init__(self, state: PipelineState, squash: SquashUnit):
        self.s = state
        self.squash = squash
        self._grants = np.empty(state.config.rob_size, dtype=bool)
        #: the O3Core facade, wired by the driver after construction;
        #: commit policies and the exception flush are invoked through
        #: it so monkeypatched cores keep intercepting them.
        self.core = None

    def tick(self, cycle: int) -> None:
        s = self.s
        committed = s.commit_policy.commit(self.core, cycle)
        if committed:
            s.progress_cycle = cycle
        elif s.window:
            s.stats.commit_stall_cycles += 1
            sampled = None
            # sample the §2.2 statistic to keep the simulator fast
            if s.stats.commit_stall_cycles % 8 == 0:
                sampled = self._account_commit_ready(weight=8)
            if s.bus.live[_STALL]:
                if sampled is not None:
                    ready_not_head, rob_full = sampled
                    s.bus.publish(CommitStall(cycle, 8, ready_not_head,
                                              rob_full))
                else:
                    s.bus.publish(CommitStall(cycle))
            head = next(iter(s.window.values()))
            if head.fault_pending:
                self.core._exception_flush(head, cycle)
        self.release_inorder()

    def _account_commit_ready(self, weight: int = 1):
        """§2.2 statistic: completed+safe instructions stuck behind the
        head during commit-stall cycles (sampled, hence ``weight``).
        Returns ``(ready_not_head, rob_full)`` when evaluated."""
        s = self.s
        if not s.commit_candidates:
            return None
        completed = s.rob_scratch
        completed[:] = False
        head_seq = next(iter(s.window))
        head_entry = s.window[head_seq].rob_entry
        for seq in s.commit_candidates:
            op = s.window.get(seq)
            if op is not None:
                completed[op.rob_entry] = True
        grants = s.merged.can_commit(completed, out=self._grants)
        grants[head_entry] = False
        rob_full = s.rob_queue.is_full()
        if rob_full:
            s.stats.rob_full_commit_stall_cycles += weight
        ready_not_head = bool(grants.any())
        if ready_not_head:
            s.stats.stalled_commit_ready_cycles += weight
            if rob_full:
                s.stats.full_window_commit_ready_cycles += weight
        return ready_not_head, rob_full

    # -- commit legality (queried by the policies) ---------------------

    def locally_committable(self, op: InflightOp, ecl: bool,
                            ignore_global: bool = False) -> bool:
        """Local commit conditions (completion, replay, store order)."""
        s = self.s
        if op.wrong_path:
            return False
        if op.fault_pending and not ignore_global:
            return False
        dyn = op.dyn
        if dyn.is_load:
            if not (op.translated and op.mem_nonspec):
                return False
            return op.completed or ecl
        if dyn.is_store:
            if not op.completed:
                return False
            if s.lsq.oldest_store_seq() != op.seq:
                return False
            return s.lsq.can_commit_store()
        return op.completed

    def vb_committable(self, op: InflightOp, ecl: bool) -> bool:
        """Validation-Buffer retirement: non-speculative, possibly
        incomplete (post-commit execution)."""
        if op.wrong_path or op.fault_pending:
            return False
        dyn = op.dyn
        if dyn.is_branch:
            return op.completed
        if dyn.is_load or dyn.is_store:
            return self.locally_committable(op, ecl)
        return True

    # -- retirement ----------------------------------------------------

    def retire(self, op: InflightOp, cycle: int,
               zombie: bool = False) -> None:
        """Remove ``op`` from the ROB and release resources per policy."""
        s = self.s
        op.committed = True
        op.committed_at = cycle
        del s.window[op.seq]
        s.commit_candidates.discard(op.seq)
        s.rob_queue.free(op.rob_entry)
        s.merged.remove(op.rob_entry)
        s.retired_total += 1
        s.stats.committed += 1
        s.progress_cycle = cycle
        early_load = op.dyn.is_load and not op.performed
        if early_load:
            s.stats.early_committed_loads += 1
        if zombie:
            op.zombie = True
            s.zombies[op.seq] = op
            s.stats.zombie_commits += 1
        if s.bus.live[_COMMIT]:
            s.bus.publish(CommitEvent(cycle, op, zombie, early_load))
        if zombie:
            return
        if s.commit_policy.defer_release_inorder:
            s.pending_release[op.seq] = op
        elif s.commit_policy.release_at_completion:
            # registers / LQ were released at completion; stores still
            # need their in-order drain into the store buffer
            self.release_resources(op)
        else:
            self.release_resources(op)

    def release_resources(self, op: InflightOp) -> None:
        s = self.s
        if not op.resources_released:
            op.resources_released = True
            s.rename.writer_committed(op.rename_rec)
            if op.dyn.is_load:
                self._commit_load(op)
            elif op.dyn.is_store:
                s.lsq.commit_store(op.seq)
        self.forget(op)

    def _commit_load(self, op: InflightOp) -> None:
        """Release a committing load's LQ entry, reporting the release
        on the event bus — ``lockdown`` if a §3.3 lockdown transferred
        to the LDT, plain ``lqfree`` otherwise.  The verification
        witness keys its TSO protection window on this moment: a load
        is snoop-protected exactly while it holds its LQ entry, which
        for deferred-release policies outlasts the commit event."""
        s = self.s
        took = s.lsq.commit_load(op.seq)
        if s.bus.live[_MEM]:
            s.bus.publish(MemEvent(s.cycle, "lockdown" if took else "lqfree",
                                   op.seq))

    def forget(self, op: InflightOp) -> None:
        if op.completed:
            self.s.ops.pop(op.seq, None)

    def release_inorder(self) -> None:
        """Deferred releases for the ROB-entries-only-OoO policy."""
        s = self.s
        if not s.pending_release:
            return
        oldest_uncommitted = next(iter(s.window), None)
        for seq in sorted(s.pending_release):
            if oldest_uncommitted is not None and seq > oldest_uncommitted:
                break
            self.release_resources(s.pending_release.pop(seq))

    def early_release(self, op: InflightOp) -> None:
        """Cherry-style recycling of registers and LQ entries at
        completion time, ahead of commit.  Stores are excluded — they
        must drain into the store buffer in order, at commit."""
        s = self.s
        if op.resources_released or op.dyn.is_store:
            return
        op.resources_released = True
        s.rename.writer_committed(op.rename_rec)
        if op.dyn.is_load:
            # the checkpoint oracle absorbs any replay risk left
            if not op.mem_nonspec:
                op.mem_nonspec = True
                s.resolve_spec(op)
            self._commit_load(op)

    def finish_zombie(self, op: InflightOp) -> None:
        """A committed-incomplete (VB/ECL) instruction finished its
        post-commit execution: release what was withheld."""
        s = self.s
        s.zombies.pop(op.seq, None)
        if not op.resources_released:
            op.resources_released = True
            s.rename.writer_committed(op.rename_rec)
            if op.dyn.is_load:
                self._commit_load(op)
        s.ops.pop(op.seq, None)

    def exception_flush(self, op: InflightOp, cycle: int) -> None:
        """Precise exception: every older instruction has committed;
        squash the faulting instruction and everything younger, then
        resume fetch past it (the handler itself is not simulated)."""
        s = self.s
        s.stats.exceptions += 1
        s.skipped_faults += 1
        self.squash.squash_from(op.seq, cycle, resume_after=True,
                                reason="exception")
        s.progress_cycle = cycle
