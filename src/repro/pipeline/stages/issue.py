"""Issue stage: arbitrate the ready set and hand winners to execute.

The configured :class:`~repro.scheduler.SelectPolicy` sees the ready
IQ entries, the per-FU-type availability and the issue width, and
grants up to IW instructions (the paper's Figure 13/14 policies).
Granted instructions leave the IQ — their wakeup column broadcasts,
converting positional dependents to completion counters — and begin
execution.
"""

from __future__ import annotations

import heapq

import numpy as np

from ...scheduler import SelectContext
from ..events import EventType, IssueEvent, SelectEvent
from .execute import ExecuteStage
from .state import InflightOp, PipelineState

_ISSUE = EventType.ISSUE
_SELECT = EventType.SELECT


class IssueStage:
    """Select and issue from the IQ each cycle."""

    def __init__(self, state: PipelineState, execute: ExecuteStage):
        self.s = state
        self.execute = execute

    def tick(self, cycle: int) -> None:
        s = self.s
        while s.wp_ready and s.wp_ready[0][0] <= cycle:
            _, seq = heapq.heappop(s.wp_ready)
            op = s.ops.get(seq)
            if op is not None and op.in_iq:
                s.ready_set.add(op.iq_entry)
        if not s.ready_set:
            return
        if len(s.ready_set) > s.config.issue_width:
            s.stats.ready_excess_cycles += 1
        ctx = SelectContext(
            entries=sorted(s.ready_set),
            fu_of=lambda e: s.iq_ops[e].fu,
            age_of=lambda e: s.iq_ops[e].dispatch_stamp,
            age_matrix=s.iq_age,
            fu_available=s.fupool.availability_vector(),
            width=s.config.issue_width,
            rng=s.rng)
        s.stats.iq_select_ops += 1
        bus = s.bus
        if bus.live[_SELECT]:
            bus.publish(SelectEvent(cycle, len(s.ready_set),
                                    s.config.issue_width))
        granted = s.select_policy.select(ctx)
        for entry in granted:
            op = s.iq_ops[entry]
            latency = s.config.latencies.get(op.dyn.op_class, 1)
            if not s.fupool.acquire(op.dyn.op_class, latency):
                continue        # should not happen; be safe
            self._leave_iq(op)
            if not op.wrong_path:
                s.rename.operands_read(op.rename_rec)
            op.issued_at = cycle
            s.stats.issued += 1
            if bus.live[_ISSUE]:
                bus.publish(IssueEvent(cycle, op))
            self.execute.begin(op, cycle)

    def _leave_iq(self, op: InflightOp) -> None:
        s = self.s
        entry = op.iq_entry
        # wakeup broadcast: clear this producer's column.  Dependents
        # whose rows drain switch to waiting on the value itself (the
        # completion counter models the latency-delayed broadcast).
        for dep_entry in np.flatnonzero(s.wakeup.matrix.column(entry)):
            dep = s.iq_ops.get(int(dep_entry))
            if dep is None:
                continue
            dep.producers_remaining += 1
            op.dependents.append((dep, "op"))
        s.wakeup.issue([entry])
        s.stats.wakeup_ops += 1
        s.iq_queue.free(entry)
        s.iq_age.remove(entry)
        s.ready_set.discard(entry)
        del s.iq_ops[entry]
        op.in_iq = False
        op.iq_entry = None
