"""Issue stage: arbitrate the ready set and hand winners to execute.

The configured :class:`~repro.scheduler.SelectPolicy` sees the ready
IQ entries, the per-FU-type availability and the issue width, and
grants up to IW instructions (the paper's Figure 13/14 policies).
Granted instructions leave the IQ — their wakeup column broadcasts,
converting positional dependents to completion counters — and begin
execution.

The wakeup broadcast is batched: one column gather covers every
instruction issued this cycle (a dependent waiting on several of them
is walked once, not once per producer), and all issued columns clear
in a single fancy-indexed store.  The conversion hand-off is one-way —
this stage only *increments* completion counters; the writeback walk
(:meth:`WritebackStage.complete`) is the sole waker that decrements
them and re-checks readiness, so no dependent is ever woken twice.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ...scheduler import AgeSelect, SelectContext
from ..events import EventType, IssueEvent, SelectEvent
from .execute import ExecuteStage
from .state import InflightOp, PipelineState

_ISSUE = EventType.ISSUE
_SELECT = EventType.SELECT


class IssueStage:
    """Select and issue from the IQ each cycle."""

    def __init__(self, state: PipelineState, execute: ExecuteStage):
        self.s = state
        self.execute = execute
        self._issued: List[InflightOp] = []
        # prebound context accessors (iq_ops is mutated in place, never
        # rebound, so closing over it once is safe)
        iq_ops = state.iq_ops
        self._fu_of = lambda entry: iq_ops[entry].fu
        self._age_of = lambda entry: iq_ops[entry].dispatch_stamp
        # direct-grant fast path eligibility: for the stock AGE policy
        # without criticality the matrix oldest is exactly the
        # min-dispatch-stamp ready entry (dispatch order == age order),
        # so small ready sets can be granted without building a
        # SelectContext or touching the matrix.  Bit-exact: the grant
        # list and the rng entropy consumed are identical to
        # AgeSelect.select (a shuffle of < 2 elements consumes none).
        self._age_fast = (type(state.select_policy) is AgeSelect
                          and not state.config.criticality)
        # cross-lane fused wakeup broadcast (repro.pipeline.
        # vectorstages): with ``defer_broadcast`` the issued entries
        # collect in ``deferred`` and the vector engine performs every
        # lane's column clears / pending decrements in one batched
        # store over the 3-D stack (before any dispatch reuses a freed
        # entry; nothing else in this lane's tick reads the wakeup
        # planes of issued entries)
        self.defer_broadcast = False
        self.deferred: List[int] = []

    def drain_wp(self, cycle: int) -> None:
        """Move due wrong-path instructions into the ready set."""
        s = self.s
        while s.wp_ready and s.wp_ready[0][0] <= cycle:
            _, seq = heapq.heappop(s.wp_ready)
            op = s.ops.get(seq)
            if op is not None and op.in_iq:
                s.ready_set.add(op.iq_entry)

    def tick(self, cycle: int) -> None:
        s = self.s
        self.drain_wp(cycle)
        ready = s.ready_set
        if not ready:
            return
        width = s.config.issue_width
        if len(ready) > width:
            s.stats.ready_excess_cycles += 1
        bus = s.bus
        if self._age_fast and len(ready) <= width \
                and s.fupool.all_free():
            # satellite fast path: grant directly, skipping the
            # SelectContext build and the matrix select
            s.stats.iq_select_ops += 1
            if bus.live[_SELECT]:
                bus.publish(SelectEvent(cycle, len(ready), width))
            if len(ready) == 1:
                entry = next(iter(ready))
                avail = s.fupool.availability_vector()
                granted = [entry] if avail[s.iq_ops[entry].fu] > 0 \
                    else []
            else:
                iq_ops = s.iq_ops
                oldest = min(ready,
                             key=lambda e: iq_ops[e].dispatch_stamp)
                granted = self._grant_age(oldest,
                                          s.fupool.availability_vector())
        else:
            ctx = SelectContext(
                entries=sorted(ready),
                fu_of=self._fu_of,
                age_of=self._age_of,
                age_matrix=s.iq_age,
                fu_available=s.fupool.availability_vector(),
                width=width,
                rng=s.rng)
            s.stats.iq_select_ops += 1
            if bus.live[_SELECT]:
                bus.publish(SelectEvent(cycle, len(ready), width))
            granted = s.select_policy.select(ctx)
        self.issue_granted(granted, cycle)

    def tick_vec(self, cycle: int, oldest: int) -> None:
        """Issue tick for a vector-engine lane.

        The cross-lane select kernel already computed this lane's
        matrix-oldest ready entry (``oldest``; meaningless when the
        ready set is empty — guarded here).  The wrong-path drain ran
        in the engine's pre-pass.  Only valid for lanes passing
        :func:`~repro.pipeline.vectorstages.lane_vectorizable`.
        """
        s = self.s
        ready = s.ready_set
        if not ready:
            return
        width = s.config.issue_width
        if len(ready) > width:
            s.stats.ready_excess_cycles += 1
        s.stats.iq_select_ops += 1
        granted = self._grant_age(oldest, s.fupool.availability_vector())
        self.issue_granted(granted, cycle)

    def _grant_age(self, oldest: int, avail, rng=None) -> List[int]:
        """AGE grant from the precomputed oldest ready entry.

        Replicates ``AgeSelect.select`` + ``_fill_greedy`` exactly —
        grant order, FU feasibility, and rng entropy included — with
        the matrix sense replaced by the stamp-derived ``oldest``.
        ``rng`` overrides the state rng (the ``REPRO_CHECK`` select
        cross-check passes clones).
        """
        s = self.s
        if rng is None:
            rng = s.rng
        iq_ops = s.iq_ops
        granted: List[int] = []
        if avail[iq_ops[oldest].fu] > 0:
            granted.append(oldest)
            rest = [e for e in sorted(s.ready_set) if e != oldest]
        else:
            rest = sorted(s.ready_set)
        if len(rest) > 1:
            # a shuffle of < 2 elements consumes no rng entropy, so
            # skipping the call is bit-exact
            rng.shuffle(rest)
        avail = list(avail)
        if granted:
            avail[iq_ops[oldest].fu] -= 1
        width = s.config.issue_width
        for entry in rest:
            if len(granted) >= width:
                break
            fu = iq_ops[entry].fu
            if avail[fu] > 0:
                granted.append(entry)
                avail[fu] -= 1
        return granted

    def issue_granted(self, granted: List[int], cycle: int) -> None:
        """Common tail: acquire FUs, leave the IQ, begin execution."""
        s = self.s
        issued = self._issued
        issued.clear()
        fupool = s.fupool
        iq_ops = s.iq_ops
        for entry in granted:
            op = iq_ops[entry]
            if not fupool.acquire_fu(op.fu, op.latency, op.unpipelined):
                continue        # should not happen; be safe
            issued.append(op)
        if not issued:
            return
        self._leave_iq(issued)
        bus = s.bus
        live_issue = bus.live[_ISSUE]
        operands_read = s.rename.operands_read
        begin = self.execute.begin
        stats = s.stats
        for op in issued:
            if not op.wrong_path:
                operands_read(op.rename_rec)
            op.issued_at = cycle
            stats.issued += 1
            if live_issue:
                bus.publish(IssueEvent(cycle, op))
            begin(op, cycle)
        issued.clear()

    def _leave_iq(self, issued: List[InflightOp]) -> None:
        s = self.s
        iq_ops = s.iq_ops
        bits = s.wakeup.matrix.bits
        # wakeup broadcast: clear the issued producers' columns.
        # Dependents whose rows drain switch to waiting on the value
        # itself (the completion counter models the latency-delayed
        # broadcast).  One batched column gather walks every dependent
        # of the whole issue group at once.
        entries = [op.iq_entry for op in issued]
        if len(issued) == 1:
            op = issued[0]
            for dep_entry in np.flatnonzero(bits[:, entries[0]]):
                dep = iq_ops.get(int(dep_entry))
                if dep is None:
                    continue
                dep.producers_remaining += 1
                op.dependents.append((dep, "op"))
        else:
            block = bits[:, entries]
            for dep_entry in np.flatnonzero(block.any(axis=1)):
                d = int(dep_entry)
                dep = iq_ops.get(d)
                if dep is None:
                    continue
                row = block[d]
                for j, op in enumerate(issued):
                    if row[j]:
                        dep.producers_remaining += 1
                        op.dependents.append((dep, "op"))
        free = s.iq_queue.free
        discard = s.ready_set.discard
        if self.defer_broadcast:
            # the vector engine's broadcast kernel performs both the
            # wakeup column clears and the age-matrix valid clears for
            # every lane's issued entries in fused stores
            self.deferred.extend(entries)
            for op in issued:
                entry = op.iq_entry
                free(entry)
                discard(entry)
                del iq_ops[entry]
                op.in_iq = False
                op.iq_entry = None
        else:
            s.wakeup.issue(entries)
            remove = s.iq_age.remove
            for op in issued:
                entry = op.iq_entry
                free(entry)
                remove(entry)
                discard(entry)
                del iq_ops[entry]
                op.in_iq = False
                op.iq_entry = None
        s.stats.wakeup_ops += len(issued)
