"""Issue stage: arbitrate the ready set and hand winners to execute.

The configured :class:`~repro.scheduler.SelectPolicy` sees the ready
IQ entries, the per-FU-type availability and the issue width, and
grants up to IW instructions (the paper's Figure 13/14 policies).
Granted instructions leave the IQ — their wakeup column broadcasts,
converting positional dependents to completion counters — and begin
execution.

The wakeup broadcast is batched: one column gather covers every
instruction issued this cycle (a dependent waiting on several of them
is walked once, not once per producer), and all issued columns clear
in a single fancy-indexed store.  The conversion hand-off is one-way —
this stage only *increments* completion counters; the writeback walk
(:meth:`WritebackStage.complete`) is the sole waker that decrements
them and re-checks readiness, so no dependent is ever woken twice.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ...scheduler import SelectContext
from ..events import EventType, IssueEvent, SelectEvent
from .execute import ExecuteStage
from .state import InflightOp, PipelineState

_ISSUE = EventType.ISSUE
_SELECT = EventType.SELECT


class IssueStage:
    """Select and issue from the IQ each cycle."""

    def __init__(self, state: PipelineState, execute: ExecuteStage):
        self.s = state
        self.execute = execute
        self._issued: List[InflightOp] = []
        # prebound context accessors (iq_ops is mutated in place, never
        # rebound, so closing over it once is safe)
        iq_ops = state.iq_ops
        self._fu_of = lambda entry: iq_ops[entry].fu
        self._age_of = lambda entry: iq_ops[entry].dispatch_stamp

    def tick(self, cycle: int) -> None:
        s = self.s
        while s.wp_ready and s.wp_ready[0][0] <= cycle:
            _, seq = heapq.heappop(s.wp_ready)
            op = s.ops.get(seq)
            if op is not None and op.in_iq:
                s.ready_set.add(op.iq_entry)
        if not s.ready_set:
            return
        if len(s.ready_set) > s.config.issue_width:
            s.stats.ready_excess_cycles += 1
        ctx = SelectContext(
            entries=sorted(s.ready_set),
            fu_of=self._fu_of,
            age_of=self._age_of,
            age_matrix=s.iq_age,
            fu_available=s.fupool.availability_vector(),
            width=s.config.issue_width,
            rng=s.rng)
        s.stats.iq_select_ops += 1
        bus = s.bus
        if bus.live[_SELECT]:
            bus.publish(SelectEvent(cycle, len(s.ready_set),
                                    s.config.issue_width))
        granted = s.select_policy.select(ctx)
        issued = self._issued
        issued.clear()
        fupool = s.fupool
        for entry in granted:
            op = s.iq_ops[entry]
            if not fupool.acquire_fu(op.fu, op.latency, op.unpipelined):
                continue        # should not happen; be safe
            issued.append(op)
        if not issued:
            return
        self._leave_iq(issued)
        for op in issued:
            if not op.wrong_path:
                s.rename.operands_read(op.rename_rec)
            op.issued_at = cycle
            s.stats.issued += 1
            if bus.live[_ISSUE]:
                bus.publish(IssueEvent(cycle, op))
            self.execute.begin(op, cycle)
        issued.clear()

    def _leave_iq(self, issued: List[InflightOp]) -> None:
        s = self.s
        iq_ops = s.iq_ops
        bits = s.wakeup.matrix.bits
        # wakeup broadcast: clear the issued producers' columns.
        # Dependents whose rows drain switch to waiting on the value
        # itself (the completion counter models the latency-delayed
        # broadcast).  One batched column gather walks every dependent
        # of the whole issue group at once.
        entries = [op.iq_entry for op in issued]
        if len(issued) == 1:
            op = issued[0]
            for dep_entry in np.flatnonzero(bits[:, entries[0]]):
                dep = iq_ops.get(int(dep_entry))
                if dep is None:
                    continue
                dep.producers_remaining += 1
                op.dependents.append((dep, "op"))
        else:
            block = bits[:, entries]
            for dep_entry in np.flatnonzero(block.any(axis=1)):
                d = int(dep_entry)
                dep = iq_ops.get(d)
                if dep is None:
                    continue
                row = block[d]
                for j, op in enumerate(issued):
                    if row[j]:
                        dep.producers_remaining += 1
                        op.dependents.append((dep, "op"))
        s.wakeup.issue(entries)
        s.stats.wakeup_ops += len(issued)
        for op in issued:
            entry = op.iq_entry
            s.iq_queue.free(entry)
            s.iq_age.remove(entry)
            s.ready_set.discard(entry)
            del iq_ops[entry]
            op.in_iq = False
            op.iq_entry = None
