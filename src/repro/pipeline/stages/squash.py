"""Squash unit: flush wrong-path state and roll the machine back.

Not a pipeline stage (it has no ``tick``) but a service shared by
several: writeback squashes on branch mispredicts, the memory unit on
ordering violations, commit on precise exceptions.  Every flush
publishes a :class:`~repro.pipeline.events.SquashEvent` naming its
victims, so timeline viewers can render wrong-path work distinctly.
"""

from __future__ import annotations

from collections import deque

from ..events import EventType, SquashEvent
from .state import InflightOp, PipelineState

_SQUASH = EventType.SQUASH


class SquashUnit:
    """Rollback machinery for mispredicts, violations and exceptions."""

    def __init__(self, state: PipelineState):
        self.s = state

    def squash_wrong_path(self, cycle: int) -> None:
        """The stalled branch resolved: every wrong-path instruction in
        the machine is squashed."""
        s = self.s
        victims = [op for op in s.ops.values() if op.wrong_path]
        for op in victims:
            op.exec_token += 1
            if op.in_iq:
                self.leave_iq_squash(op)
            s.rob_queue.free(op.rob_entry)
            s.merged.remove(op.rob_entry)
            s.window.pop(op.seq, None)
            s.ops.pop(op.seq, None)
        s.wp_ready = []
        s.dispatch_buffer = deque(
            f for f in s.dispatch_buffer if not f.wrong_path)
        s.frontend_pipe = deque(
            (ready, f) for ready, f in s.frontend_pipe
            if not f.wrong_path)
        if victims and s.bus.live[_SQUASH]:
            s.bus.publish(SquashEvent(cycle, "wrong_path", tuple(victims)))

    def squash_from(self, seq: int, cycle: int, resume_after: bool = False,
                    reason: str = "mem_order") -> None:
        """Squash ``seq`` and everything younger; refetch from ``seq``
        (or from ``seq + 1`` when ``resume_after`` — exception skip)."""
        s = self.s
        self.squash_wrong_path(cycle)
        victims = [op for op in s.ops.values()
                   if op.seq >= seq and not op.committed]
        victims.sort(key=lambda op: op.seq, reverse=True)
        for op in victims:
            op.exec_token += 1          # cancel in-flight completions
            if op.in_iq:
                self.leave_iq_squash(op)
            if op.rob_entry is not None:
                s.rob_queue.free(op.rob_entry)
                s.merged.remove(op.rob_entry)
            s.window.pop(op.seq, None)
            s.ops.pop(op.seq, None)
            s.commit_candidates.discard(op.seq)
            s.mem_retry = [r for r in s.mem_retry if r.seq != op.seq]
            s.mem_wait = [r for r in s.mem_wait if r.seq != op.seq]
            s.load_waiters.pop(op.seq, None)
            for waiters in s.load_waiters.values():
                waiters[:] = [w for w in waiters if w.seq != op.seq]
            if op.prev_writer is not None:
                arch, prev = op.prev_writer
                if s.last_writer.get(arch) == op.seq:
                    if prev is None:
                        del s.last_writer[arch]
                    else:
                        s.last_writer[arch] = prev
            if s.active_fence == op.seq:
                s.active_fence = None
        s.lsq.squash(seq)
        s.rename.squash([op.rename_rec for op in victims])
        # drop younger not-yet-dispatched instructions
        s.dispatch_buffer = deque(
            f for f in s.dispatch_buffer if f.instr.seq < seq)
        s.frontend_pipe = deque(
            (ready, f) for ready, f in s.frontend_pipe
            if f.instr.seq < seq)
        resume_seq = seq if resume_after else seq - 1
        s.fetch.squash_to(resume_seq, cycle)
        if s.bus.live[_SQUASH]:
            s.bus.publish(SquashEvent(cycle, reason, tuple(victims),
                                      resume_seq))

    def leave_iq_squash(self, op: InflightOp) -> None:
        s = self.s
        entry = op.iq_entry
        s.wakeup.squash([entry])
        s.iq_queue.free(entry)
        s.iq_age.remove(entry)
        s.ready_set.discard(entry)
        s.iq_ops.pop(entry, None)
        op.in_iq = False
        op.iq_entry = None
