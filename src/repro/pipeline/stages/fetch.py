"""Frontend stage: pull fetched instructions into the frontend pipe.

The heavy lifting (branch prediction, redirect penalties, wrong-path
synthesis) lives in :class:`~repro.frontend.FetchUnit`; this stage
applies fetch-queue backpressure, stamps the ``frontend_depth`` delay,
and publishes one :class:`~repro.pipeline.events.FetchEvent` per
fetched instruction.
"""

from __future__ import annotations

from ..events import EventType, FetchEvent
from .state import PipelineState

_FETCH = EventType.FETCH


class FetchStage:
    """Feeds the dispatch buffer through the frontend pipe."""

    def __init__(self, state: PipelineState):
        self.s = state

    def tick(self, cycle: int) -> None:
        s = self.s
        if len(s.dispatch_buffer) >= 2 * s.config.dispatch_width:
            return                       # fetch-queue backpressure
        bus = s.bus
        for fetched in s.fetch.fetch(cycle):
            if fetched.mispredicted:
                s.stats.branch_mispredicts += 1
                s.pc_mispredicts[fetched.instr.pc] = \
                    s.pc_mispredicts.get(fetched.instr.pc, 0) + 1
            if bus.live[_FETCH]:
                bus.publish(FetchEvent(
                    cycle, fetched.instr.seq, fetched.instr.pc,
                    fetched.mispredicted, fetched.wrong_path))
            s.frontend_pipe.append(
                (cycle + s.config.frontend_depth, fetched))
            s.progress_cycle = cycle
