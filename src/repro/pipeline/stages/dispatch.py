"""Dispatch stage: claim ROB/IQ/LSQ/RF entries, build the dataflow.

Up to ``dispatch_width`` instructions per cycle leave the dispatch
buffer, allocate their structural resources, rename, and register
their dependences in the wakeup matrix / completion counters.  A cycle
that cannot dispatch charges its stall to exactly one resource: the
first exhausted one — in fixed ``rob, iq, lq, sq, reg`` priority order
— blocking the oldest not-yet-dispatched instruction.  Even when
several resources are exhausted at once, only that single blocker is
accounted (no double counting).
"""

from __future__ import annotations

import heapq
from typing import Optional

from ...isa import DynInstr, OpClass, Opcode
from ..events import DispatchEvent, DispatchStall, EventType
from .state import InflightOp, PipelineState

_DISPATCH = EventType.DISPATCH
_STALL = EventType.STALL


class DispatchStage:
    """Moves instructions from the frontend pipe into the window."""

    def __init__(self, state: PipelineState):
        self.s = state
        # per-cycle group accumulators: the matrices are written once
        # per cycle with batched group stores instead of per-op writes
        self._g_rob: list = []
        self._g_spec: list = []
        self._g_iq: list = []
        self._g_crit: list = []
        self._g_prods: list = []
        # cross-lane fused landing (repro.pipeline.vectorstages): with
        # ``defer_flush`` the accumulators survive the tick and the
        # vector engine lands every lane's group in one batched store
        # over the 3-D stack
        self.defer_flush = False
        # the latency table is immutable after construction
        self._latency = state.config.latencies.get

    def tick(self, cycle: int) -> None:
        s = self.s
        while s.frontend_pipe and s.frontend_pipe[0][0] <= cycle:
            s.dispatch_buffer.append(s.frontend_pipe.popleft()[1])
        if not s.dispatch_buffer:
            return
        dispatched = 0
        stalled = False
        while s.dispatch_buffer and dispatched < s.config.dispatch_width:
            fetched = s.dispatch_buffer[0]
            blocker = self._blocker(fetched.instr)
            if blocker is not None:
                self._account_stall(blocker, dispatched, cycle)
                stalled = True
                break
            s.dispatch_buffer.popleft()
            if fetched.wrong_path:
                self._dispatch_wrong_path(fetched, cycle)
            else:
                self._do_dispatch(fetched, cycle)
                s.ops[fetched.instr.seq].dispatched_at = cycle
            dispatched += 1
        if dispatched and not self.defer_flush:
            self._flush_group()
        if dispatched and not stalled:
            s.progress_cycle = cycle

    def _flush_group(self) -> None:
        """Land this cycle's dispatch group in the matrices: one batched
        write per structure (oldest group member first)."""
        s = self.s
        s.merged.dispatch_group(self._g_rob, self._g_spec)
        s.iq_age.dispatch_group(self._g_iq, self._g_crit)
        s.wakeup.dispatch_group(self._g_iq, self._g_prods)
        self._g_rob.clear()
        self._g_spec.clear()
        self._g_iq.clear()
        self._g_crit.clear()
        self._g_prods.clear()

    # -- stall attribution ---------------------------------------------

    def _blocker(self, dyn: DynInstr) -> Optional[str]:
        """First missing resource for the oldest pending instruction,
        in fixed priority order — the single charged blocker."""
        s = self.s
        if s.rob_queue.is_full():
            return "rob"
        if s.iq_queue.is_full():
            return "iq"
        if dyn.seq < 0:
            return None                  # wrong path: IQ/ROB only
        if dyn.is_load and not s.lsq.can_allocate_load():
            return "lq"
        if dyn.is_store and not s.lsq.can_allocate_store():
            return "sq"
        if not s.rename.can_rename(dyn.dst):
            return "reg"
        return None

    def _account_stall(self, blocker: str, dispatched: int,
                       cycle: int) -> None:
        """Charge this cycle's stall once, to ``blocker`` alone."""
        stats = self.s.stats
        setattr(stats, f"stall_{blocker}",
                getattr(stats, f"stall_{blocker}") + 1)
        if dispatched == 0:
            stats.full_window_stall_cycles += 1
        bus = self.s.bus
        if bus.live[_STALL]:
            bus.publish(DispatchStall(cycle, blocker, dispatched == 0))

    # -- dispatch proper -----------------------------------------------

    def _do_dispatch(self, fetched, cycle: int) -> None:
        s = self.s
        dyn = fetched.instr
        op = InflightOp(dyn, fetched.mispredicted)
        op.latency = self._latency(dyn.op_class, 1)
        s.dispatch_counter += 1
        op.dispatch_stamp = s.dispatch_counter
        op.rob_entry = s.rob_queue.allocate()
        op.iq_entry = s.iq_queue.allocate()
        op.in_iq = True
        if s.iq_stamp is not None:
            # struct-of-arrays issue columns for the vectorized kernels
            s.iq_stamp[op.iq_entry] = op.dispatch_stamp
            s.iq_fu[op.iq_entry] = op.fu
        if dyn.is_load:
            s.lsq.allocate_load(dyn.seq)
        elif dyn.is_store:
            s.lsq.allocate_store(dyn.seq)
        op.rename_rec = s.rename.rename(dyn)

        # dataflow: wait on in-flight producers of the source registers.
        # Stores split their operands: address (rs1) gates issue/agen,
        # data (rs2) only gates completion — so a store can resolve its
        # address early, the key to precise disambiguation.
        if dyn.is_store:
            addr_srcs = dyn.srcs[:1]
            data_srcs = dyn.srcs[1:]
        else:
            addr_srcs = dyn.srcs
            data_srcs = ()
        producer_entries = []
        for src in set(addr_srcs):
            writer = self._live_writer(src)
            if writer is None:
                continue
            if writer.in_iq:
                # positional dependence: tracked in the wakeup matrix
                # until the producer issues (§3.4)
                producer_entries.append(writer.iq_entry)
            else:
                op.producers_remaining += 1
                writer.dependents.append((op, "op"))
        for src in set(data_srcs):
            writer = self._live_writer(src)
            if writer is not None:
                op.data_remaining += 1
                writer.dependents.append((op, "data"))
        # fences order memory operations
        if dyn.opcode is Opcode.FENCE:
            for other in s.window.values():
                if other.dyn.is_mem and not other.completed:
                    op.producers_remaining += 1
                    other.dependents.append((op, "op"))
            s.active_fence = dyn.seq
        elif dyn.is_mem and s.active_fence is not None:
            fence = s.ops.get(s.active_fence)
            if fence is not None and not fence.completed:
                op.producers_remaining += 1
                fence.dependents.append((op, "op"))

        if dyn.dst is not None:
            op.prev_writer = (dyn.dst, s.last_writer.get(dyn.dst))
            s.last_writer[dyn.dst] = dyn.seq

        speculative = self._is_speculative_at_dispatch(dyn)
        self._g_rob.append(op.rob_entry)
        self._g_spec.append(speculative)
        op.spec_resolved = not speculative
        critical = s.config.criticality and dyn.critical
        self._g_iq.append(op.iq_entry)
        self._g_crit.append(critical)
        self._g_prods.append(producer_entries)
        s.stats.iq_writes += 1
        s.stats.rob_writes += 1
        s.stats.wakeup_writes += 1

        s.window[dyn.seq] = op
        s.ops[dyn.seq] = op
        s.iq_ops[op.iq_entry] = op
        if op.producers_remaining == 0 and not producer_entries:
            s.ready_set.add(op.iq_entry)
        s.stats.dispatched += 1
        bus = s.bus
        if bus.live[_DISPATCH]:
            bus.publish(DispatchEvent(cycle, op, False))

    def _dispatch_wrong_path(self, fetched, cycle: int) -> None:
        """Install a synthetic wrong-path instruction: it occupies an
        IQ and a ROB entry and competes for issue, but never renames,
        touches memory, or commits."""
        s = self.s
        op = InflightOp(fetched.instr, False)
        op.latency = self._latency(fetched.instr.op_class, 1)
        op.wrong_path = True
        s.dispatch_counter += 1
        op.dispatch_stamp = s.dispatch_counter
        op.rob_entry = s.rob_queue.allocate()
        op.iq_entry = s.iq_queue.allocate()
        op.in_iq = True
        if s.iq_stamp is not None:
            s.iq_stamp[op.iq_entry] = op.dispatch_stamp
            s.iq_fu[op.iq_entry] = op.fu
        self._g_rob.append(op.rob_entry)
        self._g_spec.append(False)
        self._g_iq.append(op.iq_entry)
        self._g_crit.append(False)
        self._g_prods.append(())
        s.window[op.seq] = op
        s.ops[op.seq] = op
        s.iq_ops[op.iq_entry] = op
        # synthetic operand wait: ready 1-3 cycles after dispatch
        heapq.heappush(s.wp_ready,
                       (cycle + 1 + (-op.seq) % 3, op.seq))
        s.stats.wrong_path_dispatched += 1
        bus = s.bus
        if bus.live[_DISPATCH]:
            bus.publish(DispatchEvent(cycle, op, True))

    def _live_writer(self, src: int) -> Optional[InflightOp]:
        writer_seq = self.s.last_writer.get(src)
        if writer_seq is None:
            return None
        writer = self.s.ops.get(writer_seq)
        if writer is None or writer.completed:
            return None
        return writer

    def _is_speculative_at_dispatch(self, dyn: DynInstr) -> bool:
        if dyn.is_mem:
            return True                       # page fault / replay traps
        if dyn.op_class is OpClass.BRANCH:
            return not self.s.commit_policy.oracle_branches
        if dyn.opcode is Opcode.JALR:
            return not self.s.commit_policy.oracle_branches
        return False
