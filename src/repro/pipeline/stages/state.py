"""Shared pipeline state: the in-flight map, matrices, queues, LSQ.

:class:`PipelineState` is the single structure every stage operates on.
It owns no stage logic — only the machine's architectural and
micro-architectural containers plus two helpers (completion scheduling
and forward-progress stamping) that every stage needs.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ...core import AgeMatrix, MergedCommitMatrix, WakeupMatrix
from ...frontend import FetchUnit, make_predictor
from ...isa import DynInstr, Trace
from ...lsq import LSQUnit
from ...memory import MemoryHierarchy, TLB
from ...queues import CircularQueue, RandomQueue
from ...rename import RenameUnit
from ...scheduler import make_select_policy
from ..config import CoreConfig
from ..events import EventBus
from ..resources import FUPool, FUType, fu_type_for, is_unpipelined
from ..stats import SimStats


class InflightOp:
    """Pipeline state of one in-flight dynamic instruction."""

    __slots__ = (
        "dyn", "mispredicted", "rename_rec", "rob_entry", "iq_entry",
        "fu", "latency", "unpipelined",
        "producers_remaining", "data_remaining", "dependents",
        "in_iq", "issued_at", "complete_at", "completed", "performed",
        "translated", "addr_resolved", "fault_pending", "mem_nonspec",
        "spec_resolved", "committed", "zombie", "resources_released",
        "prev_writer", "exec_token", "wrong_path", "dispatch_stamp",
        "dispatched_at", "completed_at", "committed_at")

    def __init__(self, dyn: DynInstr, mispredicted: bool):
        self.dyn = dyn
        self.mispredicted = mispredicted
        self.rename_rec = None
        self.rob_entry: Optional[int] = None
        self.iq_entry: Optional[int] = None
        self.fu = fu_type_for(dyn.op_class)
        #: FU latency under the dispatching core's config (stamped at
        #: dispatch; default for ops built outside a pipeline)
        self.latency = 1
        self.unpipelined = is_unpipelined(dyn.op_class)
        self.producers_remaining = 0
        self.data_remaining = 0           # stores: value operand
        self.dependents: List[Tuple["InflightOp", str]] = []
        self.in_iq = False
        self.issued_at: Optional[int] = None
        self.complete_at: Optional[int] = None
        self.completed = False
        self.performed = False            # loads: data obtained
        self.translated = False           # memory ops: address translated
        self.addr_resolved = False        # stores: address known to LSQ
        self.fault_pending = False
        self.mem_nonspec = False          # loads: disambiguated
        self.spec_resolved = False        # SPEC bit cleared in the ROB
        self.committed = False
        self.zombie = False
        self.resources_released = False
        self.prev_writer: Optional[Tuple[int, Optional[int]]] = None
        self.exec_token = 0               # invalidates stale completions
        self.wrong_path = False
        self.dispatch_stamp = 0           # true dispatch (age) order
        self.dispatched_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        self.committed_at: Optional[int] = None

    @property
    def seq(self) -> int:
        return self.dyn.seq

    def __repr__(self) -> str:
        return (f"<Op #{self.seq} {self.dyn.opcode.mnemonic} "
                f"{'C' if self.completed else ''}"
                f"{'c' if self.committed else ''}>")


class MirroredReadySet(set):
    """A ready set that mirrors membership into a lane-stack bit plane.

    The cross-lane vectorized select kernel
    (:mod:`repro.pipeline.vectorstages`) reads every lane's ready set
    as one ``(lanes, iq_size)`` boolean plane.  This wrapper keeps the
    plane exact by construction: the only mutations any stage performs
    on ``ready_set`` are ``add`` and ``discard`` (never ``clear`` /
    ``pop`` / rebinding), and both are mirrored point-wise.  All read
    paths (membership, iteration, ``len``, truthiness) are the plain
    ``set`` ones — the scalar stage code is unchanged.
    """

    __slots__ = ("plane",)

    def __init__(self, plane: np.ndarray):
        super().__init__()
        self.plane = plane
        plane[...] = False

    def add(self, entry: int) -> None:
        set.add(self, entry)
        self.plane[entry] = True

    def discard(self, entry: int) -> None:
        set.discard(self, entry)
        self.plane[entry] = False


class PipelineState:
    """Everything the stages share, constructed from a trace + config."""

    def __init__(self, trace: Trace, config: CoreConfig,
                 bus: Optional[EventBus] = None, slot=None):
        # deferred: repro.commit imports pipeline.events at module
        # level, so importing it here (not at state.py import time)
        # keeps the package import graph acyclic
        from ...commit import make_commit_policy
        if slot is not None and (slot.iq_size != config.iq_size
                                 or slot.rob_size != config.rob_size):
            raise ValueError(
                f"lane slot shape (iq={slot.iq_size}, "
                f"rob={slot.rob_size}) does not match config "
                f"(iq={config.iq_size}, rob={config.rob_size})")
        self.trace = trace
        self.config = config
        self.bus = bus if bus is not None else EventBus()
        self.stats = SimStats(name=f"{trace.name}/{config.name}/"
                                   f"{config.scheduler}+{config.commit}")
        self.rng = random.Random(config.seed)

        self.predictor = make_predictor(config.predictor)
        self.fetch = FetchUnit(trace, self.predictor, config.fetch_width,
                               config.redirect_penalty,
                               model_wrong_path=config.model_wrong_path)
        self.rename = RenameUnit(config.rf_size, config.rename_scheme)
        self.commit_policy = make_commit_policy(config.commit)
        self.select_policy = make_select_policy(config.scheduler)

        # IQ: non-collapsible free list + age matrix + wakeup matrix.
        # With a lane ``slot`` (repro.core.lanestack.LaneSlot) the
        # matrices operate on views into 3-D lane-stacked arrays — a
        # struct-of-arrays layout over batch-mates; without one they
        # own their arrays (the scalar reference path, unchanged).
        if config.iq_org == "circ":
            self.iq_queue = CircularQueue(config.iq_size)
        else:
            self.iq_queue = RandomQueue(config.iq_size)
        self.iq_age = AgeMatrix(
            config.iq_size,
            storage=None if slot is None else slot.iq_age)
        self.wakeup = WakeupMatrix(
            config.iq_size,
            storage=None if slot is None else slot.wakeup)
        self.iq_ops: Dict[int, InflightOp] = {}

        # ROB: merged age/SPEC matrix over a non-collapsible (or, for
        # in-order reclamation, circular) entry pool
        if config.ooo_rob_release:
            self.rob_queue = RandomQueue(config.rob_size)
        else:
            self.rob_queue = CircularQueue(config.rob_size)
        self.merged = MergedCommitMatrix(
            config.rob_size,
            storage=None if slot is None else slot.merged)
        # ROB-sized bool scratch shared by the per-cycle eligibility
        # gathers (commit policies, stall accounting) — never held
        # across a cycle
        if slot is None:
            self.rob_scratch = np.zeros(config.rob_size, dtype=bool)
        else:
            self.rob_scratch = slot.rob_scratch
            self.rob_scratch[...] = False

        self.lsq = LSQUnit(config.lq_size, config.sq_size,
                           config.store_buffer_size, tso=config.tso,
                           ldt_size=config.ldt_size)
        self.hierarchy = MemoryHierarchy(config.memory)
        self.tlb = TLB()
        self.fupool = FUPool({
            FUType.ALU: config.fu_alu,
            FUType.MULDIV: config.fu_muldiv,
            FUType.FPU: config.fu_fpu,
            FUType.LOAD: config.fu_load,
            FUType.STORE: config.fu_store,
        })

        # program-order window of uncommitted ops (seq -> op)
        self.window: Dict[int, InflightOp] = {}
        # all live ops, including committed-but-incomplete zombies
        self.ops: Dict[int, InflightOp] = {}
        self.zombies: Dict[int, InflightOp] = {}
        self.pending_release: Dict[int, InflightOp] = {}
        # completed, uncommitted ops — the commit stage's working set
        self.commit_candidates: set = set()

        self.frontend_pipe: Deque[Tuple[int, object]] = deque()
        self.dispatch_buffer: Deque[object] = deque()
        # struct-of-arrays issue columns: with a lane slot the ready
        # set mirrors into the stack's issue_ready plane and dispatch
        # stamps/FU codes land in per-entry columns so the vectorized
        # select kernel can read all lanes at once; the scalar path
        # keeps the plain set (and None columns) unchanged
        if slot is None:
            self.ready_set: set = set()
            self.iq_stamp = None
            self.iq_fu = None
        else:
            self.ready_set = MirroredReadySet(slot.issue_ready)
            self.iq_stamp = slot.iq_stamp
            self.iq_stamp[...] = 0
            self.iq_fu = slot.iq_fu
            self.iq_fu[...] = 0
        self.completion_heap: List[Tuple[int, int, int]] = []
        self.mem_retry: List[InflightOp] = []
        # loads parked on a forwarding store whose data is not ready yet
        self.load_waiters: Dict[int, List[InflightOp]] = {}
        # loads parked until some older store resolves its address
        self.mem_wait: List[InflightOp] = []
        # simple memory dependence predictor: load PCs that violated
        # before stop speculating past unresolved stores (store sets)
        self.violated_load_pcs: set = set()
        # wrong-path instructions awaiting their synthetic operands
        self.wp_ready: List[Tuple[int, int]] = []

        self.last_writer: Dict[int, int] = {}
        self.active_fence: Optional[int] = None
        self.sb_busy_until = 0

        self.cycle = 0
        self.dispatch_counter = 0
        self.retired_total = 0
        self.skipped_faults = 0
        self.progress_cycle = 0
        # per-PC profile for the criticality tagger
        self.pc_l1_misses: Dict[int, int] = {}
        self.pc_mispredicts: Dict[int, int] = {}

    # -- helpers shared by every stage ---------------------------------

    def schedule_completion(self, op: InflightOp, when: int) -> None:
        op.exec_token += 1
        op.complete_at = when
        heapq.heappush(self.completion_heap, (when, op.seq, op.exec_token))

    def progress(self, cycle: int) -> None:
        """Stamp forward progress (resets the deadlock watchdog)."""
        self.progress_cycle = cycle

    def resolve_spec(self, op: InflightOp) -> None:
        """Clear the SPEC bit of a no-longer-speculative instruction."""
        if not op.spec_resolved:
            op.spec_resolved = True
            if not op.committed and op.rob_entry is not None:
                self.merged.resolve(op.rob_entry)
