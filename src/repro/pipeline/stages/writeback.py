"""Writeback stage: drain the completion heap, wake dependents.

Completion events carry an ``exec_token`` so replays and squashes can
invalidate stale in-flight completions.  Two-phase stores route their
first completion through the memory unit's address resolution; the
dependent-wakeup walk converts completion counters back into ready IQ
entries (or completes waiting stores).
"""

from __future__ import annotations

import heapq

from ..events import CompleteEvent, EventType
from .commit import CommitStage
from .memory import MemoryStage
from .squash import SquashUnit
from .state import InflightOp, PipelineState

_COMPLETE = EventType.COMPLETE


class WritebackStage:
    """Completes instructions whose results arrive this cycle."""

    def __init__(self, state: PipelineState, memory: MemoryStage,
                 commit: CommitStage, squash: SquashUnit):
        self.s = state
        self.memory = memory
        self.commit = commit
        self.squash = squash

    def tick(self, cycle: int) -> None:
        s = self.s
        while s.completion_heap and s.completion_heap[0][0] <= cycle:
            _, seq, token = heapq.heappop(s.completion_heap)
            op = s.ops.get(seq)
            if op is None or op.exec_token != token or op.completed:
                continue
            if op.dyn.is_store and not op.addr_resolved:
                # two-phase store: this event is address generation
                self.memory.finish_store_addr(op, cycle)
                if not op.fault_pending and op.data_remaining == 0:
                    self.complete(op, cycle)
                continue
            self.complete(op, cycle)

    def complete(self, op: InflightOp, cycle: int) -> None:
        s = self.s
        op.completed = True
        op.completed_at = cycle
        s.progress_cycle = cycle
        if op.wrong_path:
            return
        if s.bus.live[_COMPLETE]:
            s.bus.publish(CompleteEvent(cycle, op))
        s.rename.producer_completed(op.rename_rec)
        dyn = op.dyn
        if dyn.is_branch:
            s.resolve_spec(op)
            s.fetch.branch_resolved(op.seq, cycle)
            if op.mispredicted:
                self.squash.squash_wrong_path(cycle)
        elif dyn.is_load:
            op.performed = True
            s.lsq.load_performed(op.seq)
            self.memory.try_disambiguate(op)
        # wake dependents.  Identity check: a squash may have killed the
        # registered instruction and a later refetch re-dispatched the
        # same seq as a fresh InflightOp; a stale entry must not wake
        # (much less double-decrement) the new incarnation.
        for dep, kind in op.dependents:
            if s.ops.get(dep.seq) is not dep:
                continue
            if kind == "data":
                dep.data_remaining -= 1
                if (dep.data_remaining == 0 and dep.addr_resolved
                        and not dep.completed and not dep.fault_pending):
                    s.schedule_completion(dep, cycle + 1)
            else:
                dep.producers_remaining -= 1
                if (dep.producers_remaining == 0 and dep.in_iq
                        and s.wakeup.is_ready(dep.iq_entry)):
                    s.ready_set.add(dep.iq_entry)
        if s.active_fence == op.seq:
            s.active_fence = None
        if dyn.is_store:
            for waiter in s.load_waiters.pop(op.seq, ()):
                if waiter.seq in s.ops:
                    s.mem_retry.append(waiter)
        if not op.committed:
            s.commit_candidates.add(op.seq)
        if s.commit_policy.release_at_completion and not op.committed:
            self.commit.early_release(op)
        if op.zombie:
            self.commit.finish_zombie(op)
