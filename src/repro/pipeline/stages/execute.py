"""Execute stage: functional-unit timing, load issue, memory retries.

Non-memory instructions simply schedule a completion after their FU
latency.  Loads are the interesting case: translation, store-set
gating, store-to-load forwarding, MSHR backpressure and MDM row
installation all happen here, with parked loads retried each cycle
once their blocking condition clears.
"""

from __future__ import annotations

from ...isa import OpClass
from ..events import EventType, MatrixEvent, MemEvent
from .memory import MemoryStage
from .state import InflightOp, PipelineState

_MEM = EventType.MEM
_MATRIX = EventType.MATRIX


class ExecuteStage:
    """Begins execution for issued instructions; retries parked loads."""

    def __init__(self, state: PipelineState, memory: MemoryStage):
        self.s = state
        self.memory = memory

    def tick(self, cycle: int) -> None:
        """Retry loads parked on MSHR-full / forwarding conditions."""
        s = self.s
        if not s.mem_retry:
            return
        retries, s.mem_retry = s.mem_retry, []
        for op in retries:
            if op.seq not in s.ops:
                continue                # squashed meanwhile
            # peek before burning a load port on a doomed attempt
            outcome, unresolved, match = s.lsq.load_lookup(op.seq,
                                                           op.dyn.addr)
            if unresolved.any() and (
                    s.config.mem_dep_policy == "conservative"
                    or op.dyn.pc in s.violated_load_pcs):
                s.mem_wait.append(op)
                continue
            if outcome == "forward":
                producer = s.ops.get(match)
                if producer is not None and not producer.completed:
                    s.load_waiters.setdefault(match, []).append(op)
                    continue
            if s.fupool.acquire_fu(op.fu, op.latency, op.unpipelined):
                self.execute_load(op, cycle)
            else:
                s.mem_retry.append(op)

    def begin(self, op: InflightOp, cycle: int) -> None:
        s = self.s
        dyn = op.dyn
        cls = dyn.op_class
        if cls is OpClass.LOAD:
            self.execute_load(op, cycle)
            return
        if cls is OpClass.STORE:
            # address generation + translation; resolution effects land
            # at completion in MemoryStage.finish_store_addr
            latency = 1 + s.tlb.translate(dyn.addr, dyn.fault).latency
            s.schedule_completion(op, cycle + latency)
            return
        s.schedule_completion(op, cycle + op.latency)

    def execute_load(self, op: InflightOp, cycle: int) -> None:
        s = self.s
        dyn = op.dyn
        translation = s.tlb.translate(dyn.addr, dyn.fault)
        base_latency = 1 + translation.latency
        op.translated = True
        if translation.fault:
            op.fault_pending = True
            return                      # never completes; blocks at commit
        outcome, unresolved, match_seq = s.lsq.load_lookup(dyn.seq,
                                                           dyn.addr)
        if unresolved.any() and (
                s.config.mem_dep_policy == "conservative"
                or dyn.pc in s.violated_load_pcs):
            op.translated = False       # wait for older stores to resolve
            s.mem_wait.append(op)
            return
        bus = s.bus
        if outcome == "forward":
            producer = s.ops.get(match_seq)
            if producer is not None and not producer.completed:
                # matching store's data is not ready: park until it is
                # (no port is wasted on doomed retries)
                op.translated = False
                s.load_waiters.setdefault(match_seq, []).append(op)
                return
            s.lsq.load_issue(dyn.seq, dyn.addr, unresolved)
            s.stats.mdm_writes += 1
            s.stats.forwarded_loads += 1
            if bus.live[_MATRIX]:
                bus.publish(MatrixEvent(cycle, "mdm", "write"))
            if bus.live[_MEM]:
                bus.publish(MemEvent(cycle, "forward", dyn.seq, match_seq))
            s.schedule_completion(
                op, cycle + base_latency + s.config.forward_latency)
        else:
            mem_latency = s.hierarchy.load(dyn.addr, cycle + base_latency)
            if mem_latency is None:     # MSHRs full: retry
                op.translated = False
                s.mem_retry.append(op)
                return
            if mem_latency > s.config.memory.l1_latency:
                s.pc_l1_misses[dyn.pc] = \
                    s.pc_l1_misses.get(dyn.pc, 0) + 1
            s.lsq.load_issue(dyn.seq, dyn.addr, unresolved)
            s.stats.mdm_writes += 1
            if bus.live[_MATRIX]:
                bus.publish(MatrixEvent(cycle, "mdm", "write"))
            s.schedule_completion(op, cycle + base_latency + mem_latency)
        self.memory.try_disambiguate(op)
