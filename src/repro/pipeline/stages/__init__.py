"""Per-stage pipeline modules behind a uniform ``tick(cycle)`` protocol.

The cycle driver (:class:`~repro.pipeline.core.O3Core`) owns nothing
but construction and the evaluation order; every stage operates on the
shared :class:`~.state.PipelineState` and publishes stage-boundary
events on its bus.  Swapping a stage (an alternative issue scheduler, a
different commit strategy, a new LSQ behaviour) means replacing one
module here without touching the driver.
"""

from .commit import CommitStage
from .dispatch import DispatchStage
from .execute import ExecuteStage
from .fetch import FetchStage
from .issue import IssueStage
from .memory import MemoryStage
from .squash import SquashUnit
from .state import InflightOp, PipelineState
from .writeback import WritebackStage

__all__ = ["CommitStage", "DispatchStage", "ExecuteStage", "FetchStage",
           "IssueStage", "MemoryStage", "SquashUnit", "InflightOp",
           "PipelineState", "WritebackStage"]
