"""Instruction set definition.

A deliberately small RISC-V-flavoured ISA, rich enough to express the
workload kernels and to exercise every commit condition the paper
analyses: integer ALU ops, long-latency multiply/divide, floating-point
arithmetic (which accrues status instead of trapping, as RISC-V does),
loads/stores (the only instructions that may raise exceptions, at
address translation), branches and jumps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .registers import reg_name


class OpClass(enum.Enum):
    """Execution class — selects functional unit and commit semantics."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYS = "sys"


#: Classes that execute on the memory pipeline.
MEM_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

#: Classes whose instructions are control transfers.
CTRL_CLASSES = frozenset({OpClass.BRANCH, OpClass.JUMP})

#: Classes that may raise an exception (paper §3.2: in RISC-V only
#: memory operations fault; FP accrues status without trapping).
FAULTING_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})


class Opcode(enum.Enum):
    # Integer ALU
    ADD = ("add", OpClass.INT_ALU)
    SUB = ("sub", OpClass.INT_ALU)
    AND = ("and", OpClass.INT_ALU)
    OR = ("or", OpClass.INT_ALU)
    XOR = ("xor", OpClass.INT_ALU)
    SLL = ("sll", OpClass.INT_ALU)
    SRL = ("srl", OpClass.INT_ALU)
    SLT = ("slt", OpClass.INT_ALU)
    ADDI = ("addi", OpClass.INT_ALU)
    ANDI = ("andi", OpClass.INT_ALU)
    ORI = ("ori", OpClass.INT_ALU)
    XORI = ("xori", OpClass.INT_ALU)
    SLTI = ("slti", OpClass.INT_ALU)
    SLLI = ("slli", OpClass.INT_ALU)
    SRLI = ("srli", OpClass.INT_ALU)
    LI = ("li", OpClass.INT_ALU)
    # Integer multiply / divide
    MUL = ("mul", OpClass.INT_MUL)
    DIV = ("div", OpClass.INT_DIV)
    REM = ("rem", OpClass.INT_DIV)
    # Floating point
    FADD = ("fadd", OpClass.FP_ADD)
    FSUB = ("fsub", OpClass.FP_ADD)
    FMUL = ("fmul", OpClass.FP_MUL)
    FDIV = ("fdiv", OpClass.FP_DIV)
    # Memory
    LD = ("ld", OpClass.LOAD)
    SD = ("sd", OpClass.STORE)
    FLD = ("fld", OpClass.LOAD)
    FSD = ("fsd", OpClass.STORE)
    # Control
    BEQ = ("beq", OpClass.BRANCH)
    BNE = ("bne", OpClass.BRANCH)
    BLT = ("blt", OpClass.BRANCH)
    BGE = ("bge", OpClass.BRANCH)
    JAL = ("jal", OpClass.JUMP)
    JALR = ("jalr", OpClass.JUMP)
    # System
    NOP = ("nop", OpClass.SYS)
    HALT = ("halt", OpClass.SYS)
    FENCE = ("fence", OpClass.SYS)

    def __init__(self, mnemonic: str, op_class: OpClass):
        self.mnemonic = mnemonic
        self.op_class = op_class


_MNEMONICS = {op.mnemonic: op for op in Opcode}


def opcode_from_mnemonic(mnemonic: str) -> Opcode:
    """Look up an :class:`Opcode` by its assembly mnemonic."""
    try:
        return _MNEMONICS[mnemonic.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown mnemonic: {mnemonic!r}") from exc


@dataclass
class Instruction:
    """One static instruction.

    ``rd``/``rs1``/``rs2`` are flat register ids (see
    :mod:`repro.isa.registers`) or ``None`` when unused.  ``imm`` holds
    the immediate / displacement; ``target`` holds a branch or jump
    target expressed as a static instruction index (resolved from a
    label by the assembler / builder).  ``fault`` marks the instruction
    as raising a page fault when it translates its address — a testing
    hook used to exercise precise-exception handling.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    fault: bool = False
    label: Optional[str] = None

    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    @property
    def is_mem(self) -> bool:
        return self.op_class in MEM_CLASSES

    @property
    def is_branch(self) -> bool:
        return self.op_class in CTRL_CLASSES

    def sources(self) -> Tuple[int, ...]:
        """Flat register ids read by this instruction."""
        srcs = []
        if self.rs1 is not None:
            srcs.append(self.rs1)
        if self.rs2 is not None:
            srcs.append(self.rs2)
        return tuple(srcs)

    def __str__(self) -> str:
        op = self.opcode
        if op in (Opcode.LD, Opcode.FLD):
            return f"{op.mnemonic} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if op in (Opcode.SD, Opcode.FSD):
            # store: rs2 is the value register, rs1 the base address.
            return f"{op.mnemonic} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        operands = []
        if self.rd is not None:
            operands.append(reg_name(self.rd))
        if self.rs1 is not None:
            operands.append(reg_name(self.rs1))
        if self.rs2 is not None:
            operands.append(reg_name(self.rs2))
        if op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI,
                  Opcode.SLLI, Opcode.SRLI, Opcode.LI, Opcode.JALR):
            operands.append(str(self.imm))
        if self.target is not None:
            operands.append(f"@{self.target}")
        if operands:
            return f"{op.mnemonic} " + ", ".join(operands)
        return op.mnemonic
