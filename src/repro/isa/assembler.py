"""Two-pass text assembler.

Accepts a conventional assembly syntax::

        li   x1, 0
        li   x2, 10
    loop:
        addi x1, x1, 1
        ld   x3, 8(x4)
        sd   x3, 0(x5)
        blt  x1, x2, loop
        halt

Directives: ``.word ADDR VALUE`` seeds data memory, ``.name NAME`` sets
the program name.  Comments start with ``#`` or ``;``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .builder import ProgramBuilder
from .instructions import Instruction, Opcode, opcode_from_mnemonic
from .program import Program
from .registers import parse_reg

_MEM_OPERAND = re.compile(r"^(-?\d+)\((\w+)\)$")

_RRR_OPS = {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
            Opcode.SLL, Opcode.SRL, Opcode.SLT, Opcode.MUL, Opcode.DIV,
            Opcode.REM, Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
_RRI_OPS = {Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI,
            Opcode.SLLI, Opcode.SRLI}
_LOAD_OPS = {Opcode.LD, Opcode.FLD}
_STORE_OPS = {Opcode.SD, Opcode.FSD}
_BRANCH_OPS = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}


class AssemblerError(Exception):
    """Raised with a line number on malformed assembly input."""


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"line {lineno}: bad integer {token!r}") from exc


def _parse_mem(token: str, lineno: int) -> Tuple[int, int]:
    match = _MEM_OPERAND.match(token.replace(" ", ""))
    if not match:
        raise AssemblerError(f"line {lineno}: bad memory operand {token!r}")
    return int(match.group(1)), parse_reg(match.group(2))


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program`."""
    builder = ProgramBuilder()
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#")[0].split(";")[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label:
                raise AssemblerError(f"line {lineno}: empty label")
            builder.label(label)
            line = line.strip()
        if not line:
            continue
        if line.startswith("."):
            _directive(builder, line, lineno)
            continue
        mnemonic, _, rest = line.partition(" ")
        try:
            opcode = opcode_from_mnemonic(mnemonic)
        except ValueError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
        operands = _split_operands(rest)
        builder.emit(_encode(opcode, operands, lineno))
    return builder.build()


def _directive(builder: ProgramBuilder, line: str, lineno: int) -> None:
    parts = line.split()
    if parts[0] == ".word":
        if len(parts) != 3:
            raise AssemblerError(f"line {lineno}: .word ADDR VALUE")
        addr = _parse_int(parts[1], lineno)
        try:
            value: float = int(parts[2], 0)
        except ValueError:
            value = float(parts[2])
        builder.data_word(addr, value)
    elif parts[0] == ".name":
        if len(parts) != 2:
            raise AssemblerError(f"line {lineno}: .name NAME")
        builder.name = parts[1]
    else:
        raise AssemblerError(f"line {lineno}: unknown directive {parts[0]!r}")


def _encode(opcode: Opcode, operands: List[str], lineno: int) -> Instruction:
    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"line {lineno}: {opcode.mnemonic} takes {count} operands, "
                f"got {len(operands)}")

    if opcode in _RRR_OPS:
        need(3)
        return Instruction(opcode, rd=parse_reg(operands[0]),
                           rs1=parse_reg(operands[1]),
                           rs2=parse_reg(operands[2]))
    if opcode in _RRI_OPS:
        need(3)
        return Instruction(opcode, rd=parse_reg(operands[0]),
                           rs1=parse_reg(operands[1]),
                           imm=_parse_int(operands[2], lineno))
    if opcode is Opcode.LI:
        need(2)
        return Instruction(opcode, rd=parse_reg(operands[0]),
                           imm=_parse_int(operands[1], lineno))
    if opcode in _LOAD_OPS:
        need(2)
        imm, base = _parse_mem(operands[1], lineno)
        return Instruction(opcode, rd=parse_reg(operands[0]), rs1=base, imm=imm)
    if opcode in _STORE_OPS:
        need(2)
        imm, base = _parse_mem(operands[1], lineno)
        return Instruction(opcode, rs1=base, rs2=parse_reg(operands[0]),
                           imm=imm)
    if opcode in _BRANCH_OPS:
        need(3)
        return Instruction(opcode, rs1=parse_reg(operands[0]),
                           rs2=parse_reg(operands[1]), target=operands[2])
    if opcode is Opcode.JAL:
        need(2)
        return Instruction(opcode, rd=parse_reg(operands[0]),
                           target=operands[1])
    if opcode is Opcode.JALR:
        if len(operands) == 2:
            operands = operands + ["0"]
        need(3)
        return Instruction(opcode, rd=parse_reg(operands[0]),
                           rs1=parse_reg(operands[1]),
                           imm=_parse_int(operands[2], lineno))
    if opcode in (Opcode.NOP, Opcode.HALT, Opcode.FENCE):
        need(0)
        return Instruction(opcode)
    raise AssemblerError(  # pragma: no cover - opcode space is closed
        f"line {lineno}: cannot encode {opcode.mnemonic}")
