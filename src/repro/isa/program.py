"""Program container: static code plus initial data memory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instructions import Instruction, Opcode


@dataclass
class Program:
    """A static program.

    ``code`` is a list of :class:`Instruction`; the program counter is
    the index into this list.  ``data`` holds the initial contents of
    data memory as a mapping from byte address to 64-bit word value
    (addresses must be 8-byte aligned).  ``name`` labels the program in
    reports.
    """

    code: List[Instruction] = field(default_factory=list)
    data: Dict[int, float] = field(default_factory=dict)
    name: str = "program"
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.code)

    def __getitem__(self, pc: int) -> Instruction:
        return self.code[pc]

    def validate(self) -> None:
        """Check structural invariants; raise ValueError on violation."""
        for pc, instr in enumerate(self.code):
            if instr.is_branch and instr.opcode is not Opcode.JALR:
                if instr.target is None:
                    raise ValueError(f"pc {pc}: control instruction without target")
                if not 0 <= instr.target <= len(self.code):
                    raise ValueError(
                        f"pc {pc}: target {instr.target} outside program")
        for addr in self.data:
            if addr % 8 != 0:
                raise ValueError(f"unaligned data address: {addr:#x}")
            if addr < 0:
                raise ValueError(f"negative data address: {addr:#x}")

    def listing(self) -> str:
        """Human-readable assembly listing with labels."""
        by_pc: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(label)
        lines = []
        for pc, instr in enumerate(self.code):
            for label in by_pc.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"  {pc:4d}  {instr}")
        return "\n".join(lines)
