"""Dynamic trace serialization (JSON-lines).

Traces are deterministic given a kernel and scale, but emulation of the
bigger kernels takes a moment; serializing them lets benchmark sweeps
and external tools share one artifact.  Format: one header line, then
one compact JSON array per dynamic instruction.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .instructions import OpClass, Opcode
from .trace import DynInstr, Trace

FORMAT_VERSION = 1

_OPCODES = {op.name: op for op in Opcode}


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` in the JSONL trace format."""
    path = Path(path)
    with path.open("w") as handle:
        header = {"format": "repro-trace", "version": FORMAT_VERSION,
                  "name": trace.name, "count": len(trace)}
        handle.write(json.dumps(header) + "\n")
        for instr in trace:
            record = [instr.seq, instr.pc, instr.opcode.name, instr.dst,
                      list(instr.srcs), instr.imm, instr.addr,
                      int(instr.taken), instr.next_pc, int(instr.fault)]
            handle.write(json.dumps(record) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a trace file") from exc
        if header.get("format") != "repro-trace":
            raise ValueError(f"{path}: not a trace file")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')}")
        instrs = []
        for line in handle:
            seq, pc, opname, dst, srcs, imm, addr, taken, next_pc, fault \
                = json.loads(line)
            opcode = _OPCODES[opname]
            instrs.append(DynInstr(
                seq=seq, pc=pc, opcode=opcode, op_class=opcode.op_class,
                dst=dst, srcs=tuple(srcs), imm=imm, addr=addr,
                taken=bool(taken), next_pc=next_pc, fault=bool(fault),
                critical=False))
        if len(instrs) != header.get("count"):
            raise ValueError(
                f"{path}: truncated trace ({len(instrs)} of "
                f"{header.get('count')} records)")
    return Trace(instrs, name=header.get("name", path.stem))
