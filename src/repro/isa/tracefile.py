"""Dynamic trace serialization (JSON-lines), format v2.

Traces are deterministic given a kernel and scale, but emulation of the
bigger kernels takes a moment; serializing them lets benchmark sweeps
and external tools share one artifact — and lets users bring traces
recorded elsewhere into the workload registry
(:func:`repro.workloads.add_trace_target`).

On-disk layout (one JSON value per line):

* **header** — ``{"format": "repro-trace", "version": 2, "name": str,
  "count": int, "meta": {...}}``.  ``meta`` is free-form provenance
  (``repro trace record`` writes the source target, scale, and
  generation parameters); it never affects simulation.  Version-1
  files are the same minus ``meta`` and stay loadable forever.
* **records** — one compact array per dynamic instruction::

      [seq, pc, opcode_name, dst, [srcs...], imm, addr, taken, next_pc, fault]

  ``seq`` must equal the record's position: the timing model's fetch
  and squash paths index the trace by ``seq``.

The loader validates everything it reads — a malformed file names the
file, line number, and offending field in a ``ValueError`` rather than
surfacing a bare ``KeyError``/``TypeError`` from parsing internals.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Union

from .instructions import Opcode
from .trace import DynInstr, Trace

FORMAT_VERSION = 2
#: versions the reader accepts (v1 = headers without ``meta``)
SUPPORTED_VERSIONS = (1, 2)

_OPCODES = {op.name: op for op in Opcode}


def file_sha256(path: Union[str, Path]) -> str:
    """Streaming sha256 of a file's bytes (trace content identity)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_trace(trace: Trace, path: Union[str, Path],
               meta: Optional[Dict[str, object]] = None) -> None:
    """Write ``trace`` to ``path`` in the v2 JSONL trace format."""
    path = Path(path)
    with path.open("w") as handle:
        header = {"format": "repro-trace", "version": FORMAT_VERSION,
                  "name": trace.name, "count": len(trace),
                  "meta": dict(meta or {})}
        handle.write(json.dumps(header) + "\n")
        for instr in trace:
            record = [instr.seq, instr.pc, instr.opcode.name, instr.dst,
                      list(instr.srcs), instr.imm, instr.addr,
                      int(instr.taken), instr.next_pc, int(instr.fault)]
            handle.write(json.dumps(record) + "\n")


def read_header(path: Union[str, Path]) -> Dict[str, object]:
    """Parse and validate just the header line of a trace file."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not a trace file") from exc
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise ValueError(f"{path}: not a trace file")
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"{path}: unsupported trace version {version}")
    count = header.get("count")
    if not isinstance(count, int) or count < 0:
        raise ValueError(f"{path}: line 1: header field 'count' must be a "
                         f"non-negative integer, got {count!r}")
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise ValueError(f"{path}: line 1: header field 'meta' must be an "
                         f"object, got {type(meta).__name__}")
    return header


def _field_error(path: Path, lineno: int, field: str, detail: str,
                 value: object) -> ValueError:
    return ValueError(f"{path}: line {lineno}: field {field!r} {detail}, "
                      f"got {value!r}")


def _parse_record(line: str, lineno: int, index: int,
                  path: Path) -> DynInstr:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: line {lineno}: malformed JSON record") from exc
    if not isinstance(record, list) or len(record) != 10:
        raise ValueError(
            f"{path}: line {lineno}: expected a 10-field record array, "
            f"got {record!r}")
    seq, pc, opname, dst, srcs, imm, addr, taken, next_pc, fault = record
    if not isinstance(seq, int):
        raise _field_error(path, lineno, "seq", "must be an integer", seq)
    if seq != index:
        raise _field_error(path, lineno, "seq",
                           f"must equal the record index {index} "
                           f"(fetch and squash index the trace by seq)", seq)
    for field, value in (("pc", pc), ("imm", imm), ("next_pc", next_pc)):
        if not isinstance(value, int):
            raise _field_error(path, lineno, field, "must be an integer",
                               value)
    opcode = _OPCODES.get(opname) if isinstance(opname, str) else None
    if opcode is None:
        raise ValueError(
            f"{path}: line {lineno}: unknown opcode {opname!r}")
    if dst is not None and not isinstance(dst, int):
        raise _field_error(path, lineno, "dst", "must be an integer or null",
                           dst)
    if addr is not None and not isinstance(addr, int):
        raise _field_error(path, lineno, "addr",
                           "must be an integer or null", addr)
    if (not isinstance(srcs, list)
            or any(not isinstance(src, int) for src in srcs)):
        raise _field_error(path, lineno, "srcs",
                           "must be an array of integers", srcs)
    for field, value in (("taken", taken), ("fault", fault)):
        if value not in (0, 1, True, False):
            raise _field_error(path, lineno, field, "must be 0 or 1", value)
    return DynInstr(
        seq=seq, pc=pc, opcode=opcode, op_class=opcode.op_class,
        dst=dst, srcs=tuple(srcs), imm=imm, addr=addr,
        taken=bool(taken), next_pc=next_pc, fault=bool(fault),
        critical=False)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read and validate a trace file (accepts every supported version).

    The returned trace carries the header's ``meta`` dict as
    ``trace.meta`` (empty for v1 files).
    """
    path = Path(path)
    header = read_header(path)
    count = header["count"]
    instrs = []
    with path.open() as handle:
        handle.readline()                        # the validated header
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            if len(instrs) >= count:
                raise ValueError(
                    f"{path}: line {lineno}: {count} records promised by "
                    f"the header but more follow")
            instrs.append(_parse_record(line, lineno, len(instrs), path))
    if len(instrs) != count:
        raise ValueError(f"{path}: truncated trace ({len(instrs)} of "
                         f"{count} records)")
    trace = Trace(instrs, name=header.get("name", path.stem))
    trace.meta = dict(header.get("meta", {}))
    return trace


def validate_trace_file(path: Union[str, Path]) -> Dict[str, object]:
    """Fully parse a trace file; return a summary (raises on any defect)."""
    path = Path(path)
    trace = load_trace(path)
    header = read_header(path)
    return {"path": str(path), "version": header["version"],
            "name": trace.name, "count": len(trace),
            "sha256": file_sha256(path), "meta": trace.meta}


def convert_trace_file(src: Union[str, Path],
                       dst: Union[str, Path]) -> Dict[str, object]:
    """Rewrite a v1/v2 trace file in the current format; return summary."""
    src = Path(src)
    trace = load_trace(src)
    meta = dict(trace.meta)
    meta.setdefault("converted_from",
                    {"path": str(src),
                     "version": read_header(src)["version"]})
    save_trace(trace, dst, meta=meta)
    return validate_trace_file(dst)
