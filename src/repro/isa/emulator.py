"""Architectural (functional) emulator.

Executes a program in program order with exact semantics, producing the
dynamic trace the timing model replays.  Also usable standalone to check
kernel correctness (register/memory state after the run).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instructions import Instruction, OpClass, Opcode
from .program import Program
from .registers import NUM_ARCH_REGS, ZERO_REG
from .trace import DynInstr, Trace

_WORD_MASK = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return value - (1 << 64) if value >= (1 << 63) else value


class EmulatorError(Exception):
    """Raised on architecturally invalid execution (bad PC, div by zero...)."""


class Emulator:
    """Functional interpreter for :class:`Program`."""

    def __init__(self, program: Program, max_instrs: int = 1_000_000):
        program.validate()
        self.program = program
        self.max_instrs = max_instrs
        self.regs: List[float] = [0] * NUM_ARCH_REGS
        self.memory: Dict[int, float] = dict(program.data)
        self.pc = 0
        self.instr_count = 0
        self.halted = False

    # -- helpers -------------------------------------------------------

    def _read(self, reg: Optional[int]):
        if reg is None:
            return 0
        return 0 if reg == ZERO_REG else self.regs[reg]

    def _write(self, reg: Optional[int], value) -> None:
        if reg is None or reg == ZERO_REG:
            return
        self.regs[reg] = value

    def _mem_addr(self, instr: Instruction) -> int:
        base = self._read(instr.rs1)
        addr = (int(base) + instr.imm) & ~0x7
        if addr < 0:
            raise EmulatorError(
                f"pc {self.pc}: negative memory address {addr:#x}")
        return addr

    # -- execution ------------------------------------------------------

    def step(self) -> Optional[DynInstr]:
        """Execute one instruction; return its trace record (None if halted)."""
        if self.halted:
            return None
        if not 0 <= self.pc < len(self.program):
            raise EmulatorError(f"pc out of range: {self.pc}")
        if self.instr_count >= self.max_instrs:
            raise EmulatorError(
                f"instruction budget exhausted ({self.max_instrs}); "
                "likely an infinite loop")

        pc = self.pc
        instr = self.program[pc]
        op = instr.opcode
        cls = op.op_class
        addr: Optional[int] = None
        taken = False
        next_pc = pc + 1

        if cls is OpClass.INT_ALU:
            a = int(self._read(instr.rs1))
            b = int(self._read(instr.rs2))
            if op is Opcode.ADD:
                value = a + b
            elif op is Opcode.SUB:
                value = a - b
            elif op is Opcode.AND:
                value = a & b
            elif op is Opcode.OR:
                value = a | b
            elif op is Opcode.XOR:
                value = a ^ b
            elif op is Opcode.SLL:
                value = a << (b & 63)
            elif op is Opcode.SRL:
                value = (a & _WORD_MASK) >> (b & 63)
            elif op is Opcode.SLT:
                value = 1 if a < b else 0
            elif op is Opcode.ADDI:
                value = a + instr.imm
            elif op is Opcode.ANDI:
                value = a & instr.imm
            elif op is Opcode.ORI:
                value = a | instr.imm
            elif op is Opcode.XORI:
                value = a ^ instr.imm
            elif op is Opcode.SLTI:
                value = 1 if a < instr.imm else 0
            elif op is Opcode.SLLI:
                value = a << (instr.imm & 63)
            elif op is Opcode.SRLI:
                value = (a & _WORD_MASK) >> (instr.imm & 63)
            elif op is Opcode.LI:
                value = instr.imm
            else:  # pragma: no cover - enum is closed
                raise EmulatorError(f"unhandled ALU opcode {op}")
            self._write(instr.rd, _to_signed(value))
        elif cls is OpClass.INT_MUL:
            value = int(self._read(instr.rs1)) * int(self._read(instr.rs2))
            self._write(instr.rd, _to_signed(value))
        elif cls is OpClass.INT_DIV:
            a = int(self._read(instr.rs1))
            b = int(self._read(instr.rs2))
            if b == 0:
                # RISC-V defines division by zero (no trap): quotient -1,
                # remainder = dividend.
                value = -1 if op is Opcode.DIV else a
            else:
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                value = quotient if op is Opcode.DIV else a - b * quotient
            self._write(instr.rd, _to_signed(value))
        elif cls in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV):
            a = float(self._read(instr.rs1))
            b = float(self._read(instr.rs2))
            if op is Opcode.FADD:
                value = a + b
            elif op is Opcode.FSUB:
                value = a - b
            elif op is Opcode.FMUL:
                value = a * b
            else:  # FDIV — accrues status on /0, does not trap (IEEE + RISC-V)
                value = a / b if b != 0.0 else float("inf")
            self._write(instr.rd, value)
        elif cls is OpClass.LOAD:
            addr = self._mem_addr(instr)
            self._write(instr.rd, self.memory.get(addr, 0))
        elif cls is OpClass.STORE:
            addr = self._mem_addr(instr)
            self.memory[addr] = self._read(instr.rs2)
        elif cls is OpClass.BRANCH:
            a = int(self._read(instr.rs1))
            b = int(self._read(instr.rs2))
            if op is Opcode.BEQ:
                taken = a == b
            elif op is Opcode.BNE:
                taken = a != b
            elif op is Opcode.BLT:
                taken = a < b
            else:  # BGE
                taken = a >= b
            if taken:
                next_pc = instr.target
        elif cls is OpClass.JUMP:
            taken = True
            self._write(instr.rd, pc + 1)
            if op is Opcode.JAL:
                next_pc = instr.target
            else:  # JALR
                next_pc = int(self._read(instr.rs1)) + instr.imm
                if not 0 <= next_pc <= len(self.program):
                    raise EmulatorError(
                        f"pc {pc}: jalr to invalid target {next_pc}")
        elif op is Opcode.HALT:
            self.halted = True
        elif op in (Opcode.NOP, Opcode.FENCE):
            pass
        else:  # pragma: no cover - enum is closed
            raise EmulatorError(f"unhandled opcode {op}")

        record = DynInstr(
            seq=self.instr_count, pc=pc, opcode=op, op_class=cls,
            dst=instr.rd if instr.rd not in (None, ZERO_REG) else None,
            srcs=instr.sources(), imm=instr.imm, addr=addr, taken=taken,
            next_pc=next_pc, fault=instr.fault, critical=False)
        self.pc = next_pc
        self.instr_count += 1
        if self.pc >= len(self.program) and not self.halted:
            self.halted = True
        return record

    def run(self) -> Trace:
        """Execute to completion and return the dynamic trace."""
        instrs: List[DynInstr] = []
        while not self.halted:
            record = self.step()
            if record is None:
                break
            instrs.append(record)
        return Trace(instrs, name=self.program.name)


def trace_program(program: Program, max_instrs: int = 1_000_000) -> Trace:
    """Convenience wrapper: emulate ``program`` and return its trace."""
    return Emulator(program, max_instrs=max_instrs).run()
