"""Dynamic instruction trace.

The functional emulator executes a :class:`~repro.isa.program.Program`
architecturally and emits one :class:`DynInstr` record per retired
instruction.  The timing model (``repro.pipeline``) replays this trace:
it is the substitution for gem5's execution-driven front end (see
DESIGN.md) — branch outcomes and memory addresses are known, and the
pipeline charges misprediction and miss latencies against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .instructions import OpClass, Opcode


@dataclass
class DynInstr:
    """One dynamic (retired) instruction."""

    __slots__ = ("seq", "pc", "opcode", "op_class", "dst", "srcs", "imm",
                 "addr", "taken", "next_pc", "fault", "critical")

    seq: int                     # program-order index in the trace
    pc: int                      # static instruction index
    opcode: Opcode
    op_class: OpClass
    dst: Optional[int]           # flat architectural register id
    srcs: Tuple[int, ...]        # flat architectural register ids
    imm: int
    addr: Optional[int]          # effective byte address for memory ops
    taken: bool                  # branch/jump outcome
    next_pc: int                 # pc of the next dynamic instruction
    fault: bool                  # raises a page fault at translation
    critical: bool               # set by the criticality tagger

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.op_class is OpClass.LOAD or self.op_class is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH or self.op_class is OpClass.JUMP

    @property
    def is_cond_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    def __repr__(self) -> str:
        extra = ""
        if self.is_mem:
            extra = f" addr={self.addr:#x}"
        elif self.is_branch:
            extra = f" taken={self.taken} next={self.next_pc}"
        return f"<DynInstr #{self.seq} pc={self.pc} {self.opcode.mnemonic}{extra}>"


class Trace:
    """A sequence of dynamic instructions plus summary statistics."""

    def __init__(self, instrs: Sequence[DynInstr], name: str = "trace"):
        self.instrs: List[DynInstr] = list(instrs)
        self.name = name

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[DynInstr]:
        return iter(self.instrs)

    def __getitem__(self, seq: int) -> DynInstr:
        return self.instrs[seq]

    def class_mix(self) -> dict:
        """Fraction of dynamic instructions per op class."""
        counts: dict = {}
        for instr in self.instrs:
            counts[instr.op_class] = counts.get(instr.op_class, 0) + 1
        total = max(1, len(self.instrs))
        return {cls: count / total for cls, count in counts.items()}

    def summary(self) -> str:
        mix = self.class_mix()
        parts = [f"{cls.value}={frac:.1%}" for cls, frac in
                 sorted(mix.items(), key=lambda kv: -kv[1])]
        return f"{self.name}: {len(self)} instrs ({', '.join(parts)})"
