"""Architectural register name space.

The ISA models a RISC-V-like machine with 32 integer registers
(``x0``..``x31``, ``x0`` hardwired to zero) and 32 floating-point
registers (``f0``..``f31``).  Throughout the code base a register is
identified by a small integer: integer registers map to ``0..31`` and
floating-point registers to ``32..63``.  This flat id space keeps the
rename logic and dependency tracking uniform across both files.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Flat id of the hardwired zero register.
ZERO_REG = 0

#: Flat id of the first floating-point register.
FP_BASE = NUM_INT_REGS


def int_reg(index: int) -> int:
    """Return the flat register id of integer register ``x<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the flat register id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def is_fp(reg: int) -> bool:
    """Return True if the flat register id names a floating-point register."""
    return reg >= FP_BASE


def parse_reg(name: str) -> int:
    """Parse a register name (``x7``, ``f3``) into its flat id."""
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in "xf":
        raise ValueError(f"bad register name: {name!r}")
    try:
        index = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"bad register name: {name!r}") from exc
    return fp_reg(index) if name[0] == "f" else int_reg(index)


def reg_name(reg: int) -> str:
    """Return the canonical name of a flat register id."""
    if not 0 <= reg < NUM_ARCH_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if reg >= FP_BASE:
        return f"f{reg - FP_BASE}"
    return f"x{reg}"
