"""A small RISC-V-like ISA: definition, assembly, and functional emulation."""

from .assembler import AssemblerError, assemble
from .builder import ProgramBuilder
from .emulator import Emulator, EmulatorError, trace_program
from .instructions import (CTRL_CLASSES, FAULTING_CLASSES, MEM_CLASSES,
                           Instruction, OpClass, Opcode, opcode_from_mnemonic)
from .program import Program
from .registers import (FP_BASE, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS,
                        ZERO_REG, fp_reg, int_reg, is_fp, parse_reg, reg_name)
from .trace import DynInstr, Trace
from .tracefile import (convert_trace_file, file_sha256, load_trace,
                        read_header, save_trace, validate_trace_file)

__all__ = [
    "AssemblerError", "assemble", "ProgramBuilder", "Emulator",
    "EmulatorError", "trace_program", "CTRL_CLASSES", "FAULTING_CLASSES",
    "MEM_CLASSES", "Instruction", "OpClass", "Opcode",
    "opcode_from_mnemonic", "Program", "FP_BASE", "NUM_ARCH_REGS",
    "NUM_FP_REGS", "NUM_INT_REGS", "ZERO_REG", "fp_reg", "int_reg", "is_fp",
    "parse_reg", "reg_name", "DynInstr", "Trace", "convert_trace_file",
    "file_sha256", "load_trace", "read_header", "save_trace",
    "validate_trace_file",
]
