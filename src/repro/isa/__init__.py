"""A small RISC-V-like ISA: definition, assembly, and functional emulation."""

from .assembler import AssemblerError, assemble
from .builder import ProgramBuilder
from .emulator import Emulator, EmulatorError, trace_program
from .instructions import (CTRL_CLASSES, FAULTING_CLASSES, MEM_CLASSES,
                           Instruction, OpClass, Opcode, opcode_from_mnemonic)
from .program import Program
from .registers import (FP_BASE, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS,
                        ZERO_REG, fp_reg, int_reg, is_fp, parse_reg, reg_name)
from .trace import DynInstr, Trace
from .tracefile import load_trace, save_trace

__all__ = [
    "AssemblerError", "assemble", "ProgramBuilder", "Emulator",
    "EmulatorError", "trace_program", "CTRL_CLASSES", "FAULTING_CLASSES",
    "MEM_CLASSES", "Instruction", "OpClass", "Opcode",
    "opcode_from_mnemonic", "Program", "FP_BASE", "NUM_ARCH_REGS",
    "NUM_FP_REGS", "NUM_INT_REGS", "ZERO_REG", "fp_reg", "int_reg", "is_fp",
    "parse_reg", "reg_name", "DynInstr", "Trace", "load_trace",
    "save_trace",
]
