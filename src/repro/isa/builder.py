"""Programmatic assembly builder.

The workload kernels construct programs through this fluent API rather
than text assembly — it keeps register usage explicit and lets labels
be declared before or after their uses::

    b = ProgramBuilder("loop-demo")
    b.li("x1", 0)
    b.label("loop")
    b.addi("x1", "x1", 1)
    b.blt("x1", "x2", "loop")
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .instructions import Instruction, Opcode
from .program import Program
from .registers import parse_reg

RegLike = Union[str, int]


def _reg(value: RegLike) -> int:
    return parse_reg(value) if isinstance(value, str) else value


class ProgramBuilder:
    """Accumulates instructions and resolves labels at :meth:`build`."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._code: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, float] = {}

    # -- structure ---------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        if name in self._labels:
            raise ValueError(f"duplicate label: {name!r}")
        self._labels[name] = len(self._code)
        return self

    def data_word(self, addr: int, value: float) -> "ProgramBuilder":
        self._data[addr] = value
        return self

    def data_block(self, base: int, values) -> "ProgramBuilder":
        for i, value in enumerate(values):
            self._data[base + 8 * i] = value
        return self

    def emit(self, instr: Instruction) -> "ProgramBuilder":
        self._code.append(instr)
        return self

    def build(self) -> Program:
        code = []
        for instr in self._code:
            if isinstance(instr.target, str):
                if instr.target not in self._labels:
                    raise ValueError(f"undefined label: {instr.target!r}")
                instr = Instruction(
                    opcode=instr.opcode, rd=instr.rd, rs1=instr.rs1,
                    rs2=instr.rs2, imm=instr.imm,
                    target=self._labels[instr.target], fault=instr.fault)
            code.append(instr)
        program = Program(code=code, data=dict(self._data), name=self.name,
                          labels=dict(self._labels))
        program.validate()
        return program

    # -- ALU ----------------------------------------------------------

    def _rrr(self, op: Opcode, rd: RegLike, rs1: RegLike, rs2: RegLike):
        return self.emit(Instruction(op, rd=_reg(rd), rs1=_reg(rs1), rs2=_reg(rs2)))

    def _rri(self, op: Opcode, rd: RegLike, rs1: RegLike, imm: int):
        return self.emit(Instruction(op, rd=_reg(rd), rs1=_reg(rs1), imm=imm))

    def add(self, rd, rs1, rs2):
        return self._rrr(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._rrr(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._rrr(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._rrr(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._rrr(Opcode.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._rrr(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._rrr(Opcode.SRL, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._rrr(Opcode.SLT, rd, rs1, rs2)

    def addi(self, rd, rs1, imm):
        return self._rri(Opcode.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        return self._rri(Opcode.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        return self._rri(Opcode.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        return self._rri(Opcode.XORI, rd, rs1, imm)

    def slti(self, rd, rs1, imm):
        return self._rri(Opcode.SLTI, rd, rs1, imm)

    def slli(self, rd, rs1, imm):
        return self._rri(Opcode.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm):
        return self._rri(Opcode.SRLI, rd, rs1, imm)

    def li(self, rd, imm):
        return self.emit(Instruction(Opcode.LI, rd=_reg(rd), imm=imm))

    def mv(self, rd, rs1):
        return self._rri(Opcode.ADDI, rd, rs1, 0)

    def mul(self, rd, rs1, rs2):
        return self._rrr(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._rrr(Opcode.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        return self._rrr(Opcode.REM, rd, rs1, rs2)

    # -- floating point ------------------------------------------------

    def fadd(self, rd, rs1, rs2):
        return self._rrr(Opcode.FADD, rd, rs1, rs2)

    def fsub(self, rd, rs1, rs2):
        return self._rrr(Opcode.FSUB, rd, rs1, rs2)

    def fmul(self, rd, rs1, rs2):
        return self._rrr(Opcode.FMUL, rd, rs1, rs2)

    def fdiv(self, rd, rs1, rs2):
        return self._rrr(Opcode.FDIV, rd, rs1, rs2)

    # -- memory ---------------------------------------------------------

    def ld(self, rd, base, imm=0, fault=False):
        return self.emit(Instruction(Opcode.LD, rd=_reg(rd), rs1=_reg(base),
                                     imm=imm, fault=fault))

    def sd(self, src, base, imm=0, fault=False):
        return self.emit(Instruction(Opcode.SD, rs1=_reg(base), rs2=_reg(src),
                                     imm=imm, fault=fault))

    def fld(self, rd, base, imm=0, fault=False):
        return self.emit(Instruction(Opcode.FLD, rd=_reg(rd), rs1=_reg(base),
                                     imm=imm, fault=fault))

    def fsd(self, src, base, imm=0, fault=False):
        return self.emit(Instruction(Opcode.FSD, rs1=_reg(base), rs2=_reg(src),
                                     imm=imm, fault=fault))

    # -- control ---------------------------------------------------------

    def _branch(self, op: Opcode, rs1, rs2, target):
        return self.emit(Instruction(op, rs1=_reg(rs1), rs2=_reg(rs2),
                                     target=target))

    def beq(self, rs1, rs2, target):
        return self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target):
        return self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target):
        return self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target):
        return self._branch(Opcode.BGE, rs1, rs2, target)

    def jal(self, rd, target):
        return self.emit(Instruction(Opcode.JAL, rd=_reg(rd), target=target))

    def jalr(self, rd, rs1, imm=0):
        return self.emit(Instruction(Opcode.JALR, rd=_reg(rd), rs1=_reg(rs1),
                                     imm=imm))

    def j(self, target):
        return self.jal("x0", target)

    # -- system ---------------------------------------------------------

    def nop(self):
        return self.emit(Instruction(Opcode.NOP))

    def fence(self):
        return self.emit(Instruction(Opcode.FENCE))

    def halt(self):
        return self.emit(Instruction(Opcode.HALT))
