"""Branch target buffer: set-associative PC → target cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, sets: int = 512, ways: int = 4):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self._table = [OrderedDict() for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _set(self, pc: int) -> OrderedDict:
        return self._table[pc & (self.sets - 1)]

    def lookup(self, pc: int) -> Optional[int]:
        entry_set = self._set(pc)
        if pc in entry_set:
            entry_set.move_to_end(pc)
            self.hits += 1
            return entry_set[pc]
        self.misses += 1
        return None

    def insert(self, pc: int, target: int) -> None:
        entry_set = self._set(pc)
        if pc in entry_set:
            entry_set.move_to_end(pc)
        elif len(entry_set) >= self.ways:
            entry_set.popitem(last=False)
        entry_set[pc] = target
