"""TAGE: TAgged GEometric-history-length branch predictor.

A faithful (if compact) TAGE in the spirit of the paper's
TAGE-SC-L-8KB configuration: a bimodal base predictor plus ``num_tables``
tagged components indexed with geometrically growing global history
lengths.  Implements provider/alternate prediction, useful counters,
allocation on misprediction, and periodic useful-bit aging.

The SC (statistical corrector) and L (loop) sidecars refine accuracy by
a few percent and are omitted; DESIGN.md records the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .bimodal import BimodalPredictor


@dataclass
class TageEntry:
    tag: int = 0
    counter: int = 4        # 3-bit, midpoint 4, taken when >= 4
    useful: int = 0         # 2-bit useful counter


class TagePredictor:
    """TAGE with a bimodal base and tagged geometric components."""

    def __init__(self, num_tables: int = 6, table_entries: int = 512,
                 min_history: int = 4, max_history: int = 128,
                 tag_bits: int = 9, base_entries: int = 4096,
                 useful_reset_period: int = 256 * 1024):
        if table_entries & (table_entries - 1):
            raise ValueError("table_entries must be a power of two")
        self.base = BimodalPredictor(base_entries)
        self.num_tables = num_tables
        self.table_entries = table_entries
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.useful_reset_period = useful_reset_period
        # geometric history lengths
        self.history_lengths: List[int] = []
        ratio = (max_history / min_history) ** (1 / max(1, num_tables - 1))
        length = float(min_history)
        for _ in range(num_tables):
            self.history_lengths.append(int(round(length)))
            length *= ratio
        self.tables: List[List[TageEntry]] = [
            [TageEntry() for _ in range(table_entries)]
            for _ in range(num_tables)]
        self.history = 0
        self.history_bits = max_history
        self._updates = 0
        # state captured by predict() and consumed by update()
        self._provider: Optional[int] = None
        self._provider_index = 0
        self._alt_pred = False
        self._provider_pred = False

    # -- hashing -------------------------------------------------------

    def _folded_history(self, length: int, bits: int) -> int:
        history = self.history & ((1 << length) - 1)
        folded = 0
        while history:
            folded ^= history & ((1 << bits) - 1)
            history >>= bits
        return folded

    def _index(self, table: int, pc: int) -> int:
        length = self.history_lengths[table]
        bits = self.table_entries.bit_length() - 1
        return (pc ^ (pc >> bits) ^ self._folded_history(length, bits)) \
            & (self.table_entries - 1)

    def _tag(self, table: int, pc: int) -> int:
        length = self.history_lengths[table]
        return (pc ^ self._folded_history(length, self.tag_bits)
                ^ (self._folded_history(length, self.tag_bits - 1) << 1)) \
            & self.tag_mask

    # -- prediction ------------------------------------------------------

    def predict(self, pc: int) -> bool:
        self._provider = None
        self._alt_pred = self.base.predict(pc)
        prediction = self._alt_pred
        # longest matching component provides, next longest is the alt
        found_alt = False
        for table in range(self.num_tables - 1, -1, -1):
            index = self._index(table, pc)
            entry = self.tables[table][index]
            if entry.tag == self._tag(table, pc):
                if self._provider is None:
                    self._provider = table
                    self._provider_index = index
                    self._provider_pred = entry.counter >= 4
                    prediction = self._provider_pred
                else:
                    self._alt_pred = entry.counter >= 4
                    found_alt = True
                    break
        if self._provider is not None and not found_alt:
            self._alt_pred = self.base.predict(pc)
        return prediction

    # -- update -------------------------------------------------------------

    def update(self, pc: int, taken: bool) -> None:
        """Update with the outcome of the most recent predict(pc)."""
        mispredicted = False
        if self._provider is not None:
            entry = self.tables[self._provider][self._provider_index]
            mispredicted = self._provider_pred != taken
            if self._provider_pred != self._alt_pred:
                entry.useful = min(3, entry.useful + 1) \
                    if self._provider_pred == taken \
                    else max(0, entry.useful - 1)
            if taken:
                entry.counter = min(7, entry.counter + 1)
            else:
                entry.counter = max(0, entry.counter - 1)
        else:
            mispredicted = self.base.predict(pc) != taken
        self.base.update(pc, taken)

        if mispredicted:
            self._allocate(pc, taken)

        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)
        self._updates += 1
        if self._updates % self.useful_reset_period == 0:
            self._age_useful()

    def _allocate(self, pc: int, taken: bool) -> None:
        start = (self._provider + 1) if self._provider is not None else 0
        for table in range(start, self.num_tables):
            index = self._index(table, pc)
            entry = self.tables[table][index]
            if entry.useful == 0:
                entry.tag = self._tag(table, pc)
                entry.counter = 4 if taken else 3
                entry.useful = 0
                return
        # no victim: decay useful bits along the allocation path
        for table in range(start, self.num_tables):
            entry = self.tables[table][self._index(table, pc)]
            entry.useful = max(0, entry.useful - 1)

    def _age_useful(self) -> None:
        for table in self.tables:
            for entry in table:
                entry.useful >>= 1
