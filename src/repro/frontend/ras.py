"""Return address stack for predicting JALR returns."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Bounded call/return predictor stack (wraps on overflow)."""

    def __init__(self, depth: int = 32):
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) == self.depth:
            del self._stack[0]
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)
