"""Trace-driven fetch unit.

Feeds the pipeline from the dynamic trace, modelling the front end's
control-flow behaviour: a mispredicted branch stops fetch at the branch
(the machine is fetching the wrong path); when the branch resolves in
the back end, fetch resumes after a redirect penalty.  A taken
(correctly predicted) control transfer ends the fetch group for the
cycle, modelling one-taken-branch-per-cycle fetch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..isa import DynInstr, OpClass, Opcode, Trace
from .predictor import BranchPredictor

#: synthetic wrong-path instruction mix: mostly simple ALU work with the
#: occasional multiply, mirroring a typical integer path
_WP_OPCODES = (Opcode.ADD, Opcode.XOR, Opcode.ADDI, Opcode.SLL,
               Opcode.ADD, Opcode.MUL)


@dataclass
class FetchedInstr:
    """A fetched dynamic instruction with its prediction verdict."""

    instr: DynInstr
    mispredicted: bool
    wrong_path: bool = False


class FetchUnit:
    """Pulls instructions from the trace under prediction constraints.

    While stalled behind a mispredicted branch, the machine is really
    fetching down the wrong path; those instructions occupy IQ/ROB
    entries and compete for issue until the branch resolves.  The unit
    models this by emitting synthetic wrong-path instructions (see
    DESIGN.md) — they are what age-ordered selection protects the
    correct path from.
    """

    def __init__(self, trace: Trace, predictor: BranchPredictor,
                 width: int, redirect_penalty: int = 10,
                 model_wrong_path: bool = True):
        self.trace = trace
        self.predictor = predictor
        self.width = width
        self.redirect_penalty = redirect_penalty
        self.model_wrong_path = model_wrong_path
        self._next = 0
        #: seq of the mispredicted branch fetch is stalled behind
        self._stalled_on: Optional[int] = None
        #: cycle at which fetch may resume after a resolved redirect
        self._resume_at = 0
        self.fetched = 0
        self.stall_cycles = 0
        self.wrong_path_fetched = 0
        self._wp_counter = 0

    def exhausted(self) -> bool:
        return self._next >= len(self.trace)

    def _wrong_path_instr(self) -> DynInstr:
        self._wp_counter += 1
        opcode = _WP_OPCODES[self._wp_counter % len(_WP_OPCODES)]
        return DynInstr(
            seq=-self._wp_counter, pc=-1, opcode=opcode,
            op_class=opcode.op_class, dst=None, srcs=(), imm=0, addr=None,
            taken=False, next_pc=-1, fault=False, critical=False)

    def fetch(self, cycle: int, max_count: Optional[int] = None
              ) -> List[FetchedInstr]:
        """Fetch up to ``min(width, max_count)`` instructions this cycle."""
        if self.exhausted():
            return []
        if self._stalled_on is not None:
            self.stall_cycles += 1
            if not self.model_wrong_path:
                return []
            budget = self.width if max_count is None else min(self.width,
                                                              max_count)
            group = [FetchedInstr(self._wrong_path_instr(), False,
                                  wrong_path=True) for _ in range(budget)]
            self.wrong_path_fetched += len(group)
            return group
        if cycle < self._resume_at:
            self.stall_cycles += 1
            return []
        budget = self.width if max_count is None else min(self.width,
                                                          max_count)
        group: List[FetchedInstr] = []
        while budget > 0 and not self.exhausted():
            instr = self.trace[self._next]
            mispredicted = self.predictor.predict(instr) \
                if instr.is_branch else False
            group.append(FetchedInstr(instr, mispredicted))
            self._next += 1
            self.fetched += 1
            budget -= 1
            if mispredicted:
                # fetching proceeds down the wrong path; no further
                # correct-path instructions until the branch resolves
                self._stalled_on = instr.seq
                break
            if instr.is_branch and instr.taken:
                break  # taken transfer ends the fetch group
        return group

    def branch_resolved(self, seq: int, cycle: int) -> None:
        """The back end resolved branch ``seq`` at ``cycle``."""
        if self._stalled_on == seq:
            self._stalled_on = None
            self._resume_at = cycle + self.redirect_penalty

    def squash_to(self, seq: int, cycle: int) -> None:
        """Restart fetch after a non-branch squash (exception replay).

        Rewinds the trace pointer to the instruction right after ``seq``
        and charges the redirect penalty.
        """
        self._next = seq + 1
        self._stalled_on = None
        self._resume_at = cycle + self.redirect_penalty
