"""Branch prediction facade used by the fetch unit.

Combines a direction predictor, a BTB, and a return address stack.
Direct branches and jumps resolve their targets at (pre-)decode, so
target misprediction is modelled only for indirect jumps (JALR), which
predict through the RAS; conditional branches mispredict on direction.
``oracle`` (perfect) and ``btfn`` (static backward-taken/forward-not-
taken) predictors bound the design space in tests and ablations.
"""

from __future__ import annotations

from ..isa import DynInstr, Opcode
from .bimodal import BimodalPredictor
from .btb import BranchTargetBuffer
from .gshare import GsharePredictor
from .ras import ReturnAddressStack
from .tage import TagePredictor

#: linking conventions: JAL/JALR writing x1 is a call, JALR reading x1
#: with no link is a return.
_LINK_REG = 1


class BranchPredictor:
    """Per-instruction predict-and-update driver over the trace."""

    def __init__(self, direction, btb: BranchTargetBuffer = None,
                 ras: ReturnAddressStack = None):
        self.direction = direction
        self.btb = btb if btb is not None else BranchTargetBuffer()
        self.ras = ras if ras is not None else ReturnAddressStack()
        self.lookups = 0
        self.mispredicts = 0
        self.cond_lookups = 0
        self.cond_mispredicts = 0

    def predict(self, instr: DynInstr) -> bool:
        """Predict ``instr``; returns True when MISpredicted.

        The predictor is updated in the same call (in-order update at
        fetch — exact for a trace-driven model, see DESIGN.md).
        """
        self.lookups += 1
        if instr.op_class.value == "branch":
            self.cond_lookups += 1
            if self.direction is None:           # oracle
                predicted = instr.taken
            else:
                predicted = self.direction.predict(instr.pc)
                self.direction.update(instr.pc, instr.taken)
            if instr.taken:
                self.btb.insert(instr.pc, instr.next_pc)
            mispredicted = predicted != instr.taken
            if mispredicted:
                self.mispredicts += 1
                self.cond_mispredicts += 1
            return mispredicted
        # jumps
        if instr.opcode is Opcode.JAL:
            if instr.dst == _LINK_REG:
                self.ras.push(instr.pc + 1)
            return False                          # direct target, decoded
        if instr.opcode is Opcode.JALR:
            is_return = instr.dst is None and instr.srcs == (_LINK_REG,)
            if is_return:
                predicted_target = self.ras.pop()
            else:
                predicted_target = self.btb.lookup(instr.pc)
                if instr.dst == _LINK_REG:
                    self.ras.push(instr.pc + 1)
            self.btb.insert(instr.pc, instr.next_pc)
            mispredicted = predicted_target != instr.next_pc
            if mispredicted:
                self.mispredicts += 1
            return mispredicted
        return False

    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class _BTFNDirection:
    """Static backward-taken / forward-not-taken direction predictor."""

    def __init__(self):
        self._last_prediction = False

    def predict(self, pc: int) -> bool:
        # Without the target we cannot see direction; the fetch unit
        # only calls this for conditional branches whose targets are in
        # the static program — BTFN here degenerates to not-taken.
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


def make_predictor(kind: str = "tage", **kwargs) -> BranchPredictor:
    """Factory: ``tage`` (default), ``gshare``, ``bimodal``, ``btfn``,
    ``oracle``."""
    kind = kind.lower()
    if kind == "tage":
        return BranchPredictor(TagePredictor(**kwargs))
    if kind == "gshare":
        return BranchPredictor(GsharePredictor(**kwargs))
    if kind == "bimodal":
        return BranchPredictor(BimodalPredictor(**kwargs))
    if kind == "btfn":
        return BranchPredictor(_BTFNDirection())
    if kind == "oracle":
        return BranchPredictor(None)
    raise ValueError(f"unknown predictor kind: {kind!r}")
