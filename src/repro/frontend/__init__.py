"""Front end: branch prediction and trace-driven fetch."""

from .bimodal import BimodalPredictor, SaturatingCounter
from .btb import BranchTargetBuffer
from .fetch import FetchedInstr, FetchUnit
from .gshare import GsharePredictor
from .predictor import BranchPredictor, make_predictor
from .ras import ReturnAddressStack
from .tage import TagePredictor

__all__ = ["BimodalPredictor", "SaturatingCounter", "BranchTargetBuffer",
           "FetchedInstr", "FetchUnit", "GsharePredictor",
           "BranchPredictor", "make_predictor", "ReturnAddressStack",
           "TagePredictor"]
