"""Gshare: global history XORed into the PC index."""

from __future__ import annotations

from .bimodal import SaturatingCounter


class GsharePredictor:
    """Global-history predictor with a shared 2-bit counter table."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.history = 0
        self.table = [SaturatingCounter() for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)].taken

    def update(self, pc: int, taken: bool) -> None:
        self.table[self._index(pc)].update(taken)
        self.history = ((self.history << 1) | int(taken)) \
            & ((1 << self.history_bits) - 1)
