"""Bimodal branch predictor: a table of 2-bit saturating counters."""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating counter predicting taken when >= midpoint."""

    def __init__(self, bits: int = 2, value: int = None):
        self.max = (1 << bits) - 1
        self.mid = 1 << (bits - 1)
        self.value = self.mid if value is None else value

    @property
    def taken(self) -> bool:
        return self.value >= self.mid

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min(self.max, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class BimodalPredictor:
    """PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int = 4096):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.table = [SaturatingCounter() for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return pc & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)].taken

    def update(self, pc: int, taken: bool) -> None:
        self.table[self._index(pc)].update(taken)
