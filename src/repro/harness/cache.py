"""On-disk result cache for simulation cells.

Every experiment cell — one (``CoreConfig``, workload) pair — is pure:
the trace generators are seeded, the core model is deterministic, and a
run's :class:`~repro.pipeline.SimStats` depend only on the
configuration and the workload generation parameters.  That makes the
cell cacheable under a stable content key:

* every ``CoreConfig`` field (nested ``HierarchyConfig`` and the
  per-op-class latency table included),
* the workload name, scale, and the target's content fingerprint
  (:func:`repro.workloads.workload_fingerprint` — scaled generation
  parameters for synthetic kernels, the file sha256 for trace-file
  targets, the composition recipe for scenarios; any of these changing
  busts the key),
* for criticality runs, the profile configuration's fingerprint,
* the repro package version and the engine revision
  (:data:`repro.pipeline.ENGINE_VERSION` — bumped whenever the timing
  model's output could change, so stale entries can never hit).

Entries live as one JSON file per cell under ``benchmarks/.cache/``
(override with ``REPRO_CACHE_DIR``).  JSON round-trips Python ints and
floats exactly, so a cache hit reproduces the original ``SimStats``
bit-for-bit — the invariant the determinism suite enforces.

Entries are integrity-checked: each file wraps its payload as
``{"sha256": <hex>, "payload": {...}}`` where the hash covers the
canonical (sorted, separator-free) JSON of the payload.  A file that
fails to parse *or* fails its checksum is **quarantined** — renamed to
``<name>.corrupt`` beside the original, counted in
``ResultCache.corrupt``, and surfaced as a plain miss so the suite
recomputes the cell instead of crashing (or worse, silently trusting
a torn write).  Checksum-less entries written by older versions are
accepted once and rewritten in the checked format on read.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import warnings
from typing import Dict, Optional, Tuple

from ..pipeline import ENGINE_VERSION, CoreConfig, SimStats
from ..workloads import workload_fingerprint

#: bumped whenever the *key schema* changes (the payload layout below),
#: as distinct from ENGINE_VERSION (bumped when the timing model's
#: output could change).  v2: workloads are identified by their target
#: fingerprint (content identity) instead of generation params alone.
CACHE_KEY_VERSION = 2


def _repro_version() -> str:
    # lazy: repro/__init__ defines __version__ *after* importing harness
    import repro
    return getattr(repro, "__version__", "0")


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``<repo>/benchmarks/.cache``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return pathlib.Path(override)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / ".cache"
    return pathlib.Path.cwd() / "benchmarks" / ".cache"


def _jsonable(value):
    """Stable, JSON-serializable view of a config field value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {(key.name if isinstance(key, enum.Enum) else str(key)):
                _jsonable(val) for key, val in value.items()}
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def config_fingerprint(config: CoreConfig) -> Dict[str, object]:
    """Every field of the configuration, in JSON-stable form."""
    return _jsonable(config)


def cache_key(config: CoreConfig, workload: str, scale: float = 1.0,
              profile_config: Optional[CoreConfig] = None) -> str:
    """Stable content hash identifying one experiment cell."""
    try:
        target = workload_fingerprint(workload, scale)
    except ValueError:                 # ad-hoc name: key on name + scale
        target = {}
    payload = {
        "key_version": CACHE_KEY_VERSION,
        "version": _repro_version(),
        "engine": ENGINE_VERSION,
        "workload": workload,
        "scale": scale,
        "target": target,
        "config": config_fingerprint(config),
        "profile": (config_fingerprint(profile_config)
                    if profile_config is not None else None),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:40]


def payload_checksum(payload: Dict[str, object]) -> str:
    """sha256 over the canonical JSON encoding of a cache payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# warn at most once per process when corrupt entries are quarantined;
# the per-instance ``corrupt`` counter carries the full tally
_warned_corrupt = False


def _reset_corrupt_warning() -> None:
    """Test hook: re-arm the one-shot quarantine warning."""
    global _warned_corrupt
    _warned_corrupt = False


def stats_to_dict(stats: SimStats) -> Dict[str, object]:
    return dataclasses.asdict(stats)


def stats_from_dict(data: Dict[str, object]) -> SimStats:
    fields = {f.name for f in dataclasses.fields(SimStats)}
    return SimStats(**{k: v for k, v in data.items() if k in fields})


class ResultCache:
    """One-JSON-file-per-cell cache under a root directory.

    ``get``/``put`` handle full :class:`SimStats`; ``get_profile`` /
    ``put_profile`` handle the per-PC event counts a criticality
    profiling run produces, so dependent runs can reuse a profile
    across processes *and* across invocations.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    def _path(self, key: str, kind: str = "stats") -> pathlib.Path:
        suffix = ".json" if kind == "stats" else f".{kind}.json"
        return self.root / f"{key}{suffix}"

    def path_for(self, key: str, kind: str = "stats") -> pathlib.Path:
        """On-disk location of one entry (diagnostics / fault hooks)."""
        return self._path(key, kind)

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        global _warned_corrupt
        self.corrupt += 1
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            pass
        if not _warned_corrupt:
            _warned_corrupt = True
            warnings.warn(
                f"quarantined corrupt cache entry {path.name} ({reason}); "
                f"the cell will be recomputed — further corrupt entries "
                f"are counted silently", RuntimeWarning, stacklevel=4)

    def _load(self, path: pathlib.Path) -> Optional[dict]:
        """Read one entry, verifying its checksum.  Corrupt files are
        quarantined; legacy checksum-less files are migrated in place."""
        try:
            text = path.read_text()
        except OSError:
            return None                 # plain miss: no entry at all
        try:
            data = json.loads(text)
        except ValueError:
            self._quarantine(path, "unparseable JSON")
            return None
        if not isinstance(data, dict):
            self._quarantine(path, "not a JSON object")
            return None
        if set(data) == {"sha256", "payload"}:
            payload = data["payload"]
            if not isinstance(payload, dict) or \
                    data["sha256"] != payload_checksum(payload):
                self._quarantine(path, "checksum mismatch")
                return None
            return payload
        # pre-checksum entry: accept once, rewrite in the checked format
        self._store(path, data)
        return data

    def _store(self, path: pathlib.Path, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        wrapped = {"sha256": payload_checksum(payload), "payload": payload}
        # write-then-rename so a concurrent reader never sees a torn file
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(wrapped, sort_keys=True))
        tmp.replace(path)

    # -- SimStats cells ---------------------------------------------------

    def get(self, key: str) -> Optional[SimStats]:
        data = self._load(self._path(key))
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats_from_dict(data)

    def put(self, key: str, stats: SimStats) -> None:
        self._store(self._path(key), stats_to_dict(stats))

    def get_many(self, keys) -> Dict[str, SimStats]:
        """Probe many keys at once; returns only the hits.

        Duplicate keys (several cells sharing one cache entry) are
        loaded — and counted toward ``hits``/``misses`` — once.
        """
        found: Dict[str, SimStats] = {}
        for key in dict.fromkeys(keys):
            stats = self.get(key)
            if stats is not None:
                found[key] = stats
        return found

    # -- criticality profiles ---------------------------------------------

    def get_profile(self, key: str
                    ) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
        data = self._load(self._path(key, "profile"))
        if data is None or not {"l1_misses", "mispredicts"} <= set(data):
            return None
        return ({int(pc): count for pc, count in data["l1_misses"].items()},
                {int(pc): count for pc, count in data["mispredicts"].items()})

    def put_profile(self, key: str, pc_l1_misses: Dict[int, int],
                    pc_mispredicts: Dict[int, int]) -> None:
        self._store(self._path(key, "profile"),
                    {"l1_misses": pc_l1_misses,
                     "mispredicts": pc_mispredicts})
