"""Fault-isolated task dispatcher for the experiment harness.

The seed executor drove a persistent ``Pool.map``: one hung simulation
blocked the suite forever, a worker killed by the OOM killer aborted
the whole campaign with nothing to show, and there was no notion of a
partially-complete suite.  This module replaces it with a dispatcher
built for graceful degradation:

* **One duplex pipe per worker, no shared queues.**  Tasks go down a
  worker's pipe; results come back up the same pipe; worker death is
  observed via the process *sentinel* in the same
  :func:`multiprocessing.connection.wait` call that collects results.
  A SIGKILLed worker can never leave a shared lock held (there is
  none) and never wedges the parent.
* **Per-cell timeouts.**  Every in-flight cell carries a deadline
  (``timeout`` argument, ``$REPRO_CELL_TIMEOUT`` default); a cell past
  its deadline has its worker killed, the cell is recorded as
  ``timeout``, and a replacement worker is spawned.
* **Crash isolation + retries.**  A worker that dies mid-cell
  (segfault, ``os._exit``, OOM kill) is detected, the pool is
  replenished, and the cell is retried with capped exponential
  backoff (``$REPRO_RETRIES`` attempts beyond the first, default 1) —
  transient faults recover, hard faults end as a ``failed`` cell, and
  the rest of the suite is unaffected either way.
* **Typed outcomes.**  Every task ends as a :class:`TaskOutcome`
  carrying a :class:`CellStatus` (``ok | failed | timeout | cached``)
  and, for failures, a :class:`CellFailure` with the kind, message,
  traceback and (for in-worker exceptions) the crash-diagnostic
  bundle produced by :mod:`repro.harness.diagnostics`.
* **Clean interruption.**  Ctrl-C kills the pool, and
  :class:`SuiteInterrupted` (a ``KeyboardInterrupt`` subclass)
  reports exactly which cells finished — results already handed to
  ``on_complete`` (the cache-flush hook) are durable.

Determinism: the dispatcher never reorders *results* — outcomes are
keyed by task id and assembled in submission order by the caller — so
a fault-free run remains bit-identical to the serial reference
regardless of completion order, retries, or pool size.
"""

from __future__ import annotations

import atexit
import enum
import itertools
import multiprocessing
import multiprocessing.connection
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..envutil import env_float, env_int

__all__ = ["CellFailure", "CellStatus", "ResilientPool", "SuiteInterrupted",
           "TaskOutcome", "TaskSpec", "default_cell_timeout",
           "default_max_retries", "get_pool", "shutdown_pools"]


class CellStatus(str, enum.Enum):
    """Per-cell terminal status (JSON-serializable, compares to str)."""

    OK = "ok"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CACHED = "cached"

    def __str__(self) -> str:          # "ok", not "CellStatus.OK"
        return self.value


@dataclass
class CellFailure:
    """Why a cell did not produce stats."""

    #: "crash" (worker died), "timeout", "exception" (in-worker raise),
    #: or "dependency" (its profile cell failed upstream)
    kind: str
    message: str
    traceback: str = ""
    exitcode: Optional[int] = None
    attempts: int = 1
    #: path of the crash-diagnostic bundle, once written by the parent
    bundle: Optional[str] = None
    #: in-worker bundle payload awaiting a parent-side write
    bundle_data: Optional[dict] = None

    def summary(self) -> str:
        text = f"{self.kind}: {self.message}"
        if self.attempts > 1:
            text += f" (after {self.attempts} attempts)"
        if self.bundle:
            text += f" [bundle: {self.bundle}]"
        return text


@dataclass(frozen=True)
class TaskSpec:
    """One dispatchable unit of work.

    ``func`` must be a module-level callable (pickled by reference
    under ``spawn``) with signature ``func(payload, attempt) ->
    ("ok", value) | ("error", failure_dict)`` — it must catch its own
    exceptions and turn them into failure dicts; anything it *lets
    escape* is still caught by the worker loop as a last resort.
    """

    task_id: int
    cell_id: str
    func: Callable
    payload: tuple


@dataclass
class TaskOutcome:
    status: CellStatus
    value: object = None
    failure: Optional[CellFailure] = None
    attempts: int = 1


class SuiteInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-suite; carries exactly what finished."""

    def __init__(self, completed: Sequence[str], total: int):
        self.completed = list(completed)
        self.total = total
        done = ", ".join(self.completed) if self.completed else "none"
        super().__init__(
            f"interrupted with {len(self.completed)}/{total} cells "
            f"finished (completed: {done})")


def default_cell_timeout() -> Optional[float]:
    """Per-cell timeout from ``$REPRO_CELL_TIMEOUT`` (seconds;
    unset/non-positive → no timeout)."""
    value = env_float("REPRO_CELL_TIMEOUT")
    return value if value is not None and value > 0 else None


def default_max_retries() -> int:
    """Crash-retry budget from ``$REPRO_RETRIES`` (default 1)."""
    return max(0, env_int("REPRO_RETRIES", 1))


# -- worker side -----------------------------------------------------------

def _worker_main(conn) -> None:
    """Worker loop: recv (task_id, func, payload, attempt) → send
    (task_id, status, value).  SIGINT is ignored so Ctrl-C interrupts
    only the parent, which then tears the pool down deliberately."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, func, payload, attempt = message
        try:
            status, value = func(payload, attempt)
        except BaseException as exc:    # belt and braces: guarded funcs
            status = "error"            # should not raise
            value = {"kind": "exception",
                     "message": f"{type(exc).__name__}: {exc}",
                     "traceback": traceback.format_exc(),
                     "bundle": None}
        try:
            conn.send((task_id, status, value))
        except (BrokenPipeError, OSError):
            break


class _WorkerHandle:
    """A live worker process plus its pipe and current assignment."""

    __slots__ = ("proc", "conn", "task", "attempt", "deadline")

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main, args=(child_conn,),
                                daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[TaskSpec] = None
        self.attempt = 0
        self.deadline: Optional[float] = None

    def close(self, kill: bool = False) -> None:
        try:
            if kill:
                self.proc.kill()
            else:
                try:
                    self.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            self.proc.join(timeout=5)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=5)
        finally:
            self.conn.close()


@dataclass
class _Pending:
    task: TaskSpec
    attempt: int = 1
    eligible_at: float = 0.0


class ResilientPool:
    """A replenishing pool of spawn workers with a dispatch loop.

    Pools persist across :meth:`run` calls (worker spawn + import is
    paid once per process lifetime, as with the seed's ``Pool``); the
    dispatcher replaces any worker it loses, so a pool survives its
    workers indefinitely.
    """

    #: capped exponential backoff for crash retries (seconds)
    BACKOFF_BASE = 0.25
    BACKOFF_CAP = 4.0
    #: dispatch-loop poll ceiling (seconds)
    POLL = 0.5

    def __init__(self, workers: int):
        self.workers = workers
        self.ctx = multiprocessing.get_context("spawn")
        self.handles: List[_WorkerHandle] = [
            _WorkerHandle(self.ctx) for _ in range(workers)]

    # -- lifecycle ---------------------------------------------------------

    def _respawn(self, handle: _WorkerHandle,
                 kill: bool = False) -> _WorkerHandle:
        handle.close(kill=kill)
        replacement = _WorkerHandle(self.ctx)
        self.handles[self.handles.index(handle)] = replacement
        return replacement

    def shutdown(self, kill: bool = False) -> None:
        for handle in self.handles:
            handle.close(kill=kill)
        self.handles = []

    # -- the dispatch loop -------------------------------------------------

    def run(self, tasks: Sequence[TaskSpec],
            timeout: Optional[float] = None,
            retries: int = 0,
            on_complete: Optional[Callable[[TaskSpec, TaskOutcome],
                                           None]] = None
            ) -> Dict[int, TaskOutcome]:
        """Execute every task; return ``{task_id: TaskOutcome}``.

        Never raises for a failing *task*; raises
        :class:`SuiteInterrupted` on Ctrl-C after killing the pool.
        """
        outcomes: Dict[int, TaskOutcome] = {}
        pending: List[_Pending] = [_Pending(task) for task in tasks]
        completed_cells: List[str] = []

        def finish(task: TaskSpec, outcome: TaskOutcome) -> None:
            outcomes[task.task_id] = outcome
            if outcome.status is CellStatus.OK:
                completed_cells.append(task.cell_id)
            if on_complete is not None:
                on_complete(task, outcome)

        try:
            while len(outcomes) < len(tasks):
                now = time.monotonic()
                self._assign(pending, now, timeout)
                busy = [h for h in self.handles if h.task is not None]
                if not busy:
                    if not pending:
                        break            # all accounted for
                    # every pending task is backing off; sleep it out
                    delay = min(p.eligible_at for p in pending) - now
                    time.sleep(min(max(delay, 0.01), self.POLL))
                    continue
                self._wait(busy, pending, now, timeout)
                now = time.monotonic()
                for handle in busy:
                    if handle.task is None:
                        continue
                    # a dead worker's pipe end reads as EOF, so poll()
                    # is True for results AND for death — _collect
                    # disambiguates and reports EOF as not-collected
                    if handle.conn.poll() and self._collect(handle,
                                                            finish):
                        continue
                    if not handle.proc.is_alive() or handle.conn.poll():
                        self._on_death(handle, pending, retries, now,
                                       finish)
                    elif (handle.deadline is not None
                          and now >= handle.deadline):
                        self._on_timeout(handle, finish)
        except KeyboardInterrupt:
            # kill, don't drain: a hung worker would block a graceful
            # close.  Completed cells were already flushed via
            # on_complete, so nothing durable is lost.
            self.shutdown(kill=True)
            _forget_pool(self)
            raise SuiteInterrupted(completed_cells, len(tasks)) from None
        return outcomes

    # -- loop steps --------------------------------------------------------

    def _assign(self, pending: List[_Pending], now: float,
                timeout: Optional[float]) -> None:
        for handle in self.handles:
            if handle.task is not None:
                continue
            index = next((i for i, p in enumerate(pending)
                          if p.eligible_at <= now), None)
            if index is None:
                return
            item = pending[index]
            if not handle.proc.is_alive():   # died while idle
                handle = self._respawn(handle)
            try:
                handle.conn.send((item.task.task_id, item.task.func,
                                  item.task.payload, item.attempt))
            except (BrokenPipeError, OSError):
                self._respawn(handle)        # retry next loop iteration
                return
            del pending[index]
            handle.task = item.task
            handle.attempt = item.attempt
            handle.deadline = (now + timeout) if timeout else None

    def _wait(self, busy: List[_WorkerHandle], pending: List[_Pending],
              now: float, timeout: Optional[float]) -> None:
        poll = self.POLL
        if timeout is not None:
            poll = min(poll, max(0.0, min(h.deadline for h in busy) - now))
        waitable = [h.conn for h in busy] + [h.proc.sentinel for h in busy]
        if poll > 0:
            multiprocessing.connection.wait(waitable, timeout=poll)

    def _collect(self, handle: _WorkerHandle,
                 finish: Callable[[TaskSpec, TaskOutcome], None]) -> bool:
        """Consume one result; False when poll() was EOF (dead worker)."""
        task, attempt = handle.task, handle.attempt
        try:
            task_id, status, value = handle.conn.recv()
        except (EOFError, OSError):
            return False                 # pipe closed: the worker died
        if task_id != task.task_id:      # cannot happen: one in-flight
            return True                  # task per pipe; drop stale data
        handle.task, handle.deadline = None, None
        if status == "ok":
            finish(task, TaskOutcome(CellStatus.OK, value=value,
                                     attempts=attempt))
        else:
            failure = CellFailure(
                kind=value.get("kind", "exception"),
                message=value.get("message", "worker error"),
                traceback=value.get("traceback", ""),
                attempts=attempt,
                bundle_data=value.get("bundle"))
            finish(task, TaskOutcome(CellStatus.FAILED, failure=failure,
                                     attempts=attempt))
        return True

    def _on_death(self, handle: _WorkerHandle, pending: List[_Pending],
                  retries: int, now: float,
                  finish: Callable[[TaskSpec, TaskOutcome], None]) -> None:
        task, attempt = handle.task, handle.attempt
        handle.proc.join(timeout=5)      # EOF can precede process exit
        exitcode = handle.proc.exitcode
        self._respawn(handle)
        if attempt <= retries:
            backoff = min(self.BACKOFF_CAP,
                          self.BACKOFF_BASE * (2 ** (attempt - 1)))
            pending.append(_Pending(task, attempt + 1, now + backoff))
            return
        failure = CellFailure(
            kind="crash",
            message=(f"worker died (exitcode {exitcode}) while running "
                     f"{task.cell_id}"),
            exitcode=exitcode, attempts=attempt)
        finish(task, TaskOutcome(CellStatus.FAILED, failure=failure,
                                 attempts=attempt))

    def _on_timeout(self, handle: _WorkerHandle,
                    finish: Callable[[TaskSpec, TaskOutcome], None]) -> None:
        task, attempt = handle.task, handle.attempt
        self._respawn(handle, kill=True)
        failure = CellFailure(
            kind="timeout",
            message=f"cell {task.cell_id} exceeded its timeout",
            attempts=attempt)
        finish(task, TaskOutcome(CellStatus.TIMEOUT, failure=failure,
                                 attempts=attempt))


# -- pool registry ---------------------------------------------------------
# Pools persist across run_suite calls so a pytest session (or a CLI
# figure with several sub-suites) pays worker spawn + import once.

_POOLS: Dict[int, ResilientPool] = {}
_TASK_IDS = itertools.count(1)


def next_task_id() -> int:
    """Process-unique task ids (stale results can never alias)."""
    return next(_TASK_IDS)


def get_pool(workers: int) -> ResilientPool:
    pool = _POOLS.get(workers)
    if pool is None or not pool.handles:
        pool = ResilientPool(workers)
        _POOLS[workers] = pool
    return pool


def _forget_pool(pool: ResilientPool) -> None:
    for workers, cached in list(_POOLS.items()):
        if cached is pool:
            del _POOLS[workers]


def shutdown_pools() -> None:
    """Terminate every cached worker pool (also runs atexit)."""
    for pool in _POOLS.values():
        pool.shutdown(kill=True)
    _POOLS.clear()


atexit.register(shutdown_pools)
