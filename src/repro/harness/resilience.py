"""Fault-isolated task dispatcher for the experiment harness.

The seed executor drove a persistent ``Pool.map``: one hung simulation
blocked the suite forever, a worker killed by the OOM killer aborted
the whole campaign with nothing to show, and there was no notion of a
partially-complete suite.  This module replaces it with a dispatcher
built for graceful degradation:

* **One duplex pipe per worker, no shared queues.**  Tasks go down a
  worker's pipe; results come back up the same pipe; worker death is
  observed via the process *sentinel* in the same
  :func:`multiprocessing.connection.wait` call that collects results.
  A SIGKILLed worker can never leave a shared lock held (there is
  none) and never wedges the parent.
* **Batched (chunked) dispatch.**  Short cells used to pay one pipe
  round-trip each; :meth:`ResilientPool.run` now sends each worker a
  *chunk* of tasks per message, sized automatically from the per-cell
  timing estimates carried on :class:`TaskSpec` (``--chunk`` /
  ``$REPRO_CHUNK`` override).  The worker streams **one result per
  cell** back up the pipe as it finishes, so per-cell statuses,
  timeout accounting, and interrupt reporting are unchanged — the
  chunk is a transport optimisation, not a unit of failure.  The cell
  a worker is executing is always the first chunk member without a
  result (cells run in order), which is how a mid-chunk death is
  attributed to the right cell: finished chunk-mates keep their
  results, the in-flight cell is retried or failed, and not-yet-
  started chunk-mates are re-queued with no attempt penalty.  Cells
  on their retry attempt are dispatched alone so a hard-crashing cell
  cannot repeatedly evict innocent chunk-mates.
* **Per-cell timeouts.**  Every in-flight cell carries a deadline
  (``timeout`` argument, ``$REPRO_CELL_TIMEOUT`` default); a cell past
  its deadline has its worker killed, the cell is recorded as
  ``timeout``, and a replacement worker is spawned.
* **Crash isolation + retries.**  A worker that dies mid-cell
  (segfault, ``os._exit``, OOM kill) is detected, the pool is
  replenished, and the cell is retried with capped exponential
  backoff (``$REPRO_RETRIES`` attempts beyond the first, default 1) —
  transient faults recover, hard faults end as a ``failed`` cell, and
  the rest of the suite is unaffected either way.
* **Typed outcomes.**  Every task ends as a :class:`TaskOutcome`
  carrying a :class:`CellStatus` (``ok | failed | timeout | cached``)
  and, for failures, a :class:`CellFailure` with the kind, message,
  traceback and (for in-worker exceptions) the crash-diagnostic
  bundle produced by :mod:`repro.harness.diagnostics`.
* **Clean interruption.**  Ctrl-C kills the pool, and
  :class:`SuiteInterrupted` (a ``KeyboardInterrupt`` subclass)
  reports exactly which cells finished — results already handed to
  ``on_complete`` (the cache-flush hook) are durable.

Determinism: the dispatcher never reorders *results* — outcomes are
keyed by task id and assembled in submission order by the caller — so
a fault-free run remains bit-identical to the serial reference
regardless of completion order, retries, or pool size.
"""

from __future__ import annotations

import atexit
import enum
import itertools
import multiprocessing
import multiprocessing.connection
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..envutil import env_float, env_int

__all__ = ["CellFailure", "CellStatus", "ResilientPool", "SuiteInterrupted",
           "TaskOutcome", "TaskSpec", "default_cell_timeout",
           "default_chunk_size", "default_max_retries", "get_pool",
           "shutdown_pools"]


class CellStatus(str, enum.Enum):
    """Per-cell terminal status (JSON-serializable, compares to str)."""

    OK = "ok"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CACHED = "cached"

    def __str__(self) -> str:          # "ok", not "CellStatus.OK"
        return self.value


@dataclass
class CellFailure:
    """Why a cell did not produce stats."""

    #: "crash" (worker died), "timeout", "exception" (in-worker raise),
    #: or "dependency" (its profile cell failed upstream)
    kind: str
    message: str
    traceback: str = ""
    exitcode: Optional[int] = None
    attempts: int = 1
    #: path of the crash-diagnostic bundle, once written by the parent
    bundle: Optional[str] = None
    #: in-worker bundle payload awaiting a parent-side write
    bundle_data: Optional[dict] = None

    def summary(self) -> str:
        text = f"{self.kind}: {self.message}"
        if self.attempts > 1:
            text += f" (after {self.attempts} attempts)"
        if self.bundle:
            text += f" [bundle: {self.bundle}]"
        return text


@dataclass(frozen=True)
class TaskSpec:
    """One dispatchable unit of work.

    ``func`` must be a module-level callable (pickled by reference
    under ``spawn``) with signature ``func(payload, attempt) ->
    ("ok", value) | ("error", failure_dict)`` — it must catch its own
    exceptions and turn them into failure dicts; anything it *lets
    escape* is still caught by the worker loop as a last resort.
    """

    task_id: int
    cell_id: str
    func: Callable
    payload: tuple
    #: rough wall-clock estimate for this cell (seconds; 0 = unknown),
    #: used only to auto-size dispatch chunks — never affects results
    est_seconds: float = 0.0


@dataclass
class TaskOutcome:
    status: CellStatus
    value: object = None
    failure: Optional[CellFailure] = None
    attempts: int = 1
    #: seconds the task waited between enqueue and actual dispatch to
    #: a worker (0 on the serial path and for cache hits)
    queued_s: float = 0.0


class SuiteInterrupted(KeyboardInterrupt):
    """Ctrl-C landed mid-suite; carries exactly what finished."""

    def __init__(self, completed: Sequence[str], total: int):
        self.completed = list(completed)
        self.total = total
        done = ", ".join(self.completed) if self.completed else "none"
        super().__init__(
            f"interrupted with {len(self.completed)}/{total} cells "
            f"finished (completed: {done})")


def default_cell_timeout() -> Optional[float]:
    """Per-cell timeout from ``$REPRO_CELL_TIMEOUT`` (seconds;
    unset/non-positive → no timeout)."""
    value = env_float("REPRO_CELL_TIMEOUT")
    return value if value is not None and value > 0 else None


def default_max_retries() -> int:
    """Crash-retry budget from ``$REPRO_RETRIES`` (default 1)."""
    return max(0, env_int("REPRO_RETRIES", 1))


def default_chunk_size() -> Optional[int]:
    """Dispatch chunk size from ``$REPRO_CHUNK`` (unset/0 → auto)."""
    value = env_int("REPRO_CHUNK", 0)
    return value if value > 0 else None


# -- worker side -----------------------------------------------------------

def _worker_main(conn) -> None:
    """Worker loop: recv a *chunk* ``[(task_id, func, payload,
    attempt), ...]`` → send one ``(task_id, status, value)`` per cell,
    in order, as each finishes.  Results stream back immediately so
    the parent always knows which cell is in flight (the first one it
    has no result for) and a mid-chunk death loses at most one cell's
    work.  Any in-process memoisation the task funcs maintain (the
    workload trace LRU) naturally persists across chunks because the
    process does.  SIGINT is ignored so Ctrl-C interrupts only the
    parent, which then tears the pool down deliberately."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        for task_id, func, payload, attempt in message:
            try:
                status, value = func(payload, attempt)
            except BaseException as exc:  # belt and braces: guarded
                status = "error"          # funcs should not raise
                value = {"kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}",
                         "traceback": traceback.format_exc(),
                         "bundle": None}
            try:
                conn.send((task_id, status, value))
            except (BrokenPipeError, OSError):
                return


class _WorkerHandle:
    """A live worker process plus its pipe and current chunk.

    ``chunk[cursor]`` is the in-flight cell: cells run strictly in
    chunk order and results stream back per cell, so the first member
    without a result is — by construction — the one a death or
    timeout must be attributed to.
    """

    __slots__ = ("proc", "conn", "chunk", "cursor", "deadline",
                 "dispatched_at")

    def __init__(self, ctx):
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main, args=(child_conn,),
                                daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.chunk: List["_Pending"] = []
        self.cursor = 0
        self.deadline: Optional[float] = None
        #: when the in-flight cell was handed to the worker (monotonic)
        self.dispatched_at = 0.0

    @property
    def busy(self) -> bool:
        return self.cursor < len(self.chunk)

    @property
    def inflight(self) -> "_Pending":
        return self.chunk[self.cursor]

    def close(self, kill: bool = False) -> None:
        try:
            if kill:
                self.proc.kill()
            else:
                try:
                    self.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            self.proc.join(timeout=5)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=5)
        finally:
            self.conn.close()


@dataclass
class _Pending:
    task: TaskSpec
    attempt: int = 1
    eligible_at: float = 0.0
    #: when the task entered this run's queue (monotonic); survives
    #: chunk re-queues so queued_s reports true waiting time
    enqueued_at: float = 0.0


class ResilientPool:
    """A replenishing pool of spawn workers with a dispatch loop.

    Pools persist across :meth:`run` calls (worker spawn + import is
    paid once per process lifetime, as with the seed's ``Pool``); the
    dispatcher replaces any worker it loses, so a pool survives its
    workers indefinitely.  :meth:`resize` grows or shrinks the pool in
    place, so a one-off wide run never strands idle spawn processes.
    """

    #: capped exponential backoff for crash retries (seconds)
    BACKOFF_BASE = 0.25
    BACKOFF_CAP = 4.0
    #: dispatch-loop poll ceiling (seconds)
    POLL = 0.5
    #: auto chunk sizing: aim for ~this much estimated work per
    #: round-trip; small enough that timeouts and load balancing keep
    #: their granularity, large enough to amortise dispatch overhead
    CHUNK_TARGET_SECONDS = 1.0
    #: auto chunk size when tasks carry no timing estimates
    CHUNK_DEFAULT = 4
    #: hard ceiling on auto-sized chunks
    CHUNK_CAP = 32

    def __init__(self, workers: int):
        self.workers = workers
        self.ctx = multiprocessing.get_context("spawn")
        self.handles: List[_WorkerHandle] = [
            _WorkerHandle(self.ctx) for _ in range(workers)]

    # -- lifecycle ---------------------------------------------------------

    def _respawn(self, handle: _WorkerHandle,
                 kill: bool = False) -> _WorkerHandle:
        handle.close(kill=kill)
        replacement = _WorkerHandle(self.ctx)
        self.handles[self.handles.index(handle)] = replacement
        return replacement

    def resize(self, workers: int) -> None:
        """Grow or shrink the pool to exactly ``workers`` processes.

        Only valid between :meth:`run` calls (every handle idle):
        surplus workers are retired gracefully, missing ones spawned.
        """
        workers = max(1, workers)
        while len(self.handles) > workers:
            self.handles.pop().close()
        while len(self.handles) < workers:
            self.handles.append(_WorkerHandle(self.ctx))
        self.workers = workers

    def shutdown(self, kill: bool = False) -> None:
        for handle in self.handles:
            handle.close(kill=kill)
        self.handles = []

    # -- the dispatch loop -------------------------------------------------

    def run(self, tasks: Sequence[TaskSpec],
            timeout: Optional[float] = None,
            retries: int = 0,
            on_complete: Optional[Callable[[TaskSpec, TaskOutcome],
                                           None]] = None,
            chunk: Optional[int] = None) -> Dict[int, TaskOutcome]:
        """Execute every task; return ``{task_id: TaskOutcome}``.

        ``chunk`` fixes the number of cells per dispatch message
        (``None`` auto-sizes from the tasks' ``est_seconds``).  The
        ``timeout`` stays **per cell**: the deadline re-arms each time
        a chunk member's result arrives.  Never raises for a failing
        *task*; raises :class:`SuiteInterrupted` on Ctrl-C after
        killing the pool.
        """
        start = time.monotonic()
        outcomes: Dict[int, TaskOutcome] = {}
        pending: List[_Pending] = [_Pending(task, enqueued_at=start)
                                   for task in tasks]
        completed_cells: List[str] = []
        chunk_size = chunk if chunk and chunk > 0 else \
            self._auto_chunk(tasks)

        def finish(task: TaskSpec, outcome: TaskOutcome) -> None:
            outcomes[task.task_id] = outcome
            if outcome.status is CellStatus.OK:
                completed_cells.append(task.cell_id)
            if on_complete is not None:
                on_complete(task, outcome)

        try:
            while len(outcomes) < len(tasks):
                now = time.monotonic()
                self._assign(pending, now, timeout, chunk_size)
                busy = [h for h in self.handles if h.busy]
                if not busy:
                    if not pending:
                        break            # all accounted for
                    # every pending task is backing off; sleep it out
                    delay = min(p.eligible_at for p in pending) - now
                    time.sleep(min(max(delay, 0.01), self.POLL))
                    continue
                self._wait(busy, pending, now, timeout)
                now = time.monotonic()
                for handle in busy:
                    if not handle.busy:
                        continue
                    # a dead worker's pipe end reads as EOF, so poll()
                    # is True for results AND for death — _collect
                    # disambiguates and reports EOF as not-collected.
                    # Drain every buffered result: a dying worker's
                    # completed chunk-mates are collected before the
                    # death is handled, so their work is never lost.
                    dead = False
                    while handle.busy and handle.conn.poll():
                        if not self._collect(handle, finish, timeout):
                            dead = True
                            break
                    if not handle.busy:
                        continue
                    if dead or not handle.proc.is_alive():
                        self._on_death(handle, pending, retries, now,
                                       finish)
                    elif (handle.deadline is not None
                          and now >= handle.deadline):
                        self._on_timeout(handle, pending, finish)
        except KeyboardInterrupt:
            # kill, don't drain: a hung worker would block a graceful
            # close.  Completed cells were already flushed via
            # on_complete, so nothing durable is lost.
            self.shutdown(kill=True)
            _forget_pool(self)
            raise SuiteInterrupted(completed_cells, len(tasks)) from None
        return outcomes

    # -- loop steps --------------------------------------------------------

    def _auto_chunk(self, tasks: Sequence[TaskSpec]) -> int:
        """Chunk size targeting ``CHUNK_TARGET_SECONDS`` of estimated
        work per round-trip, never starving a worker of its share."""
        if not tasks:
            return 1
        estimates = sorted(t.est_seconds for t in tasks
                           if t.est_seconds > 0)
        if estimates:
            typical = estimates[len(estimates) // 2]
            size = int(self.CHUNK_TARGET_SECONDS / typical) \
                if typical > 0 else self.CHUNK_CAP
        else:
            size = self.CHUNK_DEFAULT
        fair_share = -(-len(tasks) // max(1, len(self.handles) or
                                          self.workers))
        return max(1, min(size, fair_share, self.CHUNK_CAP))

    def _assign(self, pending: List[_Pending], now: float,
                timeout: Optional[float], chunk_size: int) -> None:
        for handle in self.handles:
            if handle.busy:
                continue
            eligible = [i for i, p in enumerate(pending)
                        if p.eligible_at <= now]
            if not eligible:
                return
            # retry attempts ride alone: a hard-crashing cell must not
            # take fresh chunk-mates down with it on every attempt
            if pending[eligible[0]].attempt > 1:
                take = eligible[:1]
            else:
                take = [i for i in eligible
                        if pending[i].attempt == 1][:chunk_size]
            items = [pending[i] for i in take]
            if not handle.proc.is_alive():   # died while idle
                handle = self._respawn(handle)
            try:
                handle.conn.send([(p.task.task_id, p.task.func,
                                   p.task.payload, p.attempt)
                                  for p in items])
            except (BrokenPipeError, OSError):
                self._respawn(handle)        # retry next loop iteration
                return
            for i in reversed(take):
                del pending[i]
            handle.chunk = items
            handle.cursor = 0
            handle.dispatched_at = now
            handle.deadline = (now + timeout) if timeout else None

    def _wait(self, busy: List[_WorkerHandle], pending: List[_Pending],
              now: float, timeout: Optional[float]) -> None:
        poll = self.POLL
        if timeout is not None:
            poll = min(poll, max(0.0, min(h.deadline for h in busy) - now))
        waitable = [h.conn for h in busy] + [h.proc.sentinel for h in busy]
        if poll > 0:
            multiprocessing.connection.wait(waitable, timeout=poll)

    def _collect(self, handle: _WorkerHandle,
                 finish: Callable[[TaskSpec, TaskOutcome], None],
                 timeout: Optional[float]) -> bool:
        """Consume one result; False when poll() was EOF (dead worker)."""
        item = handle.inflight
        try:
            task_id, status, value = handle.conn.recv()
        except (EOFError, OSError):
            return False                 # pipe closed: the worker died
        if task_id != item.task.task_id:  # cannot happen: in-order
            return True                   # streaming; drop stale data
        task, attempt = item.task, item.attempt
        queued = max(0.0, handle.dispatched_at - item.enqueued_at)
        handle.cursor += 1
        if handle.busy:
            # the next chunk member started in-worker the moment this
            # result was sent: re-arm its per-cell deadline and stamp
            # its dispatch time
            now = time.monotonic()
            handle.dispatched_at = now
            handle.deadline = (now + timeout) if timeout else None
        else:
            handle.chunk, handle.cursor = [], 0
            handle.deadline = None
        if status == "ok":
            finish(task, TaskOutcome(CellStatus.OK, value=value,
                                     attempts=attempt, queued_s=queued))
        else:
            failure = CellFailure(
                kind=value.get("kind", "exception"),
                message=value.get("message", "worker error"),
                traceback=value.get("traceback", ""),
                attempts=attempt,
                bundle_data=value.get("bundle"))
            finish(task, TaskOutcome(CellStatus.FAILED, failure=failure,
                                     attempts=attempt, queued_s=queued))
        return True

    def _requeue_survivors(self, handle: _WorkerHandle,
                           pending: List[_Pending], now: float) -> None:
        """Chunk members after the in-flight cell never started: put
        them back at the head of the queue with no attempt penalty."""
        for item in reversed(handle.chunk[handle.cursor + 1:]):
            item.eligible_at = now
            pending.insert(0, item)

    def _on_death(self, handle: _WorkerHandle, pending: List[_Pending],
                  retries: int, now: float,
                  finish: Callable[[TaskSpec, TaskOutcome], None]) -> None:
        item = handle.inflight           # the cell that killed it
        task, attempt = item.task, item.attempt
        self._requeue_survivors(handle, pending, now)
        handle.proc.join(timeout=5)      # EOF can precede process exit
        exitcode = handle.proc.exitcode
        self._respawn(handle)
        if attempt <= retries:
            backoff = min(self.BACKOFF_CAP,
                          self.BACKOFF_BASE * (2 ** (attempt - 1)))
            item.attempt = attempt + 1
            item.eligible_at = now + backoff
            pending.append(item)
            return
        failure = CellFailure(
            kind="crash",
            message=(f"worker died (exitcode {exitcode}) while running "
                     f"{task.cell_id}"),
            exitcode=exitcode, attempts=attempt)
        finish(task, TaskOutcome(CellStatus.FAILED, failure=failure,
                                 attempts=attempt,
                                 queued_s=max(0.0, handle.dispatched_at
                                              - item.enqueued_at)))

    def _on_timeout(self, handle: _WorkerHandle, pending: List[_Pending],
                    finish: Callable[[TaskSpec, TaskOutcome], None]) -> None:
        item = handle.inflight
        task, attempt = item.task, item.attempt
        queued = max(0.0, handle.dispatched_at - item.enqueued_at)
        self._requeue_survivors(handle, pending, time.monotonic())
        self._respawn(handle, kill=True)
        failure = CellFailure(
            kind="timeout",
            message=f"cell {task.cell_id} exceeded its timeout",
            attempts=attempt)
        finish(task, TaskOutcome(CellStatus.TIMEOUT, failure=failure,
                                 attempts=attempt, queued_s=queued))


# -- pool registry ---------------------------------------------------------
# One pool persists across run_suite calls so a pytest session (or a
# CLI figure with several sub-suites) pays worker spawn + import once.
# The pool is *resized in place* when a different width is requested:
# a one-off ``--jobs 8`` run no longer strands 6 idle spawn processes
# for the rest of the session, and a Ctrl-C (SuiteInterrupted) kills
# and forgets the pool outright.

_POOL: Optional[ResilientPool] = None
_TASK_IDS = itertools.count(1)


def next_task_id() -> int:
    """Process-unique task ids (stale results can never alias)."""
    return next(_TASK_IDS)


def get_pool(workers: int) -> ResilientPool:
    global _POOL
    if _POOL is None or not _POOL.handles:
        _POOL = ResilientPool(workers)
    elif _POOL.workers != workers:
        _POOL.resize(workers)
    return _POOL


def _forget_pool(pool: ResilientPool) -> None:
    global _POOL
    if _POOL is pool:
        _POOL = None


def shutdown_pools() -> None:
    """Terminate the cached worker pool (also runs atexit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(kill=True)
        _POOL = None


atexit.register(shutdown_pools)
