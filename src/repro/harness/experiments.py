"""Per-figure / per-table experiment drivers (paper §6).

Each function reproduces one evaluation artefact and returns an
:class:`ExperimentResult` whose ``format()`` prints the same rows or
series the paper reports.  The bench harness under ``benchmarks/``
calls these and records paper-vs-measured in EXPERIMENTS.md.

Every figure is a grid of independent (config, workload) cells, so the
drivers build one flat job list and submit it through the parallel
executor in a single batch: ``workers`` (default ``$REPRO_JOBS``) fans
the whole grid out at once, and the criticality configurations share
one profile simulation per workload instead of re-profiling per label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..pipeline import CoreConfig, make_config
from ..workloads import build_suite
from .parallel import Job, jobs_for, run_suite
from .report import format_speedup_matrix, format_table, percent
from .runner import (SuiteResult, geomean, resolve_execution, speedups)


@dataclass
class ExperimentResult:
    """One reproduced figure/table."""

    name: str
    description: str
    #: configuration label -> geomean speedup vs the experiment baseline
    summary: Dict[str, float] = field(default_factory=dict)
    #: workload -> {configuration label -> speedup}
    per_workload: Dict[str, Dict[str, float]] = field(default_factory=dict)
    baseline_label: str = ""
    results: Dict[str, SuiteResult] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def format(self) -> str:
        order = [label for label in self.results if label
                 != self.baseline_label]
        parts = [format_speedup_matrix(self.per_workload, order,
                                       title=self.name,
                                       baseline=self.baseline_label)]
        rows = [(label, f"{value:.3f}", percent(value))
                for label, value in self.summary.items()]
        parts.append(format_table(["config", "geomean", "gain"], rows,
                                  title=f"{self.name} — geomean"))
        if self.notes:
            parts.append("notes: " + "; ".join(self.notes))
        return "\n\n".join(parts)

    def sim_seconds(self) -> float:
        """Total simulation wall-clock over every cell of the figure."""
        return sum(r.sim_seconds() for r in self.results.values())

    def cache_hits(self) -> int:
        return sum(r.cache_hits() for r in self.results.values())

    def cells(self) -> int:
        return sum(len(r.stats) for r in self.results.values())

    def trace_cache_hits(self) -> int:
        """Cells served by the in-process/in-worker trace LRU."""
        return sum(r.trace_cache_hits() for r in self.results.values())

    def trace_cache_misses(self) -> int:
        """Cells whose trace had to be (re)generated."""
        return sum(r.trace_cache_misses() for r in self.results.values())

    def mean_lane_occupancy(self) -> float:
        """Mean active lanes per lockstep iteration, whole figure.

        A lane batch can span labels; batches are deduplicated by id
        across the per-label results before averaging.  0.0 when the
        figure ran entirely on the per-cell paths.
        """
        batches: Dict[int, tuple] = {}
        for result in self.results.values():
            batches.update(result.lane_batches)
        steps = sum(s for s, _ in batches.values())
        lane_steps = sum(ls for _, ls in batches.values())
        return lane_steps / steps if steps else 0.0


def _missing_notes(results: Dict[str, SuiteResult]) -> List[str]:
    """One annotation per failed/timed-out/missing cell."""
    notes: List[str] = []
    for result in results.values():
        notes.extend(result.failure_notes())
    return notes


def _collect(results: Dict[str, SuiteResult], baseline_label: str,
             name: str, description: str) -> ExperimentResult:
    baseline = results[baseline_label]
    experiment = ExperimentResult(name, description,
                                  baseline_label=baseline_label,
                                  results=results)
    for label, result in results.items():
        if label == baseline_label:
            continue
        per = speedups(result, baseline)
        for workload, value in per.items():
            experiment.per_workload.setdefault(workload, {})[label] = value
        if per:
            experiment.summary[label] = geomean(list(per.values()))
        else:
            experiment.notes.append(
                f"{label}: no cells completed; geomean omitted")
    experiment.notes.extend(_missing_notes(results))
    return experiment


def fig14(scale: float = 1.0, names: Optional[List[str]] = None,
          preset: str = "base", progress: bool = False,
          workers: Optional[int] = None,
          use_cache: Optional[bool] = None,
          timeout: Optional[float] = None,
          chunk: Optional[int] = None,
          lanes: Optional[int] = None) -> ExperimentResult:
    """Figure 14: IPC improvements of priority scheduling.

    Baseline AGE; comparisons MULT, Orinoco, CRI w/ AGE, CRI w/ Orinoco
    — all with in-order commit.  The two CRI configurations share one
    AGE profile simulation per workload (the profile→tag→run stages are
    expressed as an executor dependency, not re-simulated per label).
    """
    traces = build_suite(scale, names)
    base = make_config(preset, commit="ioc")
    profile_config = base.with_policies(scheduler="age")
    workers, cache = resolve_execution(workers, use_cache)
    jobs: List[Job] = []
    jobs += jobs_for("AGE", base.with_policies(scheduler="age"), traces)
    jobs += jobs_for("MULT", base.with_policies(scheduler="mult"), traces)
    jobs += jobs_for("Orinoco", base.with_policies(scheduler="orinoco"),
                     traces)
    jobs += jobs_for("CRI w/ AGE",
                     base.with_policies(scheduler="age", criticality=True),
                     traces, profile_config)
    jobs += jobs_for("CRI w/ Orinoco", base.with_policies(scheduler="cri"),
                     traces, profile_config)
    results = run_suite(jobs, workers=workers, cache=cache,
                        progress=progress, timeout=timeout, chunk=chunk,
                        lanes=lanes)
    return _collect(results, "AGE", "Figure 14",
                    "IPC improvement of priority scheduling over AGE")


#: Figure 15 configuration labels -> commit policy names.
FIG15_CONFIGS = {
    "Orinoco": "orinoco",
    "VB": "vb",
    "VB w/o ECL": "vb_noecl",
    "BR": "br",
    "BR w/o ECL": "br_noecl",
    "SPEC": "spec",
    "SPEC w/o ROB": "spec_norob",
    "ECL": "ecl",
    "ROB": "rob",
}


def fig15(scale: float = 1.0, names: Optional[List[str]] = None,
          preset: str = "base", progress: bool = False,
          workers: Optional[int] = None,
          use_cache: Optional[bool] = None,
          timeout: Optional[float] = None,
          chunk: Optional[int] = None,
          lanes: Optional[int] = None) -> ExperimentResult:
    """Figure 15: IPC improvements of out-of-order commit over IOC
    (all with the AGE scheduler, as in the paper's baseline)."""
    traces = build_suite(scale, names)
    base = make_config(preset, scheduler="age")
    workers, cache = resolve_execution(workers, use_cache)
    jobs = jobs_for("IOC", base.with_policies(commit="ioc"), traces)
    for label, commit in FIG15_CONFIGS.items():
        jobs += jobs_for(label, base.with_policies(commit=commit), traces)
    results = run_suite(jobs, workers=workers, cache=cache,
                        progress=progress, timeout=timeout, chunk=chunk,
                        lanes=lanes)
    return _collect(results, "IOC", "Figure 15",
                    "IPC improvement of out-of-order commit over IOC")


def fig16(scale: float = 1.0, names: Optional[List[str]] = None,
          progress: bool = False, workers: Optional[int] = None,
          use_cache: Optional[bool] = None,
          timeout: Optional[float] = None,
          chunk: Optional[int] = None,
          lanes: Optional[int] = None) -> ExperimentResult:
    """Figure 16: sensitivity to core size (Base / Pro / Ultra).

    For each size, speedups of priority scheduling (Orinoco issue),
    out-of-order commit (Orinoco commit) and both over that size's
    AGE+IOC baseline.  All 12 configurations are submitted as one batch.
    """
    traces = build_suite(scale, names)
    workers, cache = resolve_execution(workers, use_cache)
    variant_kinds = {
        "priority": dict(scheduler="orinoco"),
        "ooo-commit": dict(commit="orinoco"),
        "synergy": dict(scheduler="orinoco", commit="orinoco"),
    }
    jobs: List[Job] = []
    for preset in ("base", "pro", "ultra"):
        base = make_config(preset, scheduler="age", commit="ioc")
        jobs += jobs_for(f"{preset}: AGE+IOC", base, traces)
        for kind, policies in variant_kinds.items():
            jobs += jobs_for(f"{preset}: {kind}",
                             base.with_policies(**policies), traces)
    results = run_suite(jobs, workers=workers, cache=cache,
                        progress=progress, timeout=timeout, chunk=chunk,
                        lanes=lanes)
    experiment = ExperimentResult(
        "Figure 16", "normalized performance sensitivity",
        baseline_label="AGE+IOC", results=results)
    for preset in ("base", "pro", "ultra"):
        baseline = results[f"{preset}: AGE+IOC"]
        for kind in variant_kinds:
            label = f"{preset}: {kind}"
            per = speedups(results[label], baseline)
            for workload, value in per.items():
                experiment.per_workload.setdefault(
                    workload, {})[label] = value
            if per:
                experiment.summary[label] = geomean(list(per.values()))
            else:
                experiment.notes.append(
                    f"{label}: no cells completed; geomean omitted")
    experiment.notes.extend(_missing_notes(results))
    return experiment


def stall_breakdown(scale: float = 1.0,
                    names: Optional[List[str]] = None,
                    preset: str = "base",
                    progress: bool = False,
                    workers: Optional[int] = None,
                    use_cache: Optional[bool] = None,
                    timeout: Optional[float] = None,
                    chunk: Optional[int] = None,
                    lanes: Optional[int] = None
                    ) -> Dict[str, Dict[str, float]]:
    """§2.2 / §6.2 statistics.

    Returns, for IOC and Orinoco commit:
      * fraction of commit-stall cycles with a committable-but-not-head
        instruction (paper: 72% for the baseline);
      * same during full-window stalls (paper: 76%);
      * full-window stall cycles (Orinoco reduces them by ~65%);
      * per-resource dispatch-stall breakdown.
    """
    traces = build_suite(scale, names)
    base = make_config(preset, scheduler="age")
    workers, cache = resolve_execution(workers, use_cache)
    jobs = (jobs_for("IOC", base.with_policies(commit="ioc"), traces)
            + jobs_for("Orinoco", base.with_policies(commit="orinoco"),
                       traces))
    results = run_suite(jobs, workers=workers, cache=cache,
                        progress=progress, timeout=timeout, chunk=chunk,
                        lanes=lanes)
    out: Dict[str, Dict[str, float]] = {}
    for label in ("IOC", "Orinoco"):
        result = results[label]
        total = {"commit_stalls": 0, "ready_not_head": 0,
                 "full_window": 0, "fw_ready": 0, "rob_full": 0,
                 "rob": 0, "iq": 0, "lq": 0, "sq": 0, "reg": 0,
                 "cycles": 0}
        for stats in result.stats.values():
            total["commit_stalls"] += stats.commit_stall_cycles
            total["ready_not_head"] += stats.stalled_commit_ready_cycles
            total["full_window"] += stats.full_window_stall_cycles
            total["fw_ready"] += stats.full_window_commit_ready_cycles
            total["rob_full"] += stats.rob_full_commit_stall_cycles
            total["rob"] += stats.stall_rob
            total["iq"] += stats.stall_iq
            total["lq"] += stats.stall_lq
            total["sq"] += stats.stall_sq
            total["reg"] += stats.stall_reg
            total["cycles"] += stats.cycles
        total["ready_not_head_frac"] = (
            total["ready_not_head"] / total["commit_stalls"]
            if total["commit_stalls"] else 0.0)
        total["fw_ready_frac"] = (
            total["fw_ready"] / total["rob_full"]
            if total["rob_full"] else 0.0)
        out[label] = total
    if out["IOC"]["full_window"]:
        out["reduction"] = {
            "full_window_stalls": 1.0 - (out["Orinoco"]["full_window"]
                                         / out["IOC"]["full_window"]),
            "rob_stalls": 1.0 - (out["Orinoco"]["rob"]
                                 / out["IOC"]["rob"])
            if out["IOC"]["rob"] else 0.0,
            "lq_stalls": 1.0 - (out["Orinoco"]["lq"] / out["IOC"]["lq"])
            if out["IOC"]["lq"] else 0.0,
            "reg_stalls": 1.0 - (out["Orinoco"]["reg"]
                                 / out["IOC"]["reg"])
            if out["IOC"]["reg"] else 0.0,
        }
    return out


def table1() -> str:
    """Table 1: the three core configurations."""
    rows = []
    for preset in ("base", "pro", "ultra"):
        config = make_config(preset)
        rows.append([
            preset.capitalize(),
            f"{config.issue_width}/{config.commit_width}",
            config.rob_size, config.iq_size,
            f"{config.lq_size}/{config.sq_size}",
            config.rf_size, config.fu_total,
        ])
    return format_table(
        ["Size", "IW/CW", "ROB", "IQ", "LQ/SQ", "RF", "FU"], rows,
        title="Table 1: Microarchitecture Configurations")
