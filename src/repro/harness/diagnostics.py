"""Crash-diagnostic bundles: capture, persist, and replay failures.

When a cell dies with an in-worker exception (including
:class:`~repro.pipeline.DeadlockError`), the worker builds a *crash
bundle*: everything needed to reproduce the failure from the bundle
alone —

* the full config fingerprint (every ``CoreConfig`` field, nested
  hierarchy config and latency table included) plus the profile
  config's fingerprint for criticality cells,
* the workload name, scale, seeded generation parameters and the
  config's RNG seed,
* the exception type, message and traceback,
* a *diagnostic re-run*: the cell is executed once more with an
  :class:`~repro.pipeline.EventTail` attached, so the bundle carries
  the last-cycle pipeline snapshot (:meth:`O3Core.snapshot`) and the
  tail of the event stream leading into the failure.  The healthy
  first run pays nothing for this — instrumentation only exists on
  the re-run of an already-failed cell.

Bundles are JSON files under ``benchmarks/crash/`` (override with
``$REPRO_CRASH_DIR``), written by the *parent* so concurrent workers
never race on names.  ``repro replay <bundle>`` (or
:func:`replay_bundle`) rebuilds the config via
:func:`config_from_fingerprint`, re-simulates — profile stage
included — and reports whether the same failure reproduces.

``crash``/``hang`` faults never produce bundles (the worker dies or
is killed before it can build one); replay therefore only re-applies
``explode`` faults from the recorded fault programme.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa import OpClass
from ..memory import HierarchyConfig
from ..pipeline import ENGINE_VERSION, CoreConfig, EventTail, O3Core
from ..testing import faults
from ..workloads import build_trace, generation_params
from .cache import config_fingerprint

#: crash-bundle schema revision
BUNDLE_FORMAT = 1

#: events kept in a bundle's tail
EVENT_TAIL = 64

#: bundles retained per crash directory (override: $REPRO_CRASH_KEEP)
CRASH_KEEP = 50

_evict_warned: set = set()          # crash dirs already warned about


def _crash_keep() -> int:
    try:
        return int(os.environ.get("REPRO_CRASH_KEEP", CRASH_KEEP))
    except ValueError:
        return CRASH_KEEP


def _evict_old_bundles(root: pathlib.Path) -> None:
    """Cap the crash directory: keep the ``$REPRO_CRASH_KEEP`` newest
    ``crash-*.json`` bundles, evict the rest oldest-first.  Long
    fault-injection campaigns otherwise grow the directory without
    bound.  Warns (once per directory per process) when eviction
    starts."""
    import sys
    keep = _crash_keep()
    if keep <= 0:
        return
    bundles = sorted(root.glob("crash-*.json"),
                     key=lambda p: (p.stat().st_mtime, p.name))
    excess = bundles[:-keep] if len(bundles) > keep else []
    if excess and str(root) not in _evict_warned:
        _evict_warned.add(str(root))
        print(f"warning: {root} holds more than {keep} crash bundles; "
              f"evicting oldest (raise $REPRO_CRASH_KEEP to keep more)",
              file=sys.stderr)
    for path in excess:
        try:
            path.unlink()
        except OSError:
            pass                     # concurrent eviction: already gone


def default_crash_dir() -> pathlib.Path:
    """``$REPRO_CRASH_DIR``, else ``<repo>/benchmarks/crash``."""
    override = os.environ.get("REPRO_CRASH_DIR")
    if override:
        return pathlib.Path(override)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "crash"
    return pathlib.Path.cwd() / "benchmarks" / "crash"


def config_from_fingerprint(fingerprint: Dict[str, object]) -> CoreConfig:
    """Rebuild a :class:`CoreConfig` from its cache fingerprint
    (inverse of :func:`repro.harness.cache.config_fingerprint`)."""
    data = dict(fingerprint)
    latencies = data.get("latencies") or {}
    data["latencies"] = {OpClass[name]: value
                         for name, value in latencies.items()}
    memory = data.get("memory") or {}
    data["memory"] = HierarchyConfig(**memory)
    return CoreConfig(**data)


# -- capture ---------------------------------------------------------------

def _error_record(exc: BaseException, tb: str) -> Dict[str, str]:
    return {"type": type(exc).__name__, "message": str(exc),
            "traceback": tb}


def _instrumented_run(config: CoreConfig, workload: str, scale: float,
                      profile, cell_id: str, attempt: int,
                      fault_specs) -> Tuple[Optional[O3Core],
                                            Optional[EventTail],
                                            Optional[BaseException]]:
    """Run the cell once with an event tail attached; return the core
    (post-mortem inspectable), the tail, and the exception if any."""
    from ..criticality import CriticalityTagger, clear_tags
    trace = build_trace(workload, scale)
    core: Optional[O3Core] = None
    tail = EventTail(limit=EVENT_TAIL)
    tagged = False
    try:
        if profile is not None:
            tagger = CriticalityTagger()
            tagger.feed_profile(profile[0], profile[1])
            tagged = True
            tagger.tag(trace)
        core = O3Core(trace, config)
        core.bus.attach(tail)
        exploder = faults.explode_subscriber(fault_specs, cell_id, attempt)
        if exploder is not None:
            core.bus.attach(exploder)
        core.run()
        return core, tail, None
    except Exception as exc:
        return core, tail, exc
    finally:
        if tagged:
            clear_tags(trace)


def build_crash_bundle(*, label: str, config: CoreConfig, workload: str,
                       scale: float, exc: BaseException, tb: str,
                       profile=None,
                       profile_config: Optional[CoreConfig] = None,
                       attempt: int = 1, faults_text: str = "",
                       diagnose: bool = True) -> dict:
    """Build the bundle payload (a JSON-able dict) for one failure.

    Runs in the worker; the parent writes the file.  ``diagnose=False``
    skips the instrumented re-run (used when the first run already ran
    long enough that repeating it is unreasonable).
    """
    cell_id = f"{label}/{workload}"
    try:
        params = generation_params(workload, scale)
    except ValueError:
        params = {}
    bundle = {
        "format": BUNDLE_FORMAT,
        "cell": cell_id,
        "label": label,
        "workload": workload,
        "scale": scale,
        "params": params,
        "seed": config.seed,
        "engine": ENGINE_VERSION,
        "config": config_fingerprint(config),
        "profile_config": (config_fingerprint(profile_config)
                           if profile_config is not None else None),
        "faults": faults_text,
        "attempt": attempt,
        "error": _error_record(exc, tb),
        "diagnostic": None,
    }
    if not diagnose:
        return bundle
    try:
        fault_specs = faults.parse_fault_specs(faults_text)
        core, tail, exc2 = _instrumented_run(
            config, workload, scale, profile, cell_id, attempt, fault_specs)
        bundle["diagnostic"] = {
            "reproduced": (exc2 is not None
                           and type(exc2).__name__ == type(exc).__name__),
            "error": (_error_record(exc2, "") if exc2 is not None else None),
            "snapshot": core.snapshot() if core is not None else None,
            "events": tail.tail() if tail is not None else [],
        }
    except Exception as diag_exc:       # diagnostics must never mask
        bundle["diagnostic"] = {        # the original failure
            "reproduced": False,
            "error": {"type": type(diag_exc).__name__,
                      "message": f"diagnostic re-run failed: {diag_exc}",
                      "traceback": ""},
            "snapshot": None,
            "events": [],
        }
    return bundle


def write_bundle(bundle: dict,
                 crash_dir: Optional[os.PathLike] = None) -> pathlib.Path:
    """Persist a bundle under the crash directory; returns the path.

    The name is content-addressed (cell slug + payload hash) so
    re-running the same failing campaign overwrites rather than
    accumulates, and concurrent suites never collide.
    """
    root = pathlib.Path(crash_dir) if crash_dir is not None \
        else default_crash_dir()
    root.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(bundle, sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:10]
    slug = bundle.get("cell", "cell").replace("/", "-").replace(" ", "_")
    path = root / f"crash-{slug}-{digest}.json"
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(bundle, indent=2, sort_keys=True))
    tmp.replace(path)
    _evict_old_bundles(root)
    return path


def load_bundle(path: os.PathLike) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict) or "config" not in data:
        raise ValueError(f"{path}: not a crash bundle")
    return data


# -- replay ----------------------------------------------------------------

@dataclass
class ReplayReport:
    """Outcome of re-running a crash bundle's cell."""

    cell: str
    expected: Dict[str, str]
    observed: Optional[Dict[str, str]] = None
    reproduced: bool = False
    snapshot: Optional[dict] = None
    events: List[str] = field(default_factory=list)
    committed: Optional[int] = None      # set when the replay finished

    def format(self, events: int = 12) -> str:
        lines = [f"replay {self.cell}",
                 f"  expected: {self.expected['type']}: "
                 f"{self.expected['message']}"]
        if self.observed is not None:
            lines.append(f"  observed: {self.observed['type']}: "
                         f"{self.observed['message']}")
        else:
            lines.append(f"  observed: run completed "
                         f"({self.committed} committed)")
        lines.append("  verdict:  " + ("REPRODUCED" if self.reproduced
                                       else "NOT-REPRODUCED"))
        if self.snapshot is not None:
            snap = self.snapshot
            lines.append(
                f"  pipeline: cycle {snap['cycle']} "
                f"(progress {snap['progress_cycle']}), "
                f"ROB {snap['rob_occupancy']} IQ {snap['iq_occupancy']} "
                f"LQ {snap['lq_occupancy']}, "
                f"{snap['committed']} committed")
            for op in snap.get("window_head", []):
                state = ("committed" if op["committed"] else
                         "completed" if op["completed"] else
                         "issued" if op["issued"] else "waiting")
                lines.append(f"    #{op['seq']} pc={op['pc']} "
                             f"{op['op_class']:8s} {state}")
        if self.events:
            lines.append(f"  last {min(events, len(self.events))} events:")
            lines.extend(f"    {line}" for line in self.events[-events:])
        return "\n".join(lines)


def replay_bundle(path_or_bundle) -> ReplayReport:
    """Re-run a bundle's cell from its recorded fingerprints alone."""
    bundle = path_or_bundle if isinstance(path_or_bundle, dict) \
        else load_bundle(path_or_bundle)
    config = config_from_fingerprint(bundle["config"])
    workload, scale = bundle["workload"], bundle["scale"]
    cell_id = bundle.get("cell", f"?/{workload}")
    attempt = bundle.get("attempt", 1)
    fault_specs = faults.parse_fault_specs(bundle.get("faults", ""))

    profile = None
    if bundle.get("profile_config") is not None:
        profile_config = config_from_fingerprint(bundle["profile_config"])
        profiler = O3Core(build_trace(workload, scale), profile_config)
        profiler.run()
        profile = (dict(profiler.pc_l1_misses),
                   dict(profiler.pc_mispredicts))

    core, tail, exc = _instrumented_run(
        config, workload, scale, profile, cell_id, attempt, fault_specs)
    report = ReplayReport(cell=cell_id, expected=bundle["error"])
    report.snapshot = core.snapshot() if core is not None else None
    report.events = tail.tail() if tail is not None else []
    if exc is not None:
        report.observed = _error_record(exc, "")
        report.reproduced = (report.observed["type"]
                             == bundle["error"]["type"])
    else:
        report.committed = core.stats.committed if core is not None else 0
    return report
