"""Parallel experiment executor: fan simulation cells out over workers.

Every paper artefact is a grid of independent (config, workload) cells
— exactly the embarrassingly parallel shape the figures' serial loops
wasted.  :func:`run_suite` takes a flat list of :class:`Job` cells and
executes them over the fault-isolated dispatcher in
:mod:`repro.harness.resilience`, with four guarantees:

* **Determinism** — outcomes are keyed by task id and assembled in job
  order, every cell is a pure function of (config, workload name,
  scale), and cells are reconstructed identically in any process;
  parallel, serial, and cached paths return bit-identical
  :class:`~repro.pipeline.SimStats` on fault-free runs.
* **Spawn safety** — workers receive a pickled ``CoreConfig`` plus the
  *workload name, scale, and rebuild spec*
  (``WorkloadTarget.worker_spec()``), never a pickled ``Trace``: traces
  are large (megabytes of ``DynInstr``) and rebuilding from the target
  registry is both cheaper than pickling and guaranteed to reproduce
  the same instruction stream.  Registry-backed targets (synthetic
  kernels, scenario families) re-register when the worker imports
  ``repro.workloads``; trace-file targets ship ``(path, sha256)`` and
  the worker re-imports the file under a checksum guard
  (:func:`repro.workloads.ensure_target`).  The ``spawn`` start method
  is used explicitly so the executor behaves identically on every
  platform (fork would share the parent's trace cache by accident).
* **Two-stage criticality** — jobs carrying a ``profile_config``
  express the profile→tag→run dependency: stage one runs each unique
  (profile config, workload) cell exactly once, stage two feeds that
  single profile to every dependent run (the serial path re-simulated
  the profile per output config).
* **Graceful degradation** — a crashed, hung, or raising cell is an
  annotated hole in the grid, not a dead campaign: its
  :class:`SuiteResult` slot records a typed status
  (:class:`~repro.harness.resilience.CellStatus`) and a
  :class:`~repro.harness.resilience.CellFailure` (with a crash bundle
  for in-worker exceptions), healthy cells complete and are flushed to
  the cache as they finish, and Ctrl-C raises
  :class:`~repro.harness.resilience.SuiteInterrupted` naming exactly
  what finished.

The ``workers<=1`` path runs in-process with no dispatcher, no fault
injection, and seed semantics (exceptions propagate) — it is the
reference the parallel path must match bit-for-bit.

Results come back as ``{label: SuiteResult}`` with per-cell wall-clock
timings so benchmark output can report actual speedup, and an optional
:class:`~repro.harness.cache.ResultCache` short-circuits cells whose
key was already computed.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import check
from ..criticality import CriticalityTagger, clear_tags
from ..envutil import env_flag, env_int
from ..pipeline import CoreConfig, O3Core, SimStats
from ..pipeline.lanes import LaneBatch, LaneCell, crosscheck, lane_key
from ..testing import faults
from ..workloads import ensure_target, fetch_trace, get_target, has_target
from .cache import ResultCache, cache_key
from .diagnostics import build_crash_bundle, write_bundle
from .resilience import (CellFailure, CellStatus, SuiteInterrupted,
                         TaskOutcome, TaskSpec, default_cell_timeout,
                         default_chunk_size, default_max_retries,
                         get_pool, next_task_id, shutdown_pools)

__all__ = ["Job", "ProfileData", "default_lanes", "default_use_cache",
           "default_workers", "estimate_cell_seconds", "jobs_for",
           "run_suite", "shutdown_pools"]

#: pc_l1_misses, pc_mispredicts — the profile payload fed to the tagger
ProfileData = Tuple[Dict[int, int], Dict[int, int]]


@dataclass
class Job:
    """One simulation cell: a config applied to one registry workload."""

    label: str
    config: CoreConfig
    workload: str
    scale: float = 1.0
    #: when set, this is a criticality run: profile under this config,
    #: tag the critical slices, then simulate under ``config``
    profile_config: Optional[CoreConfig] = None

    @property
    def cell_id(self) -> str:
        return f"{self.label}/{self.workload}"


def default_workers() -> int:
    """Worker count from ``$REPRO_JOBS`` (default 1 = in-process)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_use_cache() -> bool:
    """Cache policy from ``$REPRO_CACHE`` (off unless set truthy —
    ``false``/``off``/``no``/``0``/unset all disable)."""
    return env_flag("REPRO_CACHE", default=False)


def default_lanes() -> int:
    """Lane-batch width from ``$REPRO_LANES`` (default 1 = off)."""
    return max(1, env_int("REPRO_LANES", 1))


#: crude generation-parameter-to-seconds calibration for chunk sizing:
#: suite kernels emit ~12 trace instructions per size-parameter unit
#: and the engine sustains ~20 kcycles/sec at ~1.3 cycles/instr
_SECONDS_PER_PARAM_UNIT = 1.0 / 1300.0


def estimate_cell_seconds(workload: str, scale: float = 1.0) -> float:
    """Order-of-magnitude wall-clock estimate for one cell.

    Only used to auto-size dispatch chunks (``TaskSpec.est_seconds``);
    an estimate that is off by a few× merely changes how many cells
    share a pipe round-trip, never what they compute.
    """
    try:
        units = get_target(workload).cost_estimate(scale)
    except ValueError:
        return 0.0
    return units * _SECONDS_PER_PARAM_UNIT


def _workload_spec(workload: str):
    """The picklable rebuild recipe shipped inside worker payloads."""
    return get_target(workload).worker_spec()


def jobs_for(label: str, config: CoreConfig, traces: Dict[str, object],
             profile_config: Optional[CoreConfig] = None) -> List[Job]:
    """Jobs covering ``traces`` (registered workload targets only)."""
    jobs = []
    for name, trace in traces.items():
        scale = getattr(trace, "scale", None)
        if not has_target(name) or scale is None:
            raise ValueError(
                f"trace {name!r} is not rebuildable from the workload "
                f"target registry (register it with "
                f"repro.workloads.register_target / add_trace_target); "
                f"use the serial runner for ad-hoc traces")
        jobs.append(Job(label, config, name, scale, profile_config))
    return jobs


# -- worker protocol -------------------------------------------------------
# Top-level functions so they pickle by reference under spawn.  Workers
# import repro afresh, fetch the trace through the bounded in-process
# LRU (:func:`repro.workloads.fetch_trace` — rebuilt from the registry
# on a miss, never pickled), simulate, and return (picklable) SimStats
# plus the cell's wall-clock seconds and whether its trace was an LRU
# hit.  Each guarded payload carries the target's ``worker_spec()``
# rebuild recipe (:func:`repro.workloads.ensure_target`): built-in
# targets re-register when the worker imports repro.workloads, and
# trace-file targets ship ``(path, sha256)`` so the worker re-imports
# the file — verifying the checksum — instead of unpickling megabytes
# of DynInstr.  Because worker processes persist across chunks and
# run_suite calls, and the parent sorts cells so same-workload cells
# share a chunk, successive cells stop re-generating megabyte traces.
# The _simulate_* pair is the bare reference path (used in-process when
# workers <= 1); the _guarded_* pair wraps it for the dispatcher —
# applying injected faults and converting exceptions into failure
# dicts carrying a crash-diagnostic bundle.

def _simulate_profile(task) -> Tuple[Dict[int, int], Dict[int, int], float]:
    """Stage 1: profile run → per-PC L1-miss / misprediction counts."""
    config, workload, scale = task
    trace, _hit = fetch_trace(workload, scale)
    start = time.perf_counter()
    core = O3Core(trace, config)
    core.run()
    return (dict(core.pc_l1_misses), dict(core.pc_mispredicts),
            time.perf_counter() - start)


def _simulate_cell(task, subscribers: Sequence = ()
                   ) -> Tuple[SimStats, float, bool]:
    """Stage 2: simulate one cell (tagging first for criticality runs).

    Tagging happens *inside* the try so a crash mid-``tag`` (partial
    tags) still clears the shared in-process trace on the way out.
    ``subscribers`` are attached to the core's event bus before the
    run (fault injection; empty on the reference path).  Returns
    ``(stats, seconds, trace_was_cache_hit)``.
    """
    config, workload, scale, profile = task
    trace, trace_hit = fetch_trace(workload, scale)
    start = time.perf_counter()
    if profile is None:
        core = O3Core(trace, config)
        for subscriber in subscribers:
            core.bus.attach(subscriber)
        stats = core.run()
    else:
        tagger = CriticalityTagger()
        tagger.feed_profile(profile[0], profile[1])
        try:
            tagger.tag(trace)
            core = O3Core(trace, config)
            for subscriber in subscribers:
                core.bus.attach(subscriber)
            stats = core.run()
        finally:
            clear_tags(trace)
    return stats, time.perf_counter() - start, trace_hit


def _guarded_profile(payload, attempt: int):
    """Dispatcher wrapper for stage 1: fault hooks + failure capture."""
    cell_id, config, workload, scale, workload_spec, faults_text = payload
    specs = faults.parse_fault_specs(faults_text)
    faults.preflight(specs, cell_id, attempt)
    try:
        ensure_target(workload_spec)
        return "ok", _simulate_profile((config, workload, scale))
    except Exception as exc:
        tb = traceback.format_exc()
        bundle = build_crash_bundle(
            label="profile", config=config, workload=workload, scale=scale,
            exc=exc, tb=tb, attempt=attempt, faults_text=faults_text)
        return "error", {"kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}",
                         "traceback": tb, "bundle": bundle}


def _guarded_cell(payload, attempt: int):
    """Dispatcher wrapper for stage 2: fault hooks + failure capture."""
    (label, config, workload, scale, workload_spec, profile,
     profile_config, faults_text) = payload
    cell_id = f"{label}/{workload}"
    specs = faults.parse_fault_specs(faults_text)
    faults.preflight(specs, cell_id, attempt)
    exploder = faults.explode_subscriber(specs, cell_id, attempt)
    subscribers = (exploder,) if exploder is not None else ()
    try:
        ensure_target(workload_spec)
        stats, elapsed, trace_hit = _simulate_cell(
            (config, workload, scale, profile), subscribers)
        return "ok", (stats, elapsed, trace_hit)
    except Exception as exc:
        tb = traceback.format_exc()
        bundle = build_crash_bundle(
            label=label, config=config, workload=workload, scale=scale,
            profile=profile, profile_config=profile_config,
            exc=exc, tb=tb, attempt=attempt, faults_text=faults_text)
        return "error", {"kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}",
                         "traceback": tb, "bundle": bundle}


def _guarded_lane_group(payload, attempt: int):
    """Dispatcher wrapper for a lane-batched group of cells.

    One task = one :class:`~repro.pipeline.lanes.LaneBatch` run over
    lane-compatible cells.  Streams nothing mid-batch (the pool
    protocol is one result per task), so the whole group's per-cell
    outcomes come back in one value: ``{"cells": [...], "steps": n,
    "lane_steps": n}`` with one entry per payload cell, in order.
    Per-cell failures (deadlock in one lane) are embedded entries —
    batch-mates keep their results.
    """
    cells_data, lanes, timeout = payload
    try:
        key = lane_key(cells_data[0][1])
        cells, hits = [], []
        for pos, (label, config, workload, scale,
                  workload_spec) in enumerate(cells_data):
            ensure_target(workload_spec)
            trace, hit = fetch_trace(workload, scale)
            cells.append(LaneCell(pos, trace, config))
            hits.append(hit)
        batch = LaneBatch(min(lanes, len(cells)), key[0], key[1])
        report = batch.run(cells, timeout=timeout)
        if check.check_enabled():
            sample = next((o for o in report.outcomes
                           if o.stats is not None), None)
            if sample is not None:
                crosscheck(cells[sample.index], sample.stats)
        out = [None] * len(cells)
        for outcome in report.outcomes:
            pos = outcome.index
            label, config, workload, scale, _spec = cells_data[pos]
            if outcome.stats is not None:
                out[pos] = {"status": "ok", "stats": outcome.stats,
                            "elapsed": outcome.elapsed,
                            "trace_hit": hits[pos]}
            elif outcome.timed_out:
                out[pos] = {"status": "timeout",
                            "elapsed": outcome.elapsed}
            else:
                exc = outcome.error
                bundle = build_crash_bundle(
                    label=label, config=config, workload=workload,
                    scale=scale, exc=exc, tb=outcome.error_tb,
                    attempt=attempt)
                out[pos] = {"status": "error",
                            "message": f"{type(exc).__name__}: {exc}",
                            "traceback": outcome.error_tb,
                            "bundle": bundle}
        return "ok", {"cells": out, "steps": report.steps,
                      "lane_steps": report.lane_steps}
    except Exception as exc:
        # batch-level failure (trace build, stack allocation, a
        # REPRO_CHECK divergence): fails the whole group loudly
        tb = traceback.format_exc()
        return "error", {"kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}",
                         "traceback": tb}


# -- the executor ----------------------------------------------------------

@dataclass
class _CellRecord:
    """Terminal state of one job's cell, pre-assembly."""

    status: CellStatus
    stats: Optional[SimStats] = None
    elapsed: float = 0.0
    failure: Optional[CellFailure] = None
    #: seconds spent waiting for a worker (enqueue → actual dispatch)
    queued: float = 0.0
    #: did the cell's trace come from the in-process/in-worker LRU?
    trace_hit: bool = False
    #: (batch id, driver steps, lane steps) of the lane batch this
    #: cell ran in, if it was lane-batched
    batch: Optional[Tuple[int, int, int]] = None


def _lane_groups(jobs: Sequence[Job], indices: Sequence[int]
                 ) -> List[List[int]]:
    """Partition lane-eligible job indices into compatible groups.

    Cells sharing a :func:`~repro.pipeline.lanes.lane_key` (matrix
    shapes, queue organisation, ROB release policy) may share a lane
    stack; within a group, cells are ordered by (workload, scale) so
    batch-mates share traces from the LRU.  Outcomes are keyed by job
    index, so grouping never affects what a cell computes.
    """
    groups: Dict[tuple, List[int]] = {}
    for index in indices:
        groups.setdefault(lane_key(jobs[index].config), []).append(index)
    for members in groups.values():
        members.sort(key=lambda i: (jobs[i].workload, jobs[i].scale,
                                    jobs[i].label))
    return list(groups.values())


def _run_lane_batches(jobs: Sequence[Job], indices: Sequence[int],
                      lanes: int, records: Dict[int, "_CellRecord"],
                      flush_cell, timeout: Optional[float]) -> None:
    """In-process lane path: run eligible cells through LaneBatch.

    Mirrors the worker-path semantics (failures become annotated
    holes, completed cells flush to the cache as their lanes retire)
    rather than the serial path's propagate-exceptions contract: lane
    isolation — one deadlocking cell must not sink its batch-mates —
    is the point of the batch.
    """
    do_check = check.check_enabled()
    for members in _lane_groups(jobs, indices):
        cells, hits = [], {}
        for index in members:
            job = jobs[index]
            trace, hit = fetch_trace(job.workload, job.scale)
            cells.append(LaneCell(index, trace, job.config))
            hits[index] = hit
        key = lane_key(jobs[members[0]].config)
        batch = LaneBatch(min(lanes, len(cells)), key[0], key[1])
        batch_id = next_task_id()

        def cell_done(outcome, hits=hits):
            index = outcome.index
            if outcome.stats is not None:
                records[index] = _CellRecord(
                    CellStatus.OK, outcome.stats, outcome.elapsed,
                    trace_hit=hits[index])
                flush_cell(index, outcome.stats)
            elif outcome.timed_out:
                records[index] = _CellRecord(
                    CellStatus.TIMEOUT,
                    failure=CellFailure(
                        kind="timeout",
                        message=f"lane cell exceeded {timeout}s "
                                f"attributed simulation time"))
            else:
                records[index] = _CellRecord(
                    CellStatus.FAILED,
                    failure=CellFailure(
                        kind="exception",
                        message=(f"{type(outcome.error).__name__}: "
                                 f"{outcome.error}"),
                        traceback=outcome.error_tb))

        report = batch.run(cells, on_cell=cell_done, timeout=timeout)
        for outcome in report.outcomes:
            records[outcome.index].batch = (batch_id, report.steps,
                                            report.lane_steps)
        if do_check:
            sample = next((o for o in report.outcomes
                           if o.stats is not None), None)
            if sample is not None:
                cell = next(c for c in cells if c.index == sample.index)
                crosscheck(cell, sample.stats)


def _finalize_failure(failure: Optional[CellFailure]
                      ) -> Optional[CellFailure]:
    """Write a failure's in-worker bundle payload to the crash dir."""
    if failure is not None and failure.bundle_data is not None:
        try:
            failure.bundle = str(write_bundle(failure.bundle_data))
        except OSError:
            pass
        failure.bundle_data = None
    return failure


def run_suite(jobs: Sequence[Job], workers: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: bool = False,
              timeout: Optional[float] = None,
              retries: Optional[int] = None,
              chunk: Optional[int] = None,
              lanes: Optional[int] = None) -> Dict[str, "SuiteResult"]:
    """Execute every job; return ``{label: SuiteResult}`` in job order.

    ``workers=None`` reads ``$REPRO_JOBS``; ``workers<=1`` runs
    in-process (the bit-identical serial reference path, where
    exceptions propagate and no faults are injected).  ``cache``
    short-circuits cells (and profiles) already on disk — resolved in
    the parent *before* dispatch, so a fully warm sweep never spawns a
    worker — and receives each completed cell as it finishes.
    ``timeout`` (seconds; ``None`` reads ``$REPRO_CELL_TIMEOUT``)
    bounds each cell on the worker path; ``retries`` (``None`` reads
    ``$REPRO_RETRIES``) bounds crash retries.  ``chunk`` (``None``
    reads ``$REPRO_CHUNK``, 0/unset → auto-size from per-cell timing
    estimates) sets how many cells share one dispatch round-trip; the
    dispatch order additionally groups cells by (workload, scale) so
    chunk-mates hit the worker-side trace LRU.  Failed cells come
    back as annotated holes in the :class:`SuiteResult`, never as
    raised exceptions.

    ``lanes`` (``None`` reads ``$REPRO_LANES``; 1 = off) batches
    lane-compatible cells through the lockstep engine
    (:mod:`repro.pipeline.lanes`): groups sharing matrix shapes run
    over one struct-of-arrays stack, composing with the worker pool
    (each group is one dispatch task).  ``lanes=1`` is the untouched
    reference; batched results are field-identical per cell.
    Criticality cells (tagging mutates the shared trace) and
    fault-injection runs always take the per-cell paths, and
    lane-batched failures are annotated holes even in-process —
    isolating a deadlocked lane from its batch-mates is the contract.
    """
    from .runner import SuiteResult          # local: avoid import cycle
    if workers is None:
        workers = default_workers()
    if timeout is None:
        timeout = default_cell_timeout()
    if retries is None:
        retries = default_max_retries()
    if chunk is None:
        chunk = default_chunk_size()
    if lanes is None:
        lanes = default_lanes()
    # the fault programme is sampled here, in the parent, and travels
    # inside task payloads: persistent pools may predate the env var,
    # and a typo'd programme must fail the suite, not silently no-op
    faults_text = os.environ.get(faults.FAULT_ENV, "")
    fault_specs = faults.parse_fault_specs(faults_text)

    def flush_cell(index: int, stats: SimStats) -> None:
        if cache is None:
            return
        cache.put(cell_keys[index], stats)
        if fault_specs:
            faults.apply_corrupt_faults(
                fault_specs, jobs[index].cell_id,
                cache.path_for(cell_keys[index]))

    # cached cells short-circuit everything, including their profiles;
    # resolving them here, before any dispatch, means a fully warm
    # sweep never touches (or spawns) the worker pool at all
    cell_keys = [cache_key(job.config, job.workload, job.scale,
                           job.profile_config) for job in jobs]
    records: Dict[int, _CellRecord] = {}
    if cache is not None:
        hits = cache.get_many(cell_keys)
        for index, key in enumerate(cell_keys):
            if key in hits:
                records[index] = _CellRecord(CellStatus.CACHED, hits[key])

    # stage 1: one profile simulation per unique (profile, workload) cell
    profile_keys = {}                        # job index -> profile cell key
    profile_cells = {}                       # key -> (config, name, scale)
    for index, job in enumerate(jobs):
        if job.profile_config is None or index in records:
            continue
        key = cache_key(job.profile_config, job.workload, job.scale)
        profile_keys[index] = key
        profile_cells.setdefault(
            key, (job.profile_config, job.workload, job.scale))
    profiles: Dict[str, ProfileData] = {}
    profile_failures: Dict[str, CellFailure] = {}
    if cache is not None:
        for key in list(profile_cells):
            hit = cache.get_profile(key)
            if hit is not None:
                profiles[key] = hit
                del profile_cells[key]
    pending = list(profile_cells.items())
    if pending and progress:
        for key, (config, name, scale) in pending:
            print(f"    profile[{config.scheduler}/{config.commit}]: "
                  f"{name}", flush=True)
    if pending and workers <= 1:
        for key, cell in pending:
            misses, mispredicts, _elapsed = _simulate_profile(cell)
            profiles[key] = (misses, mispredicts)
            if cache is not None:
                cache.put_profile(key, misses, mispredicts)
    elif pending:
        specs, key_of = [], {}
        # affinity: same-workload profiles share a chunk → trace LRU hits
        for key, (config, name, scale) in sorted(
                pending, key=lambda kv: (kv[1][1], kv[1][2])):
            spec = TaskSpec(next_task_id(), f"profile/{name}",
                            _guarded_profile,
                            (f"profile/{name}", config, name, scale,
                             _workload_spec(name), faults_text),
                            est_seconds=estimate_cell_seconds(name, scale))
            specs.append(spec)
            key_of[spec.task_id] = key

        def profile_done(spec: TaskSpec, outcome: TaskOutcome) -> None:
            if outcome.status is not CellStatus.OK:
                profile_failures[key_of[spec.task_id]] = \
                    _finalize_failure(outcome.failure)
                return
            misses, mispredicts, _elapsed = outcome.value
            profiles[key_of[spec.task_id]] = (misses, mispredicts)
            if cache is not None:
                cache.put_profile(key_of[spec.task_id], misses, mispredicts)

        get_pool(workers).run(specs, timeout=timeout, retries=retries,
                              on_complete=profile_done, chunk=chunk)

    # stage 2: the remaining runs
    if progress:
        for index, job in enumerate(jobs):
            note = " (cached)" if index in records else ""
            print(f"    {job.label}: {job.workload}{note}", flush=True)
    task_indices = [index for index in range(len(jobs))
                    if index not in records]
    # lane eligibility: plain cells only — criticality runs mutate the
    # shared trace (tagging) and fault programmes target the per-cell
    # dispatcher hooks, so both keep the per-cell paths
    lane_set = set()
    if lanes > 1 and not fault_specs:
        lane_set = {index for index in task_indices
                    if jobs[index].profile_config is None}
    if workers <= 1:
        # in-process reference path: exceptions propagate (seed
        # semantics); Ctrl-C still reports what finished
        try:
            if lane_set:
                _run_lane_batches(jobs, sorted(lane_set), lanes,
                                  records, flush_cell, timeout)
            for index in task_indices:
                if index in lane_set:
                    continue
                job = jobs[index]
                profile = profiles[profile_keys[index]] \
                    if index in profile_keys else None
                stats, elapsed, trace_hit = _simulate_cell(
                    (job.config, job.workload, job.scale, profile))
                records[index] = _CellRecord(CellStatus.OK, stats, elapsed,
                                             trace_hit=trace_hit)
                flush_cell(index, stats)
        except KeyboardInterrupt:
            done = [jobs[i].cell_id for i in task_indices if i in records]
            raise SuiteInterrupted(done, len(task_indices)) from None
    else:
        # lane-batched groups first: each compatible group becomes one
        # dispatcher task (one LaneBatch run in one worker), sliced so
        # groups stay a small multiple of the lane count — enough queue
        # depth for retire-and-refill without starving other workers
        group_specs, members_of = [], {}
        if lane_set:
            cap = max(lanes, min(2 * lanes, 32))
            for members in _lane_groups(jobs, sorted(lane_set)):
                for start in range(0, len(members), cap):
                    part = members[start:start + cap]
                    if len(part) < 2:
                        # a lone cell gains nothing from the lane
                        # driver; send it down the per-cell path
                        lane_set.difference_update(part)
                        continue
                    spec = TaskSpec(
                        next_task_id(),
                        f"lanes[{len(part)}]/{jobs[part[0]].workload}",
                        _guarded_lane_group,
                        ([(jobs[i].label, jobs[i].config,
                           jobs[i].workload, jobs[i].scale,
                           _workload_spec(jobs[i].workload))
                          for i in part], lanes, timeout),
                        est_seconds=sum(
                            estimate_cell_seconds(jobs[i].workload,
                                                  jobs[i].scale)
                            for i in part))
                    group_specs.append(spec)
                    members_of[spec.task_id] = part

        def group_done(spec: TaskSpec, outcome: TaskOutcome) -> None:
            part = members_of[spec.task_id]
            if outcome.status is not CellStatus.OK:
                # batch-level failure: every member inherits it
                for index in part:
                    records[index] = _CellRecord(
                        outcome.status,
                        failure=_finalize_failure(outcome.failure),
                        queued=outcome.queued_s)
                return
            value = outcome.value
            batch = (spec.task_id, value["steps"], value["lane_steps"])
            for pos, index in enumerate(part):
                cell = value["cells"][pos]
                if cell is None:
                    records[index] = _CellRecord(
                        CellStatus.FAILED,
                        failure=CellFailure(
                            kind="crash",
                            message="no outcome recorded for lane cell"),
                        queued=outcome.queued_s)
                elif cell["status"] == "ok":
                    records[index] = _CellRecord(
                        CellStatus.OK, cell["stats"], cell["elapsed"],
                        queued=outcome.queued_s,
                        trace_hit=cell["trace_hit"], batch=batch)
                    flush_cell(index, cell["stats"])
                elif cell["status"] == "timeout":
                    records[index] = _CellRecord(
                        CellStatus.TIMEOUT,
                        failure=CellFailure(
                            kind="timeout",
                            message=f"lane cell exceeded {timeout}s "
                                    f"attributed simulation time"),
                        queued=outcome.queued_s, batch=batch)
                else:
                    records[index] = _CellRecord(
                        CellStatus.FAILED,
                        failure=_finalize_failure(CellFailure(
                            kind="exception", message=cell["message"],
                            traceback=cell["traceback"],
                            bundle_data=cell["bundle"])),
                        queued=outcome.queued_s, batch=batch)

        if group_specs:
            # the pool timeout bounds one *task*; a lane group is up
            # to ``cap`` cells of work, so scale the bound accordingly
            # (per-cell attributed timeouts run inside the batch)
            get_pool(workers).run(
                group_specs,
                timeout=timeout * cap if timeout else None,
                retries=retries, on_complete=group_done, chunk=1)

        specs, index_of = [], {}
        # affinity scheduling: dispatch same-(workload, scale) cells
        # adjacently so they land in the same chunk (and therefore the
        # same worker), maximising the worker-side trace-LRU hit rate.
        # Outcomes are keyed by task id and assembled in job order
        # below, so dispatch order never affects results.
        ordered = sorted((i for i in task_indices if i not in lane_set),
                         key=lambda i: (jobs[i].workload, jobs[i].scale,
                                        jobs[i].label))
        for index in ordered:
            job = jobs[index]
            key = profile_keys.get(index)
            if key is not None and key not in profiles:
                # the profile this cell depends on failed upstream
                upstream = profile_failures.get(key)
                records[index] = _CellRecord(
                    CellStatus.FAILED,
                    failure=CellFailure(
                        kind="dependency",
                        message=(f"profile cell failed: "
                                 f"{upstream.summary()}" if upstream
                                 else "profile cell failed"),
                        bundle=upstream.bundle if upstream else None))
                continue
            profile = profiles[key] if key is not None else None
            spec = TaskSpec(next_task_id(), job.cell_id, _guarded_cell,
                            (job.label, job.config, job.workload,
                             job.scale, _workload_spec(job.workload),
                             profile, job.profile_config, faults_text),
                            est_seconds=estimate_cell_seconds(
                                job.workload, job.scale))
            specs.append(spec)
            index_of[spec.task_id] = index

        def cell_done(spec: TaskSpec, outcome: TaskOutcome) -> None:
            index = index_of[spec.task_id]
            if outcome.status is CellStatus.OK:
                stats, elapsed, trace_hit = outcome.value
                records[index] = _CellRecord(CellStatus.OK, stats, elapsed,
                                             queued=outcome.queued_s,
                                             trace_hit=trace_hit)
                flush_cell(index, stats)
            else:
                records[index] = _CellRecord(
                    outcome.status,
                    failure=_finalize_failure(outcome.failure),
                    queued=outcome.queued_s)

        if specs:                        # a warm sweep spawns no workers
            get_pool(workers).run(specs, timeout=timeout, retries=retries,
                                  on_complete=cell_done, chunk=chunk)
        for spec in specs:               # backstop: no task goes missing
            index = index_of[spec.task_id]
            if index not in records:
                records[index] = _CellRecord(
                    CellStatus.FAILED,
                    failure=CellFailure(kind="crash",
                                        message="no outcome recorded"))
        for spec in group_specs:         # same backstop, lane groups
            for index in members_of[spec.task_id]:
                if index not in records:
                    records[index] = _CellRecord(
                        CellStatus.FAILED,
                        failure=CellFailure(kind="crash",
                                            message="no outcome recorded"))

    results: Dict[str, SuiteResult] = {}
    for index, job in enumerate(jobs):
        record = records[index]
        result = results.get(job.label)
        if result is None:
            result = results[job.label] = SuiteResult(job.label, job.config)
        result.statuses[job.workload] = record.status
        result.timings[job.workload] = record.elapsed
        result.queued[job.workload] = record.queued
        result.cached[job.workload] = record.status is CellStatus.CACHED
        result.trace_hits[job.workload] = record.trace_hit
        if record.stats is not None:
            result.stats[job.workload] = record.stats
        if record.failure is not None:
            result.failures[job.workload] = record.failure
        if record.batch is not None:
            # keyed by batch id so a batch spanning labels (or holding
            # many cells) counts once in occupancy aggregation
            batch_id, steps, lane_steps = record.batch
            result.lane_batches[batch_id] = (steps, lane_steps)
    return results
