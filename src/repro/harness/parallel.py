"""Parallel experiment executor: fan simulation cells out over workers.

Every paper artefact is a grid of independent (config, workload) cells
— exactly the embarrassingly parallel shape the figures' serial loops
wasted.  :func:`run_suite` takes a flat list of :class:`Job` cells and
executes them over a ``multiprocessing`` pool, with three guarantees:

* **Determinism** — results are assembled in job order via
  ``Pool.map``, every cell is a pure function of (config, workload
  name, scale), and cells are reconstructed identically in any
  process; parallel, serial, and cached paths return bit-identical
  :class:`~repro.pipeline.SimStats`.
* **Spawn safety** — workers receive a pickled ``CoreConfig`` plus the
  *workload name and scale*, never a pickled ``Trace``: traces are
  large (megabytes of ``DynInstr``) and rebuilding from the seeded
  workload registry is both cheaper than pickling and guaranteed to
  reproduce the same instruction stream.  The ``spawn`` start method
  is used explicitly so the executor behaves identically on every
  platform (fork would share the parent's trace cache by accident).
* **Two-stage criticality** — jobs carrying a ``profile_config``
  express the profile→tag→run dependency: stage one runs each unique
  (profile config, workload) cell exactly once, stage two feeds that
  single profile to every dependent run (the serial path re-simulated
  the profile per output config).

Results come back as ``{label: SuiteResult}`` with per-cell wall-clock
timings so benchmark output can report actual speedup, and an optional
:class:`~repro.harness.cache.ResultCache` short-circuits cells whose
key was already computed.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..criticality import CriticalityTagger, clear_tags
from ..pipeline import CoreConfig, O3Core, SimStats
from ..workloads import SUITE, build_trace
from .cache import ResultCache, cache_key

#: pc_l1_misses, pc_mispredicts — the profile payload fed to the tagger
ProfileData = Tuple[Dict[int, int], Dict[int, int]]


@dataclass
class Job:
    """One simulation cell: a config applied to one registry workload."""

    label: str
    config: CoreConfig
    workload: str
    scale: float = 1.0
    #: when set, this is a criticality run: profile under this config,
    #: tag the critical slices, then simulate under ``config``
    profile_config: Optional[CoreConfig] = None


def default_workers() -> int:
    """Worker count from ``$REPRO_JOBS`` (default 1 = in-process)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_use_cache() -> bool:
    """Cache policy from ``$REPRO_CACHE`` (off unless set to 1)."""
    return os.environ.get("REPRO_CACHE", "0") not in ("0", "", "no")


def jobs_for(label: str, config: CoreConfig, traces: Dict[str, object],
             profile_config: Optional[CoreConfig] = None) -> List[Job]:
    """Jobs covering ``traces`` (suite-registry traces only)."""
    jobs = []
    for name, trace in traces.items():
        scale = getattr(trace, "scale", None)
        if name not in SUITE or scale is None:
            raise ValueError(
                f"trace {name!r} is not rebuildable from the workload "
                f"registry; use the serial runner for ad-hoc traces")
        jobs.append(Job(label, config, name, scale, profile_config))
    return jobs


# -- worker protocol -------------------------------------------------------
# Top-level functions so they pickle by reference under spawn.  Workers
# import repro afresh, rebuild the trace from the registry, simulate,
# and return (picklable) SimStats plus the cell's wall-clock seconds.

def _simulate_profile(task) -> Tuple[Dict[int, int], Dict[int, int], float]:
    """Stage 1: profile run → per-PC L1-miss / misprediction counts."""
    config, workload, scale = task
    trace = build_trace(workload, scale)
    start = time.perf_counter()
    core = O3Core(trace, config)
    core.run()
    return (dict(core.pc_l1_misses), dict(core.pc_mispredicts),
            time.perf_counter() - start)


def _simulate_cell(task) -> Tuple[SimStats, float]:
    """Stage 2: simulate one cell (tagging first for criticality runs).

    Tagging happens *inside* the try so a crash mid-``tag`` (partial
    tags) still clears the shared in-process trace on the way out.
    """
    config, workload, scale, profile = task
    trace = build_trace(workload, scale)
    start = time.perf_counter()
    if profile is None:
        stats = O3Core(trace, config).run()
    else:
        tagger = CriticalityTagger()
        tagger.feed_profile(profile[0], profile[1])
        try:
            tagger.tag(trace)
            stats = O3Core(trace, config).run()
        finally:
            clear_tags(trace)
    return stats, time.perf_counter() - start


# -- pool management -------------------------------------------------------
# Pools persist across run_suite calls so a pytest session (or a CLI
# figure with several sub-suites) pays worker spawn + import once.

_POOLS: Dict[int, multiprocessing.pool.Pool] = {}


def _get_pool(workers: int) -> multiprocessing.pool.Pool:
    pool = _POOLS.get(workers)
    if pool is None:
        context = multiprocessing.get_context("spawn")
        pool = context.Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool (also runs atexit)."""
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(shutdown_pools)


def _map(workers: int, func, tasks: Sequence) -> List:
    """Order-preserving map, in-process when workers <= 1."""
    if workers <= 1 or len(tasks) <= 1:
        return [func(task) for task in tasks]
    return _get_pool(workers).map(func, tasks)


# -- the executor ----------------------------------------------------------

def run_suite(jobs: Sequence[Job], workers: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: bool = False) -> Dict[str, "SuiteResult"]:
    """Execute every job; return ``{label: SuiteResult}`` in job order.

    ``workers=None`` reads ``$REPRO_JOBS``; ``workers<=1`` runs
    in-process (the bit-identical serial reference path).  ``cache``
    short-circuits cells (and profiles) already on disk.
    """
    from .runner import SuiteResult          # local: avoid import cycle
    if workers is None:
        workers = default_workers()

    # cached cells short-circuit everything, including their profiles
    cell_keys = [cache_key(job.config, job.workload, job.scale,
                           job.profile_config) for job in jobs]
    outcomes: Dict[int, Tuple[SimStats, float, bool]] = {}
    if cache is not None:
        for index in range(len(jobs)):
            hit = cache.get(cell_keys[index])
            if hit is not None:
                outcomes[index] = (hit, 0.0, True)

    # stage 1: one profile simulation per unique (profile, workload) cell
    profile_keys = {}                        # job index -> profile cell key
    profile_cells = {}                       # key -> (config, name, scale)
    for index, job in enumerate(jobs):
        if job.profile_config is None or index in outcomes:
            continue
        key = cache_key(job.profile_config, job.workload, job.scale)
        profile_keys[index] = key
        profile_cells.setdefault(
            key, (job.profile_config, job.workload, job.scale))
    profiles: Dict[str, ProfileData] = {}
    if cache is not None:
        for key in list(profile_cells):
            hit = cache.get_profile(key)
            if hit is not None:
                profiles[key] = hit
                del profile_cells[key]
    pending = list(profile_cells.items())
    if pending and progress:
        for key, (config, name, scale) in pending:
            print(f"    profile[{config.scheduler}/{config.commit}]: "
                  f"{name}", flush=True)
    for (key, _), (misses, mispredicts, _elapsed) in zip(
            pending, _map(workers, _simulate_profile,
                          [cell for _, cell in pending])):
        profiles[key] = (misses, mispredicts)
        if cache is not None:
            cache.put_profile(key, misses, mispredicts)

    # stage 2: the remaining runs
    tasks, task_indices = [], []
    for index, job in enumerate(jobs):
        if index in outcomes:
            continue
        profile = profiles[profile_keys[index]] \
            if index in profile_keys else None
        tasks.append((job.config, job.workload, job.scale, profile))
        task_indices.append(index)
    if progress:
        for index, job in enumerate(jobs):
            note = " (cached)" if index in outcomes else ""
            print(f"    {job.label}: {job.workload}{note}", flush=True)
    for index, (stats, elapsed) in zip(
            task_indices, _map(workers, _simulate_cell, tasks)):
        outcomes[index] = (stats, elapsed, False)
        if cache is not None:
            cache.put(cell_keys[index], stats)

    results: Dict[str, SuiteResult] = {}
    for index, job in enumerate(jobs):
        stats, elapsed, was_cached = outcomes[index]
        result = results.get(job.label)
        if result is None:
            result = results[job.label] = SuiteResult(job.label, job.config)
        result.stats[job.workload] = stats
        result.timings[job.workload] = elapsed
        result.cached[job.workload] = was_cached
    return results
