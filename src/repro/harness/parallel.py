"""Parallel experiment executor: fan simulation cells out over workers.

Every paper artefact is a grid of independent (config, workload) cells
— exactly the embarrassingly parallel shape the figures' serial loops
wasted.  :func:`run_suite` takes a flat list of :class:`Job` cells and
executes them over the fault-isolated dispatcher in
:mod:`repro.harness.resilience`, with four guarantees:

* **Determinism** — outcomes are keyed by task id and assembled in job
  order, every cell is a pure function of (config, workload name,
  scale), and cells are reconstructed identically in any process;
  parallel, serial, and cached paths return bit-identical
  :class:`~repro.pipeline.SimStats` on fault-free runs.
* **Spawn safety** — workers receive a pickled ``CoreConfig`` plus the
  *workload name and scale*, never a pickled ``Trace``: traces are
  large (megabytes of ``DynInstr``) and rebuilding from the seeded
  workload registry is both cheaper than pickling and guaranteed to
  reproduce the same instruction stream.  The ``spawn`` start method
  is used explicitly so the executor behaves identically on every
  platform (fork would share the parent's trace cache by accident).
* **Two-stage criticality** — jobs carrying a ``profile_config``
  express the profile→tag→run dependency: stage one runs each unique
  (profile config, workload) cell exactly once, stage two feeds that
  single profile to every dependent run (the serial path re-simulated
  the profile per output config).
* **Graceful degradation** — a crashed, hung, or raising cell is an
  annotated hole in the grid, not a dead campaign: its
  :class:`SuiteResult` slot records a typed status
  (:class:`~repro.harness.resilience.CellStatus`) and a
  :class:`~repro.harness.resilience.CellFailure` (with a crash bundle
  for in-worker exceptions), healthy cells complete and are flushed to
  the cache as they finish, and Ctrl-C raises
  :class:`~repro.harness.resilience.SuiteInterrupted` naming exactly
  what finished.

The ``workers<=1`` path runs in-process with no dispatcher, no fault
injection, and seed semantics (exceptions propagate) — it is the
reference the parallel path must match bit-for-bit.

Results come back as ``{label: SuiteResult}`` with per-cell wall-clock
timings so benchmark output can report actual speedup, and an optional
:class:`~repro.harness.cache.ResultCache` short-circuits cells whose
key was already computed.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..criticality import CriticalityTagger, clear_tags
from ..envutil import env_flag
from ..pipeline import CoreConfig, O3Core, SimStats
from ..testing import faults
from ..workloads import SUITE, fetch_trace, generation_params
from .cache import ResultCache, cache_key
from .diagnostics import build_crash_bundle, write_bundle
from .resilience import (CellFailure, CellStatus, SuiteInterrupted,
                         TaskOutcome, TaskSpec, default_cell_timeout,
                         default_chunk_size, default_max_retries,
                         get_pool, next_task_id, shutdown_pools)

__all__ = ["Job", "ProfileData", "default_use_cache", "default_workers",
           "estimate_cell_seconds", "jobs_for", "run_suite",
           "shutdown_pools"]

#: pc_l1_misses, pc_mispredicts — the profile payload fed to the tagger
ProfileData = Tuple[Dict[int, int], Dict[int, int]]


@dataclass
class Job:
    """One simulation cell: a config applied to one registry workload."""

    label: str
    config: CoreConfig
    workload: str
    scale: float = 1.0
    #: when set, this is a criticality run: profile under this config,
    #: tag the critical slices, then simulate under ``config``
    profile_config: Optional[CoreConfig] = None

    @property
    def cell_id(self) -> str:
        return f"{self.label}/{self.workload}"


def default_workers() -> int:
    """Worker count from ``$REPRO_JOBS`` (default 1 = in-process)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_use_cache() -> bool:
    """Cache policy from ``$REPRO_CACHE`` (off unless set truthy —
    ``false``/``off``/``no``/``0``/unset all disable)."""
    return env_flag("REPRO_CACHE", default=False)


#: crude generation-parameter-to-seconds calibration for chunk sizing:
#: suite kernels emit ~12 trace instructions per size-parameter unit
#: and the engine sustains ~20 kcycles/sec at ~1.3 cycles/instr
_SECONDS_PER_PARAM_UNIT = 1.0 / 1300.0


def estimate_cell_seconds(workload: str, scale: float = 1.0) -> float:
    """Order-of-magnitude wall-clock estimate for one cell.

    Only used to auto-size dispatch chunks (``TaskSpec.est_seconds``);
    an estimate that is off by a few× merely changes how many cells
    share a pipe round-trip, never what they compute.
    """
    try:
        params = generation_params(workload, scale)
    except ValueError:
        return 0.0
    return sum(params.values()) * _SECONDS_PER_PARAM_UNIT


def jobs_for(label: str, config: CoreConfig, traces: Dict[str, object],
             profile_config: Optional[CoreConfig] = None) -> List[Job]:
    """Jobs covering ``traces`` (suite-registry traces only)."""
    jobs = []
    for name, trace in traces.items():
        scale = getattr(trace, "scale", None)
        if name not in SUITE or scale is None:
            raise ValueError(
                f"trace {name!r} is not rebuildable from the workload "
                f"registry; use the serial runner for ad-hoc traces")
        jobs.append(Job(label, config, name, scale, profile_config))
    return jobs


# -- worker protocol -------------------------------------------------------
# Top-level functions so they pickle by reference under spawn.  Workers
# import repro afresh, fetch the trace through the bounded in-process
# LRU (:func:`repro.workloads.fetch_trace` — rebuilt from the registry
# on a miss, never pickled), simulate, and return (picklable) SimStats
# plus the cell's wall-clock seconds and whether its trace was an LRU
# hit.  Because worker processes persist across chunks and run_suite
# calls, and the parent sorts cells so same-workload cells share a
# chunk, successive cells stop re-generating megabyte traces.
# The _simulate_* pair is the bare reference path (used in-process when
# workers <= 1); the _guarded_* pair wraps it for the dispatcher —
# applying injected faults and converting exceptions into failure
# dicts carrying a crash-diagnostic bundle.

def _simulate_profile(task) -> Tuple[Dict[int, int], Dict[int, int], float]:
    """Stage 1: profile run → per-PC L1-miss / misprediction counts."""
    config, workload, scale = task
    trace, _hit = fetch_trace(workload, scale)
    start = time.perf_counter()
    core = O3Core(trace, config)
    core.run()
    return (dict(core.pc_l1_misses), dict(core.pc_mispredicts),
            time.perf_counter() - start)


def _simulate_cell(task, subscribers: Sequence = ()
                   ) -> Tuple[SimStats, float, bool]:
    """Stage 2: simulate one cell (tagging first for criticality runs).

    Tagging happens *inside* the try so a crash mid-``tag`` (partial
    tags) still clears the shared in-process trace on the way out.
    ``subscribers`` are attached to the core's event bus before the
    run (fault injection; empty on the reference path).  Returns
    ``(stats, seconds, trace_was_cache_hit)``.
    """
    config, workload, scale, profile = task
    trace, trace_hit = fetch_trace(workload, scale)
    start = time.perf_counter()
    if profile is None:
        core = O3Core(trace, config)
        for subscriber in subscribers:
            core.bus.attach(subscriber)
        stats = core.run()
    else:
        tagger = CriticalityTagger()
        tagger.feed_profile(profile[0], profile[1])
        try:
            tagger.tag(trace)
            core = O3Core(trace, config)
            for subscriber in subscribers:
                core.bus.attach(subscriber)
            stats = core.run()
        finally:
            clear_tags(trace)
    return stats, time.perf_counter() - start, trace_hit


def _guarded_profile(payload, attempt: int):
    """Dispatcher wrapper for stage 1: fault hooks + failure capture."""
    cell_id, config, workload, scale, faults_text = payload
    specs = faults.parse_fault_specs(faults_text)
    faults.preflight(specs, cell_id, attempt)
    try:
        return "ok", _simulate_profile((config, workload, scale))
    except Exception as exc:
        tb = traceback.format_exc()
        bundle = build_crash_bundle(
            label="profile", config=config, workload=workload, scale=scale,
            exc=exc, tb=tb, attempt=attempt, faults_text=faults_text)
        return "error", {"kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}",
                         "traceback": tb, "bundle": bundle}


def _guarded_cell(payload, attempt: int):
    """Dispatcher wrapper for stage 2: fault hooks + failure capture."""
    (label, config, workload, scale, profile, profile_config,
     faults_text) = payload
    cell_id = f"{label}/{workload}"
    specs = faults.parse_fault_specs(faults_text)
    faults.preflight(specs, cell_id, attempt)
    exploder = faults.explode_subscriber(specs, cell_id, attempt)
    subscribers = (exploder,) if exploder is not None else ()
    try:
        stats, elapsed, trace_hit = _simulate_cell(
            (config, workload, scale, profile), subscribers)
        return "ok", (stats, elapsed, trace_hit)
    except Exception as exc:
        tb = traceback.format_exc()
        bundle = build_crash_bundle(
            label=label, config=config, workload=workload, scale=scale,
            profile=profile, profile_config=profile_config,
            exc=exc, tb=tb, attempt=attempt, faults_text=faults_text)
        return "error", {"kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}",
                         "traceback": tb, "bundle": bundle}


# -- the executor ----------------------------------------------------------

@dataclass
class _CellRecord:
    """Terminal state of one job's cell, pre-assembly."""

    status: CellStatus
    stats: Optional[SimStats] = None
    elapsed: float = 0.0
    failure: Optional[CellFailure] = None
    #: seconds spent waiting for a worker (enqueue → actual dispatch)
    queued: float = 0.0
    #: did the cell's trace come from the in-process/in-worker LRU?
    trace_hit: bool = False


def _finalize_failure(failure: Optional[CellFailure]
                      ) -> Optional[CellFailure]:
    """Write a failure's in-worker bundle payload to the crash dir."""
    if failure is not None and failure.bundle_data is not None:
        try:
            failure.bundle = str(write_bundle(failure.bundle_data))
        except OSError:
            pass
        failure.bundle_data = None
    return failure


def run_suite(jobs: Sequence[Job], workers: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              progress: bool = False,
              timeout: Optional[float] = None,
              retries: Optional[int] = None,
              chunk: Optional[int] = None) -> Dict[str, "SuiteResult"]:
    """Execute every job; return ``{label: SuiteResult}`` in job order.

    ``workers=None`` reads ``$REPRO_JOBS``; ``workers<=1`` runs
    in-process (the bit-identical serial reference path, where
    exceptions propagate and no faults are injected).  ``cache``
    short-circuits cells (and profiles) already on disk — resolved in
    the parent *before* dispatch, so a fully warm sweep never spawns a
    worker — and receives each completed cell as it finishes.
    ``timeout`` (seconds; ``None`` reads ``$REPRO_CELL_TIMEOUT``)
    bounds each cell on the worker path; ``retries`` (``None`` reads
    ``$REPRO_RETRIES``) bounds crash retries.  ``chunk`` (``None``
    reads ``$REPRO_CHUNK``, 0/unset → auto-size from per-cell timing
    estimates) sets how many cells share one dispatch round-trip; the
    dispatch order additionally groups cells by (workload, scale) so
    chunk-mates hit the worker-side trace LRU.  Failed cells come
    back as annotated holes in the :class:`SuiteResult`, never as
    raised exceptions.
    """
    from .runner import SuiteResult          # local: avoid import cycle
    if workers is None:
        workers = default_workers()
    if timeout is None:
        timeout = default_cell_timeout()
    if retries is None:
        retries = default_max_retries()
    if chunk is None:
        chunk = default_chunk_size()
    # the fault programme is sampled here, in the parent, and travels
    # inside task payloads: persistent pools may predate the env var,
    # and a typo'd programme must fail the suite, not silently no-op
    faults_text = os.environ.get(faults.FAULT_ENV, "")
    fault_specs = faults.parse_fault_specs(faults_text)

    def flush_cell(index: int, stats: SimStats) -> None:
        if cache is None:
            return
        cache.put(cell_keys[index], stats)
        if fault_specs:
            faults.apply_corrupt_faults(
                fault_specs, jobs[index].cell_id,
                cache.path_for(cell_keys[index]))

    # cached cells short-circuit everything, including their profiles;
    # resolving them here, before any dispatch, means a fully warm
    # sweep never touches (or spawns) the worker pool at all
    cell_keys = [cache_key(job.config, job.workload, job.scale,
                           job.profile_config) for job in jobs]
    records: Dict[int, _CellRecord] = {}
    if cache is not None:
        hits = cache.get_many(cell_keys)
        for index, key in enumerate(cell_keys):
            if key in hits:
                records[index] = _CellRecord(CellStatus.CACHED, hits[key])

    # stage 1: one profile simulation per unique (profile, workload) cell
    profile_keys = {}                        # job index -> profile cell key
    profile_cells = {}                       # key -> (config, name, scale)
    for index, job in enumerate(jobs):
        if job.profile_config is None or index in records:
            continue
        key = cache_key(job.profile_config, job.workload, job.scale)
        profile_keys[index] = key
        profile_cells.setdefault(
            key, (job.profile_config, job.workload, job.scale))
    profiles: Dict[str, ProfileData] = {}
    profile_failures: Dict[str, CellFailure] = {}
    if cache is not None:
        for key in list(profile_cells):
            hit = cache.get_profile(key)
            if hit is not None:
                profiles[key] = hit
                del profile_cells[key]
    pending = list(profile_cells.items())
    if pending and progress:
        for key, (config, name, scale) in pending:
            print(f"    profile[{config.scheduler}/{config.commit}]: "
                  f"{name}", flush=True)
    if pending and workers <= 1:
        for key, cell in pending:
            misses, mispredicts, _elapsed = _simulate_profile(cell)
            profiles[key] = (misses, mispredicts)
            if cache is not None:
                cache.put_profile(key, misses, mispredicts)
    elif pending:
        specs, key_of = [], {}
        # affinity: same-workload profiles share a chunk → trace LRU hits
        for key, (config, name, scale) in sorted(
                pending, key=lambda kv: (kv[1][1], kv[1][2])):
            spec = TaskSpec(next_task_id(), f"profile/{name}",
                            _guarded_profile,
                            (f"profile/{name}", config, name, scale,
                             faults_text),
                            est_seconds=estimate_cell_seconds(name, scale))
            specs.append(spec)
            key_of[spec.task_id] = key

        def profile_done(spec: TaskSpec, outcome: TaskOutcome) -> None:
            if outcome.status is not CellStatus.OK:
                profile_failures[key_of[spec.task_id]] = \
                    _finalize_failure(outcome.failure)
                return
            misses, mispredicts, _elapsed = outcome.value
            profiles[key_of[spec.task_id]] = (misses, mispredicts)
            if cache is not None:
                cache.put_profile(key_of[spec.task_id], misses, mispredicts)

        get_pool(workers).run(specs, timeout=timeout, retries=retries,
                              on_complete=profile_done, chunk=chunk)

    # stage 2: the remaining runs
    if progress:
        for index, job in enumerate(jobs):
            note = " (cached)" if index in records else ""
            print(f"    {job.label}: {job.workload}{note}", flush=True)
    task_indices = [index for index in range(len(jobs))
                    if index not in records]
    if workers <= 1:
        # in-process reference path: exceptions propagate (seed
        # semantics); Ctrl-C still reports what finished
        try:
            for index in task_indices:
                job = jobs[index]
                profile = profiles[profile_keys[index]] \
                    if index in profile_keys else None
                stats, elapsed, trace_hit = _simulate_cell(
                    (job.config, job.workload, job.scale, profile))
                records[index] = _CellRecord(CellStatus.OK, stats, elapsed,
                                             trace_hit=trace_hit)
                flush_cell(index, stats)
        except KeyboardInterrupt:
            done = [jobs[i].cell_id for i in task_indices if i in records]
            raise SuiteInterrupted(done, len(task_indices)) from None
    else:
        specs, index_of = [], {}
        # affinity scheduling: dispatch same-(workload, scale) cells
        # adjacently so they land in the same chunk (and therefore the
        # same worker), maximising the worker-side trace-LRU hit rate.
        # Outcomes are keyed by task id and assembled in job order
        # below, so dispatch order never affects results.
        ordered = sorted(task_indices,
                         key=lambda i: (jobs[i].workload, jobs[i].scale,
                                        jobs[i].label))
        for index in ordered:
            job = jobs[index]
            key = profile_keys.get(index)
            if key is not None and key not in profiles:
                # the profile this cell depends on failed upstream
                upstream = profile_failures.get(key)
                records[index] = _CellRecord(
                    CellStatus.FAILED,
                    failure=CellFailure(
                        kind="dependency",
                        message=(f"profile cell failed: "
                                 f"{upstream.summary()}" if upstream
                                 else "profile cell failed"),
                        bundle=upstream.bundle if upstream else None))
                continue
            profile = profiles[key] if key is not None else None
            spec = TaskSpec(next_task_id(), job.cell_id, _guarded_cell,
                            (job.label, job.config, job.workload,
                             job.scale, profile, job.profile_config,
                             faults_text),
                            est_seconds=estimate_cell_seconds(
                                job.workload, job.scale))
            specs.append(spec)
            index_of[spec.task_id] = index

        def cell_done(spec: TaskSpec, outcome: TaskOutcome) -> None:
            index = index_of[spec.task_id]
            if outcome.status is CellStatus.OK:
                stats, elapsed, trace_hit = outcome.value
                records[index] = _CellRecord(CellStatus.OK, stats, elapsed,
                                             queued=outcome.queued_s,
                                             trace_hit=trace_hit)
                flush_cell(index, stats)
            else:
                records[index] = _CellRecord(
                    outcome.status,
                    failure=_finalize_failure(outcome.failure),
                    queued=outcome.queued_s)

        if specs:                        # a warm sweep spawns no workers
            get_pool(workers).run(specs, timeout=timeout, retries=retries,
                                  on_complete=cell_done, chunk=chunk)
        for spec in specs:               # backstop: no task goes missing
            index = index_of[spec.task_id]
            if index not in records:
                records[index] = _CellRecord(
                    CellStatus.FAILED,
                    failure=CellFailure(kind="crash",
                                        message="no outcome recorded"))

    results: Dict[str, SuiteResult] = {}
    for index, job in enumerate(jobs):
        record = records[index]
        result = results.get(job.label)
        if result is None:
            result = results[job.label] = SuiteResult(job.label, job.config)
        result.statuses[job.workload] = record.status
        result.timings[job.workload] = record.elapsed
        result.queued[job.workload] = record.queued
        result.cached[job.workload] = record.status is CellStatus.CACHED
        result.trace_hits[job.workload] = record.trace_hit
        if record.stats is not None:
            result.stats[job.workload] = record.stats
        if record.failure is not None:
            result.failures[job.workload] = record.failure
    return results
