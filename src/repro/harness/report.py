"""Plain-text report formatting for experiment results."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: List[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(row):
        return "  ".join(cell.ljust(widths[i]) if i == 0 else
                         cell.rjust(widths[i])
                         for i, cell in enumerate(row))
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_speedup_matrix(per_workload: Dict[str, Dict[str, float]],
                          config_order: List[str],
                          title: str = "",
                          baseline: str = "") -> str:
    """Rows = workloads, columns = configurations, cells = speedup."""
    headers = ["workload"] + config_order
    rows = []
    for workload in sorted(per_workload):
        row = [workload]
        for config in config_order:
            value = per_workload[workload].get(config)
            row.append("-" if value is None else f"{value:.3f}")
        rows.append(row)
    if baseline:
        title = f"{title} (speedup vs {baseline})" if title else \
            f"speedup vs {baseline}"
    return format_table(headers, rows, title)


def percent(value: float) -> str:
    return f"{(value - 1.0) * 100:+.1f}%"
