"""Experiment runner: simulate suites of (config, workload) pairs.

``run_config`` / ``run_config_with_criticality`` keep their original
signatures but now submit through the parallel executor
(:mod:`repro.harness.parallel`): ``workers`` defaults to ``$REPRO_JOBS``
and ``use_cache`` to ``$REPRO_CACHE``, so the serial seed behaviour is
unchanged unless the environment (or a caller) opts in.  Ad-hoc traces
that are not rebuildable from the workload registry fall back to the
in-process serial path automatically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..criticality import CriticalityTagger, clear_tags
from ..isa import Trace
from ..pipeline import CoreConfig, O3Core, SimStats
from .cache import ResultCache
from .parallel import (Job, default_use_cache, default_workers, jobs_for,
                       run_suite)
from .resilience import CellFailure, CellStatus


@dataclass
class SuiteResult:
    """IPC (and full stats) for one configuration across the suite.

    A cell that failed, timed out, or lost its profile dependency is
    an annotated hole: absent from ``stats`` but present in
    ``statuses`` (and ``failures``) so downstream artefacts render
    missing cells instead of crashing on ``KeyError``.
    """

    label: str
    config: CoreConfig
    stats: Dict[str, SimStats] = field(default_factory=dict)
    #: per-workload simulation wall-clock seconds, measured in-worker
    #: from actual dispatch (0.0 for cache hits) — queue wait is
    #: reported separately in ``queued`` so durations are never
    #: inflated by time spent waiting for a free worker
    timings: Dict[str, float] = field(default_factory=dict)
    #: per-workload seconds spent queued (enqueue → dispatch; 0.0 on
    #: the serial path and for cache hits)
    queued: Dict[str, float] = field(default_factory=dict)
    #: per-workload flag: did the cell come from the result cache?
    cached: Dict[str, bool] = field(default_factory=dict)
    #: per-workload flag: was the cell's trace served from the
    #: in-process/in-worker trace LRU instead of being regenerated?
    trace_hits: Dict[str, bool] = field(default_factory=dict)
    #: per-workload terminal status (ok | failed | timeout | cached)
    statuses: Dict[str, CellStatus] = field(default_factory=dict)
    #: per-workload failure detail for non-ok cells
    failures: Dict[str, CellFailure] = field(default_factory=dict)
    #: lane batches this suite's cells ran in: batch id →
    #: (driver steps, lane steps); keyed by id so a batch holding many
    #: cells — or spanning labels — counts once in occupancy math
    lane_batches: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def ipc(self, workload: str) -> float:
        try:
            return self.stats[workload].ipc
        except KeyError:
            failure = self.failures.get(workload)
            if failure is not None:
                raise KeyError(
                    f"workload {workload!r} in suite result "
                    f"{self.label!r} did not finish — "
                    f"{failure.summary()}") from None
            available = ", ".join(sorted(self.stats)) or "none"
            raise KeyError(
                f"no stats for workload {workload!r} in suite result "
                f"{self.label!r} (available: {available})") from None

    def workloads(self) -> List[str]:
        return list(self.stats)

    def missing(self) -> List[str]:
        """Workloads attempted but absent from ``stats``."""
        return [name for name in self.statuses if name not in self.stats]

    def complete(self) -> bool:
        return not self.missing()

    def failure_notes(self) -> List[str]:
        """Human-readable lines, one per missing cell."""
        notes = []
        for name in self.missing():
            failure = self.failures.get(name)
            detail = failure.summary() if failure is not None \
                else str(self.statuses[name])
            notes.append(f"{self.label}/{name}: {detail}")
        return notes

    def sim_seconds(self) -> float:
        """Total simulation wall-clock across cells (cache hits cost 0)."""
        return sum(self.timings.values())

    def queued_seconds(self) -> float:
        """Total time cells spent waiting for a worker."""
        return sum(self.queued.values())

    def cache_hits(self) -> int:
        return sum(1 for hit in self.cached.values() if hit)

    def trace_cache_hits(self) -> int:
        """Cells whose trace came from the trace LRU (not rebuilt)."""
        return sum(1 for hit in self.trace_hits.values() if hit)

    def trace_cache_misses(self) -> int:
        """Cells whose trace had to be (re)generated."""
        return sum(1 for name, hit in self.trace_hits.items()
                   if not hit and not self.cached.get(name, False))

    def mean_lane_occupancy(self) -> float:
        """Mean active lanes per lockstep iteration across batches.

        0.0 when nothing lane-batched (the serial/per-cell paths).
        Aggregated over driver iterations, so a long low-occupancy
        batch is not drowned out by a short full one.
        """
        steps = sum(s for s, _ in self.lane_batches.values())
        lane_steps = sum(ls for _, ls in self.lane_batches.values())
        return lane_steps / steps if steps else 0.0


def resolve_execution(workers: Optional[int] = None,
                      use_cache: Optional[bool] = None,
                      cache: Optional[ResultCache] = None
                      ) -> Tuple[int, Optional[ResultCache]]:
    """Fill executor knobs from the environment where unspecified."""
    if workers is None:
        workers = default_workers()
    if cache is None:
        if use_cache is None:
            use_cache = default_use_cache()
        cache = ResultCache() if use_cache else None
    return workers, cache


def _registry_backed(traces: Dict[str, Trace]) -> bool:
    """Every trace rebuildable by name from the target registry?

    Registered targets of any kind (synthetic, scenario, trace-file)
    qualify for the executor; truly ad-hoc in-memory traces take the
    serial seed path.
    """
    from ..workloads import has_target
    return all(has_target(name)
               and getattr(trace, "scale", None) is not None
               for name, trace in traces.items())


def run_config(label: str, config: CoreConfig,
               traces: Dict[str, Trace],
               progress: bool = False,
               workers: Optional[int] = None,
               use_cache: Optional[bool] = None,
               cache: Optional[ResultCache] = None,
               timeout: Optional[float] = None,
               chunk: Optional[int] = None,
               lanes: Optional[int] = None) -> SuiteResult:
    """Simulate every trace under ``config`` (via the executor)."""
    if not _registry_backed(traces):
        return _serial_run_config(label, config, traces, progress)
    workers, cache = resolve_execution(workers, use_cache, cache)
    results = run_suite(jobs_for(label, config, traces),
                        workers=workers, cache=cache, progress=progress,
                        timeout=timeout, chunk=chunk, lanes=lanes)
    return results.get(label, SuiteResult(label, config))


def _serial_run_config(label: str, config: CoreConfig,
                       traces: Dict[str, Trace],
                       progress: bool = False) -> SuiteResult:
    """The seed path: ad-hoc traces simulated in-process."""
    result = SuiteResult(label, config)
    for name, trace in traces.items():
        if progress:
            print(f"    {label}: {name}", flush=True)
        start = time.perf_counter()
        result.stats[name] = O3Core(trace, config).run()
        result.timings[name] = time.perf_counter() - start
        result.queued[name] = 0.0
        result.cached[name] = False
        result.trace_hits[name] = False
        result.statuses[name] = CellStatus.OK
    return result


def run_criticality_suite(specs: Sequence[Tuple[str, CoreConfig]],
                          traces: Dict[str, Trace],
                          profile_config: CoreConfig,
                          progress: bool = False,
                          workers: Optional[int] = None,
                          use_cache: Optional[bool] = None,
                          cache: Optional[ResultCache] = None,
                          timeout: Optional[float] = None,
                          chunk: Optional[int] = None,
                          lanes: Optional[int] = None
                          ) -> Dict[str, SuiteResult]:
    """CRI runs for several output configs sharing one profile.

    Profile under ``profile_config`` (HPC stand-in) once per workload,
    tag the critical slices via CCT+IBDA, then simulate every
    ``(label, config)`` spec against the tagged trace.  The profile
    simulation is deduplicated: one profile feeds all dependent runs.
    """
    if not _registry_backed(traces):
        return _serial_criticality_suite(specs, traces, profile_config,
                                         progress)
    workers, cache = resolve_execution(workers, use_cache, cache)
    jobs: List[Job] = []
    for label, config in specs:
        jobs.extend(jobs_for(label, config, traces, profile_config))
    results = run_suite(jobs, workers=workers, cache=cache,
                        progress=progress, timeout=timeout, chunk=chunk,
                        lanes=lanes)
    return {label: results.get(label, SuiteResult(label, config))
            for label, config in specs}


def _serial_criticality_suite(specs: Sequence[Tuple[str, CoreConfig]],
                              traces: Dict[str, Trace],
                              profile_config: CoreConfig,
                              progress: bool = False
                              ) -> Dict[str, SuiteResult]:
    """Ad-hoc-trace path: profile each trace once, feed every spec."""
    results = {label: SuiteResult(label, config)
               for label, config in specs}
    for name, trace in traces.items():
        if progress:
            print(f"    profile: {name}", flush=True)
        profiler = O3Core(trace, profile_config)
        profiler.run()
        for label, config in specs:
            if progress:
                print(f"    {label}: {name}", flush=True)
            tagger = CriticalityTagger()
            tagger.feed_profile(profiler.pc_l1_misses,
                                profiler.pc_mispredicts)
            start = time.perf_counter()
            # tag() inside the try: a crash mid-tag must not leak
            # partial tags into later runs of this shared trace
            try:
                tagger.tag(trace)
                results[label].stats[name] = O3Core(trace, config).run()
            finally:
                clear_tags(trace)
            results[label].timings[name] = time.perf_counter() - start
            results[label].queued[name] = 0.0
            results[label].cached[name] = False
            results[label].trace_hits[name] = False
            results[label].statuses[name] = CellStatus.OK
    return results


def run_config_with_criticality(label: str, config: CoreConfig,
                                traces: Dict[str, Trace],
                                profile_config: CoreConfig,
                                progress: bool = False,
                                workers: Optional[int] = None,
                                use_cache: Optional[bool] = None,
                                cache: Optional[ResultCache] = None,
                                timeout: Optional[float] = None,
                                chunk: Optional[int] = None,
                                lanes: Optional[int] = None
                                ) -> SuiteResult:
    """One CRI configuration (see :func:`run_criticality_suite`)."""
    results = run_criticality_suite([(label, config)], traces,
                                    profile_config, progress,
                                    workers=workers, use_cache=use_cache,
                                    cache=cache, timeout=timeout,
                                    chunk=chunk, lanes=lanes)
    return results[label]


def geomean(values: List[float]) -> float:
    if not values:
        return 1.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values)
                    / len(values))


def speedups(result: SuiteResult, baseline: SuiteResult
             ) -> Dict[str, float]:
    """Per-workload IPC ratio vs the baseline configuration.

    Only workloads with stats on *both* sides contribute — a cell
    that failed in either suite is a hole, not a crash.
    """
    return {name: result.ipc(name) / baseline.ipc(name)
            for name in baseline.workloads()
            if name in result.stats}


def geomean_speedup(result: SuiteResult, baseline: SuiteResult) -> float:
    return geomean(list(speedups(result, baseline).values()))
