"""Experiment runner: simulate suites of (config, workload) pairs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..criticality import CriticalityTagger, clear_tags
from ..isa import Trace
from ..pipeline import CoreConfig, O3Core, SimStats


@dataclass
class SuiteResult:
    """IPC (and full stats) for one configuration across the suite."""

    label: str
    config: CoreConfig
    stats: Dict[str, SimStats] = field(default_factory=dict)

    def ipc(self, workload: str) -> float:
        return self.stats[workload].ipc

    def workloads(self) -> List[str]:
        return list(self.stats)


def run_config(label: str, config: CoreConfig,
               traces: Dict[str, Trace],
               progress: bool = False) -> SuiteResult:
    """Simulate every trace under ``config``."""
    result = SuiteResult(label, config)
    for name, trace in traces.items():
        if progress:
            print(f"    {label}: {name}", flush=True)
        result.stats[name] = O3Core(trace, config).run()
    return result


def run_config_with_criticality(label: str, config: CoreConfig,
                                traces: Dict[str, Trace],
                                profile_config: CoreConfig,
                                progress: bool = False) -> SuiteResult:
    """CRI runs: profile under ``profile_config`` (HPC stand-in), tag
    the critical slices via CCT+IBDA, simulate, then clear the tags."""
    result = SuiteResult(label, config)
    for name, trace in traces.items():
        if progress:
            print(f"    {label}: {name} (profile+run)", flush=True)
        profiler = O3Core(trace, profile_config)
        profiler.run()
        tagger = CriticalityTagger()
        tagger.feed_profile(profiler.pc_l1_misses, profiler.pc_mispredicts)
        tagger.tag(trace)
        try:
            result.stats[name] = O3Core(trace, config).run()
        finally:
            clear_tags(trace)
    return result


def geomean(values: List[float]) -> float:
    if not values:
        return 1.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values)
                    / len(values))


def speedups(result: SuiteResult, baseline: SuiteResult
             ) -> Dict[str, float]:
    """Per-workload IPC ratio vs the baseline configuration."""
    return {name: result.ipc(name) / baseline.ipc(name)
            for name in baseline.workloads()}


def geomean_speedup(result: SuiteResult, baseline: SuiteResult) -> float:
    return geomean(list(speedups(result, baseline).values()))
