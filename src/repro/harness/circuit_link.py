"""Pipeline → circuit model link (paper §6.3).

"To accurately estimate the power consumption, we collect statistics
from the simulated pipeline and feed them into the SPICE simulation."
This module does exactly that: run the suite on an Orinoco core,
average the matrix schedulers' per-cycle operation counts, and build
the Table 2 power figures from *measured* activities instead of the
nominal ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuit import MatrixSpec, Table2Row, table2
from ..pipeline import make_config
from ..workloads import build_suite
from .runner import run_config


def measured_activities(scale: float = 1.0,
                        names: Optional[List[str]] = None,
                        preset: str = "base",
                        workers: Optional[int] = None,
                        use_cache: Optional[bool] = None,
                        timeout: Optional[float] = None,
                        chunk: Optional[int] = None,
                        lanes: Optional[int] = None
                        ) -> Dict[str, float]:
    """Cycle-weighted mean matrix activities over the suite."""
    traces = build_suite(scale, names)
    config = make_config(preset, scheduler="orinoco", commit="orinoco")
    result = run_config("activity", config, traces,
                        workers=workers, use_cache=use_cache,
                        timeout=timeout, chunk=chunk, lanes=lanes)
    totals: Dict[str, float] = {}
    cycles = 0
    for stats in result.stats.values():
        cycles += stats.cycles
        for key, value in stats.matrix_activity().items():
            totals[key] = totals.get(key, 0.0) + value * stats.cycles
    return {key: value / cycles for key, value in totals.items()} \
        if cycles else totals


def table2_measured(scale: float = 1.0,
                    names: Optional[List[str]] = None,
                    preset: str = "base",
                    workers: Optional[int] = None,
                    use_cache: Optional[bool] = None,
                    timeout: Optional[float] = None,
                    chunk: Optional[int] = None,
                    lanes: Optional[int] = None) -> List[Table2Row]:
    """Table 2 with powers computed from simulated activities."""
    activity = measured_activities(scale, names, preset,
                                   workers=workers, use_cache=use_cache,
                                   timeout=timeout, chunk=chunk,
                                   lanes=lanes)
    config = make_config(preset)
    rob_rows = max(1, int(round(activity.get("rob_rows", 8.0))))

    def dim(size: int, banks: int = 4) -> int:
        """Array dimension: the largest bank-aligned size (97 -> 96,
        matching the paper's 96x96 IQ array for the 97-entry IQ)."""
        return size - size % banks

    matrices = [
        MatrixSpec("Age Matrix (IQ)", dim(config.iq_size),
                   dim(config.iq_size), 4,
                   ops_per_cycle=activity.get("iq_ops", 1.0),
                   writes_per_cycle=activity.get("iq_writes", 2.0)),
        MatrixSpec("Age Matrix (ROB)", dim(config.rob_size),
                   dim(config.rob_size), 4,
                   ops_per_cycle=activity.get("rob_ops", 1.0),
                   writes_per_cycle=activity.get("rob_writes", 2.0),
                   active_rows=rob_rows),
        MatrixSpec("Memory Disambiguation Matrix", dim(config.lq_size),
                   dim(config.sq_size), 4,
                   ops_per_cycle=activity.get("mdm_ops", 1.0)
                   + activity.get("mdm_writes", 1.0),
                   writes_per_cycle=activity.get("mdm_writes", 1.0)),
        MatrixSpec("Wakeup Matrix", dim(config.iq_size),
                   dim(config.iq_size), 4,
                   ops_per_cycle=activity.get("wakeup_ops", 1.0),
                   writes_per_cycle=activity.get("wakeup_writes", 2.0)),
    ]
    return table2(matrices)
