"""Experiment harness: runners, per-figure experiments, reporting."""

from .characterize import (KernelProfile, characterize,
                           format_characterization)
from .circuit_link import measured_activities, table2_measured
from .experiments import (ExperimentResult, FIG15_CONFIGS, fig14, fig15,
                          fig16, stall_breakdown, table1)
from .plots import grouped_bars, hbar_chart, sparkline
from .report import format_speedup_matrix, format_table, percent
from .runner import (SuiteResult, geomean, geomean_speedup, run_config,
                     run_config_with_criticality, speedups)

__all__ = ["KernelProfile", "characterize", "format_characterization",
           "grouped_bars", "hbar_chart", "sparkline",
           "measured_activities", "table2_measured",
           "ExperimentResult", "FIG15_CONFIGS", "fig14", "fig15", "fig16",
           "stall_breakdown", "table1", "format_speedup_matrix",
           "format_table", "percent", "SuiteResult", "geomean",
           "geomean_speedup", "run_config", "run_config_with_criticality",
           "speedups"]
