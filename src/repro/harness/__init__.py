"""Experiment harness: runners, per-figure experiments, reporting."""

from .cache import ResultCache, cache_key, config_fingerprint
from .characterize import (KernelProfile, characterize,
                           format_characterization)
from .circuit_link import measured_activities, table2_measured
from .diagnostics import (ReplayReport, build_crash_bundle,
                          config_from_fingerprint, default_crash_dir,
                          load_bundle, replay_bundle, write_bundle)
from .experiments import (ExperimentResult, FIG15_CONFIGS, fig14, fig15,
                          fig16, stall_breakdown, table1)
from .parallel import (Job, default_lanes, default_use_cache,
                       default_workers, estimate_cell_seconds, jobs_for,
                       run_suite, shutdown_pools)
from .plots import grouped_bars, hbar_chart, sparkline
from .report import format_speedup_matrix, format_table, percent
from .resilience import (CellFailure, CellStatus, SuiteInterrupted,
                         default_cell_timeout, default_chunk_size,
                         default_max_retries)
from .runner import (SuiteResult, geomean, geomean_speedup,
                     resolve_execution, run_config,
                     run_config_with_criticality, run_criticality_suite,
                     speedups)

__all__ = ["KernelProfile", "characterize", "format_characterization",
           "grouped_bars", "hbar_chart", "sparkline",
           "measured_activities", "table2_measured",
           "ExperimentResult", "FIG15_CONFIGS", "fig14", "fig15", "fig16",
           "stall_breakdown", "table1", "format_speedup_matrix",
           "format_table", "percent", "SuiteResult", "geomean",
           "geomean_speedup", "run_config", "run_config_with_criticality",
           "run_criticality_suite", "resolve_execution", "speedups",
           "ResultCache", "cache_key", "config_fingerprint",
           "Job", "default_lanes", "default_use_cache", "default_workers",
           "estimate_cell_seconds", "jobs_for", "run_suite",
           "shutdown_pools",
           "CellFailure", "CellStatus", "SuiteInterrupted",
           "default_cell_timeout", "default_chunk_size",
           "default_max_retries",
           "ReplayReport", "build_crash_bundle", "config_from_fingerprint",
           "default_crash_dir", "load_bundle", "replay_bundle",
           "write_bundle"]
