"""Plain-text bar charts for the figure reports (no plotting deps)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def hbar_chart(values: Dict[str, Optional[float]], title: str = "",
               width: int = 48, baseline: float = 1.0,
               fmt: str = "{:+.1%}") -> str:
    """Horizontal bars of (value - baseline), styled like the paper's
    speedup figures: bars grow right for gains, left for losses.
    ``None`` values (cells that failed or timed out) render as an
    annotated empty row instead of crashing the report."""
    if not values:
        return title
    deltas = {k: v - baseline for k, v in values.items() if v is not None}
    biggest = max((abs(d) for d in deltas.values()), default=1.0) or 1.0
    half = width // 2
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        if value is None:
            bar = (" " * half + "|").ljust(width + 1)
            lines.append(f"{key.ljust(label_width)} {bar} (no data)")
            continue
        delta = deltas[key]
        length = int(round(abs(delta) / biggest * half))
        if delta >= 0:
            bar = " " * half + "|" + "#" * length
        else:
            bar = " " * (half - length) + "#" * length + "|"
        bar = bar.ljust(width + 1)
        lines.append(f"{key.ljust(label_width)} {bar} "
                     f"{fmt.format(delta)}")
    return "\n".join(lines)


def grouped_bars(groups: Dict[str, Dict[str, float]], title: str = "",
                 width: int = 40, baseline: float = 1.0) -> str:
    """One hbar block per group (e.g. per core size in Figure 16)."""
    blocks = [title] if title else []
    for group, values in groups.items():
        blocks.append(hbar_chart(values, title=f"[{group}]", width=width,
                                 baseline=baseline))
    return "\n\n".join(blocks)


def sparkline(series: Sequence[float], width: Optional[int] = None) -> str:
    """Compact trend line using block characters."""
    if not series:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(series), max(series)
    span = (hi - lo) or 1.0
    points = series if width is None else \
        [series[int(i * len(series) / width)] for i in range(width)]
    return "".join(blocks[1 + int((v - lo) / span * (len(blocks) - 2))]
                   for v in points)
