"""Workload characterization: verify each kernel delivers its promised
behaviour class (DESIGN.md's substitution argument for SPEC CPU2017).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa import OpClass
from ..pipeline import make_config
from ..workloads import build_suite
from .report import format_table
from .runner import run_config


@dataclass
class KernelProfile:
    name: str
    instructions: int
    ipc: float
    l1_miss_rate: float
    llc_miss_rate: float
    branch_mpki: float
    load_fraction: float
    store_fraction: float
    fp_fraction: float
    rob_occupancy: float
    full_window_frac: float


def characterize(scale: float = 1.0,
                 names: Optional[List[str]] = None,
                 preset: str = "base",
                 workers: Optional[int] = None,
                 use_cache: Optional[bool] = None,
                 timeout: Optional[float] = None,
                 chunk: Optional[int] = None,
                 lanes: Optional[int] = None) -> List[KernelProfile]:
    """Run each kernel under the baseline core and profile it."""
    traces = build_suite(scale, names)
    config = make_config(preset)
    result = run_config("characterize", config, traces,
                        workers=workers, use_cache=use_cache,
                        timeout=timeout, chunk=chunk, lanes=lanes)
    profiles = []
    for name, trace in traces.items():
        mix = trace.class_mix()
        stats = result.stats.get(name)
        if stats is None:        # failed/timed-out cell: skip, don't die
            continue
        kilo = max(1, stats.committed) / 1000.0
        profiles.append(KernelProfile(
            name=name,
            instructions=len(trace),
            ipc=stats.ipc,
            l1_miss_rate=stats.memory["l1_miss_rate"],
            llc_miss_rate=stats.memory["llc_miss_rate"],
            branch_mpki=stats.branch_mispredicts / kilo,
            load_fraction=mix.get(OpClass.LOAD, 0.0),
            store_fraction=mix.get(OpClass.STORE, 0.0),
            fp_fraction=sum(mix.get(cls, 0.0) for cls in
                            (OpClass.FP_ADD, OpClass.FP_MUL,
                             OpClass.FP_DIV)),
            rob_occupancy=stats.occupancy("rob"),
            full_window_frac=stats.full_window_stall_cycles
            / max(1, stats.cycles)))
    return profiles


def format_characterization(profiles: Optional[List[KernelProfile]] = None,
                            **kwargs) -> str:
    profiles = profiles if profiles is not None else characterize(**kwargs)
    rows = [[p.name, p.instructions, f"{p.ipc:.2f}",
             f"{p.l1_miss_rate:.1%}", f"{p.llc_miss_rate:.1%}",
             f"{p.branch_mpki:.1f}", f"{p.load_fraction:.0%}",
             f"{p.fp_fraction:.0%}", f"{p.rob_occupancy:.0f}",
             f"{p.full_window_frac:.0%}"]
            for p in sorted(profiles, key=lambda p: p.name)]
    return format_table(
        ["kernel", "instrs", "IPC", "L1 miss", "LLC miss", "br MPKI",
         "loads", "FP", "ROB occ", "FW stall"], rows,
        title="Workload characterization (baseline core)")
