"""Load/store queue unit with the memory disambiguation matrix.

The LQ is a non-collapsible (free-list) structure — Orinoco commits
loads out of order, so gaps appear anywhere.  The SQ is a FIFO: stores
always commit in program order.  Committed stores drain through a
store buffer into the cache hierarchy.

Word granularity: the ISA only performs aligned 8-byte accesses, so two
accesses conflict iff their word addresses are equal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core import LockdownMatrix, MemoryDisambiguationMatrix
from ..queues import RandomQueue


@dataclass
class LQEntry:
    seq: int
    addr: Optional[int] = None
    translated: bool = False
    performed: bool = False
    committed: bool = False


@dataclass
class SQEntry:
    seq: int
    addr: Optional[int] = None
    resolved: bool = False


@dataclass
class SBEntry:
    seq: int
    addr: int


class LSQUnit:
    """Load queue + store queue + store buffer + disambiguation matrix."""

    def __init__(self, lq_size: int, sq_size: int, sb_size: int,
                 tso: bool = False, ldt_size: int = 16):
        self.lq_size = lq_size
        self.sq_size = sq_size
        self.sb_size = sb_size
        self.lq_alloc = RandomQueue(lq_size)
        self.sq_alloc = RandomQueue(sq_size)
        self.mdm = MemoryDisambiguationMatrix(lq_size, sq_size)
        self.lq: Dict[int, LQEntry] = {}      # lq index -> entry
        self.sq: Dict[int, SQEntry] = {}      # sq index -> entry
        self._seq_to_lq: Dict[int, int] = {}
        self._seq_to_sq: Dict[int, int] = {}
        self.store_buffer: Deque[SBEntry] = deque()
        # lookup scratch: the returned masks are valid until the next
        # load_lookup call; every caller consumes (or copies, via the
        # MDM row write) its mask before looking up again
        self._unresolved = np.zeros(sq_size, dtype=bool)
        self._younger = np.zeros(sq_size, dtype=bool)
        self.tso = tso
        self.lockdown = LockdownMatrix(ldt_size, lq_size) if tso else None
        self.lockdowns_taken = 0

    # -- allocation (dispatch) ------------------------------------------

    def can_allocate_load(self) -> bool:
        return not self.lq_alloc.is_full()

    def can_allocate_store(self) -> bool:
        return not self.sq_alloc.is_full()

    def allocate_load(self, seq: int) -> Optional[int]:
        entry = self.lq_alloc.allocate()
        if entry is None:
            return None
        self.lq[entry] = LQEntry(seq)
        self._seq_to_lq[seq] = entry
        return entry

    def allocate_store(self, seq: int) -> Optional[int]:
        entry = self.sq_alloc.allocate()
        if entry is None:
            return None
        self.sq[entry] = SQEntry(seq)
        self._seq_to_sq[seq] = entry
        self.mdm.store_allocate(entry)
        return entry

    # -- load execution -----------------------------------------------------

    def load_lookup(self, seq: int, addr: int
                    ) -> Tuple[str, np.ndarray, Optional[int]]:
        """Search older stores for ``addr``.

        Returns ``(outcome, unresolved_mask, match_seq)`` where outcome
        is ``"forward"`` (youngest older address-resolved store matches;
        the caller must still wait for that store's *data*) or
        ``"memory"`` (go to cache).  ``unresolved_mask`` marks older SQ
        stores with unknown addresses — the load's MDM row if it
        speculates past them.  The returned mask is scratch, valid
        until the next ``load_lookup`` call.
        """
        unresolved = self._unresolved
        unresolved[:] = False
        best_match: Optional[SQEntry] = None
        for index, store in self.sq.items():
            if store.seq >= seq:
                continue
            if not store.resolved:
                unresolved[index] = True
            elif store.addr == addr:
                if best_match is None or store.seq > best_match.seq:
                    best_match = store
        if best_match is not None:
            # an unresolved store between the match and the load could
            # still alias; the load must stay speculative about those
            younger_unresolved = self._younger
            younger_unresolved[:] = unresolved
            for index, store in self.sq.items():
                if unresolved[index] and store.seq < best_match.seq:
                    younger_unresolved[index] = False
            return "forward", younger_unresolved, best_match.seq
        # store buffer holds only committed (older) stores; a match there
        # also forwards (data is present)
        for sb_entry in reversed(self.store_buffer):
            if sb_entry.seq < seq and sb_entry.addr == addr:
                return "forward", unresolved, sb_entry.seq
        return "memory", unresolved, None

    def load_issue(self, seq: int, addr: int,
                   unresolved_mask: np.ndarray) -> None:
        """Record the issued load's address and its MDM row."""
        entry = self._seq_to_lq[seq]
        record = self.lq[entry]
        record.addr = addr
        record.translated = True
        self.mdm.load_issue(entry, unresolved_mask)

    def load_performed(self, seq: int) -> List[int]:
        """Mark a load performed; returns lifted lockdown addresses (TSO)."""
        entry = self._seq_to_lq[seq]
        self.lq[entry].performed = True
        if self.lockdown is not None:
            return self.lockdown.load_performed(entry)
        return []

    def load_is_nonspeculative(self, seq: int) -> bool:
        entry = self._seq_to_lq[seq]
        return self.lq[entry].translated \
            and self.mdm.load_is_nonspeculative(entry)

    def has_load(self, seq: int) -> bool:
        """Whether ``seq`` still holds an LQ entry (not yet committed
        or squashed)."""
        return seq in self._seq_to_lq

    # -- store execution ----------------------------------------------------

    def store_resolve(self, seq: int, addr: int) -> List[int]:
        """Resolve a store's address; returns seqs of violated loads.

        A speculative load conflicts when it bypassed this store and
        reads the same word.
        """
        entry = self._seq_to_sq[seq]
        record = self.sq[entry]
        record.addr = addr
        record.resolved = True
        conflicts = np.zeros(self.lq_size, dtype=bool)
        for lq_index, load in self.lq.items():
            if load.addr == addr and load.seq > seq:
                conflicts[lq_index] = True
        violated = self.mdm.store_resolve(entry, conflicts)
        return [self.lq[i].seq for i in violated]

    # -- commit ----------------------------------------------------------------

    def oldest_store_seq(self) -> Optional[int]:
        """Program-order next store to commit (stores commit in order)."""
        if not self.sq:
            return None
        return min(store.seq for store in self.sq.values())

    def commit_load(self, seq: int) -> bool:
        """Release the LQ entry of a committing load.

        Under TSO, committing over older non-performed loads transfers a
        lockdown to the LDT (Figure 7).  Returns True iff a lockdown was
        taken (always False outside TSO mode).
        """
        entry = self._seq_to_lq.pop(seq)
        record = self.lq.pop(entry)
        if self.lockdown is not None and not record.performed:
            raise RuntimeError(
                f"TSO: load #{seq} committing before being performed "
                "requires ECL, which TSO mode does not allow")
        took = False
        if self.lockdown is not None:
            older_nonperformed = np.zeros(self.lq_size, dtype=bool)
            for lq_index, load in self.lq.items():
                if load.seq < seq and not load.performed:
                    older_nonperformed[lq_index] = True
            if older_nonperformed.any():
                self.lockdown.lockdown(record.addr, seq, older_nonperformed)
                self.lockdowns_taken += 1
                took = True
        self.mdm.load_remove(entry)
        self.lq_alloc.free(entry)
        return took

    def can_commit_store(self) -> bool:
        return len(self.store_buffer) < self.sb_size

    def commit_store(self, seq: int) -> None:
        """Move a committing store into the store buffer."""
        entry = self._seq_to_sq.pop(seq)
        record = self.sq.pop(entry)
        if not record.resolved:
            raise RuntimeError(f"store #{seq} committing unresolved")
        self.store_buffer.append(SBEntry(seq, record.addr))
        self.mdm.store_remove(entry)
        self.sq_alloc.free(entry)

    def drain_store(self) -> Optional[SBEntry]:
        """Pop the oldest store-buffer entry for writeback."""
        return self.store_buffer.popleft() if self.store_buffer else None

    # -- squash -------------------------------------------------------------------

    def squash(self, min_seq: int) -> None:
        """Remove all LQ/SQ entries with seq >= min_seq."""
        for seq in [s for s in self._seq_to_lq if s >= min_seq]:
            entry = self._seq_to_lq.pop(seq)
            del self.lq[entry]
            self.mdm.load_remove(entry)
            self.lq_alloc.free(entry)
        for seq in [s for s in self._seq_to_sq if s >= min_seq]:
            entry = self._seq_to_sq.pop(seq)
            del self.sq[entry]
            self.mdm.store_remove(entry)
            self.sq_alloc.free(entry)

    # -- introspection -----------------------------------------------------------

    def lq_occupancy(self) -> int:
        return len(self.lq)

    def sq_occupancy(self) -> int:
        return len(self.sq)
