"""Load/store queue unit, store buffer, disambiguation, TSO litmus."""

from .litmus import (LitmusOutcome, enumerate_outcomes, run_interleaving,
                     tso_holds)
from .lsq import LQEntry, LSQUnit, SBEntry, SQEntry

__all__ = ["LitmusOutcome", "enumerate_outcomes", "run_interleaving",
           "tso_holds", "LQEntry", "LSQUnit", "SBEntry", "SQEntry"]
